"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list the available experiment drivers
``run <name>``             run one driver (figure2, figure3, figure4,
                           table1, multipass, ablations)
``report [path]``          regenerate EXPERIMENTS.md
``eval <arm>``             evaluate one pipeline arm on the test suite
                           (arm = base | ft | rag | cot | scot | mp3);
                           ``--workers N`` fans (task, sample) episodes
                           across N worker processes — bit-identical to the
                           serial run — with ``--progress`` showing a meter;
                           ``--cache-dir`` persists execution results on disk
                           so a repeat run simulates nothing, ``--remote-cache
                           URL`` shares a warm store across machines,
                           ``--executor process`` fans simulation across
                           worker processes and ``--executor batch`` runs
                           compatible cache misses on the vectorised
                           batch-axis engine
``demo``                   one multi-agent generation episode, verbose
``lint``                   run the static circuit analyzer over QASM files,
                           one task's reference program (``--task``), or the
                           whole task bank (``--suite``); prints coded
                           diagnostics (QA1xx errors / QA2xx warnings /
                           QA3xx info) and exits nonzero on errors
``backends``               list registered execution backends and aliases
``transpile``              lower a library circuit to a backend through the
                           cached transpile stage; ``--explain`` prints the
                           per-pass timing / instruction-delta table from
                           the PassManager
``cache``                  inspect, ``--clear``, or ``--prune`` (with
                           ``--max-bytes/--max-entries/--max-age`` bounds)
                           the on-disk result cache
``cache-server``           serve a cache directory over HTTP so a fleet of
                           workers shares one warm store (``--token`` requires
                           shared-token auth on every endpoint)
``eval-server <arm>``      evaluate one arm as a *distribution coordinator*:
                           serves the result cache and leases episode chunks
                           to remote ``eval-worker`` processes, falling back
                           to the local pool when none attach; results are
                           bit-identical to ``eval`` for any topology
``eval-worker``            attach to an ``eval-server`` (``--url``), lease
                           and execute episode chunks, share its cache
``eval ... --distributed`` shorthand: start an ephemeral coordinator around
                           one ``eval`` run; ``report --distributed`` does
                           the same for the evaluation drivers (figure3,
                           table1, multipass — the other sections stay on
                           the local pool)
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = ("figure2", "figure3", "figure4", "table1", "multipass", "ablations")

ARMS = {
    "base": dict(fine_tuned=False),
    "ft": dict(fine_tuned=True),
    "rag": dict(fine_tuned=True, rag_docs=True, rag_guides=True),
    "cot": dict(fine_tuned=True, prompt_style="cot"),
    "scot": dict(fine_tuned=True, prompt_style="scot"),
    "mp3": dict(fine_tuned=True),
}


def _cmd_experiments(_args) -> int:
    for name in EXPERIMENTS:
        print(f"  {name:10s}  python -m repro.experiments.{name}")
    return 0


def _cmd_run(args) -> int:
    import importlib

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment '{args.name}'; choose from {EXPERIMENTS}")
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def _resolve_token(token: str | None) -> str | None:
    """An explicit ``--token`` wins (``--token ""`` means deliberately
    open); an omitted flag falls back to ``REPRO_CACHE_TOKEN``."""
    from repro.quantum.execution.remote_cache import resolve_token

    return resolve_token(token)


def _served_dir(cache_dir: str | None) -> tuple[str, bool]:
    """The store a coordinator serves: explicit flag, else ``REPRO_CACHE_DIR``,
    else a fresh temp dir.  The flag says "ephemeral — remove when done"."""
    import os
    import tempfile

    from repro.quantum.execution.service import CACHE_DIR_ENV

    explicit = cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if explicit:
        return explicit, False
    return tempfile.mkdtemp(prefix="repro-eval-server-"), True


def _serve_store_locally(served: str) -> None:
    """Point the default service's disk tier at the served store, so the
    coordinator's own (fallback) execution reads a pre-warmed directory and
    warms it for the workers — the same wiring ``eval --cache-dir`` does."""
    from repro.quantum.execution import (
        CacheLimits,
        ExecutionService,
        set_default_service,
    )

    set_default_service(
        ExecutionService(cache_dir=served, cache_limits=CacheLimits.from_env()),
        shutdown_previous=True,
    )


def _stop_coordinator(coordinator, served: str, ephemeral: bool) -> None:
    import shutil

    coordinator.stop()
    if ephemeral:
        # Nothing outlives an ad-hoc coordinator: drop its temp store (and
        # any service handle onto it) instead of littering /tmp per run.
        from repro.quantum.execution import set_default_service

        set_default_service(None, shutdown_previous=True)
        shutil.rmtree(served, ignore_errors=True)


def _load_tenants_or_fail(tenant_file: str | None):
    """Resolve ``--tenant-file`` / ``$REPRO_TENANT_FILE`` into a registry.

    Returns ``None`` for single-tenant mode, a ``TenantRegistry`` on
    success, and ``Ellipsis`` (after printing the error) when the file is
    missing or malformed — a typo'd tenant file must refuse to serve, not
    silently fall back to open/single-tenant."""
    from repro.quantum.execution.tenants import load_tenants

    try:
        return load_tenants(tenant_file)
    except (OSError, ValueError) as exc:
        print(f"cannot load tenant file: {exc}")
        return Ellipsis


def _start_coordinator(
    served: str,
    host: str,
    port: int,
    token: str | None,
    fallback_workers: int | None = None,
    lease_timeout: float | None = None,
    tenants=None,
    job_store=None,
):
    """Boot an EvalCoordinator on a resolved store; announcements go to
    stderr so eval tables on stdout stay byte-identical to the
    non-distributed run."""
    import sys

    from repro.quantum.execution.dispatch import (
        DEFAULT_LEASE_TIMEOUT,
        EvalCoordinator,
    )

    coordinator = EvalCoordinator(
        served,
        host=host,
        port=port,
        token=token,
        fallback_workers=fallback_workers,
        lease_timeout=lease_timeout or DEFAULT_LEASE_TIMEOUT,
        tenants=tenants,
        job_store=job_store,
    ).start()
    print(
        f"coordinator serving cache + work queue at {coordinator.url} "
        f"(store: {served}{', token auth on' if token else ''}"
        + (f", {len(tenants)} tenant(s)" if tenants is not None else "")
        + (", job store on" if job_store is not None else "")
        + ")",
        file=sys.stderr,
    )
    print(
        f"attach workers:  repro eval-worker --url {coordinator.url}"
        + (" --token <token>" if token else ""),
        file=sys.stderr,
    )
    print(
        f"scrape metrics:  curl {coordinator.url}/metrics",
        file=sys.stderr,
    )
    return coordinator


def _cmd_report(args) -> int:
    from repro.experiments.generate_report import collect, render

    coordinator = None
    if args.distributed:
        served, ephemeral = _served_dir(None)
        _serve_store_locally(served)
        coordinator = _start_coordinator(
            served, "127.0.0.1", args.port, _resolve_token(args.token),
            fallback_workers=args.workers,
        )
    try:
        if coordinator is not None:
            from repro.evalsuite import distributed

            with distributed(coordinator):
                sections = collect(
                    samples_per_task=args.samples, workers=args.workers
                )
        else:
            sections = collect(
                samples_per_task=args.samples, workers=args.workers
            )
    finally:
        if coordinator is not None:
            _stop_coordinator(coordinator, served, ephemeral)
    with open(args.path, "w") as handle:
        handle.write(render(sections))
    print(f"wrote {args.path} ({len(sections)} sections)")
    return 0


def _arm_settings(arm: str, samples: int, optimization_level: int | None = None):
    """The one arm → PipelineSettings mapping shared by every eval-ish
    command (``eval`` and ``eval-server`` must evaluate identical
    configurations or their byte-identical guarantee is meaningless);
    ``None`` for an unknown arm, after printing the choices."""
    from repro.evalsuite import PipelineSettings
    from repro.llm.faults import ModelConfig

    if arm not in ARMS:
        print(f"unknown arm '{arm}'; choose from {sorted(ARMS)}")
        return None
    return PipelineSettings(
        ModelConfig("3b", **ARMS[arm]),
        max_passes=3 if arm == "mp3" else 1,
        samples_per_task=samples,
        label=arm,
        optimization_level=optimization_level,
    )


def _cmd_eval(args) -> int:
    from repro.evalsuite import (
        build_suite,
        comparison_table,
        evaluate,
        execution_stats_table,
        progress_printer,
    )
    from repro.quantum.execution import (
        ExecutionService,
        default_service,
        executor_from_env,
        set_default_service,
        validate_from_env,
    )

    settings = _arm_settings(args.arm, args.samples, args.opt_level)
    if settings is None:
        return 2
    served, ephemeral = None, False
    if args.distributed:
        # The coordinator's served store doubles as this run's disk tier,
        # so the local (fallback) execution warms exactly what the workers
        # read and a pre-warmed store is actually consulted.
        served, ephemeral = _served_dir(args.cache_dir)
    cache_dir = args.cache_dir or served
    if cache_dir or args.remote_cache or args.executor or args.validate:
        # Rebuild the shared service with the requested persistence/executor;
        # everything downstream (sandboxed programs, graders, QEC memory
        # experiments) funnels through it.  The REPRO_CACHE_MAX_* bounds
        # apply here exactly as they do to the env-built default service.
        from repro.quantum.execution import CacheLimits

        set_default_service(
            ExecutionService(
                cache_dir=cache_dir or None,
                cache_limits=(
                    CacheLimits.from_env() if cache_dir else None
                ),
                remote_url=args.remote_cache or None,
                executor=args.executor or executor_from_env(),
                validate=args.validate or validate_from_env(),
            ),
            shutdown_previous=True,
        )
    coordinator = None
    if args.distributed:
        coordinator = _start_coordinator(
            served, "127.0.0.1", args.port,
            _resolve_token(args.token), fallback_workers=args.workers,
        )
    try:
        result = evaluate(
            settings,
            build_suite(),
            workers=args.workers,
            progress=progress_printer(args.arm) if args.progress else None,
            coordinator=coordinator,
        )
    finally:
        if coordinator is not None:
            _stop_coordinator(coordinator, served, ephemeral)
    print(comparison_table([result]).render())
    if args.exec_stats:
        print()
        print(execution_stats_table([result]).render())
        stats = default_service().stats()
        line = (
            f"service totals: {stats.get('simulations', 0)} simulations, "
            f"{stats.get('simulations_deduped', 0)} deduped, "
            f"{stats.get('simulations_batched', 0)} batched "
            f"({stats.get('batch_groups', 0)} groups), "
            f"{stats.get('programs_validated', 0)} validated "
            f"({stats.get('rejected_static', 0)} rejected static), "
            f"{stats.get('cache_hits', 0)} cache hits "
            f"({stats.get('cache_disk_hits', 0)} from disk, "
            f"{stats.get('cache_remote_hits', 0)} from remote), "
            f"{stats.get('transpiles', 0)} transpiles "
            f"({stats.get('transpile_cache_hits', 0)} transpile cache hits), "
            f"executor={stats.get('executor', 'thread')}, "
            f"validate={stats.get('validate', 'off')}"
        )
        if "cache_dir" in stats:
            line += f", cache_dir={stats['cache_dir']}"
            if stats.get("cache_evictions"):
                line += f" ({stats['cache_evictions']} evictions)"
        if "cache_url" in stats:
            line += f", cache_url={stats['cache_url']}"
            if stats.get("cache_remote_errors"):
                line += f" ({stats['cache_remote_errors']} remote errors)"
        print(line)
    return 0


def _cmd_demo(args) -> int:
    from repro.agents import Orchestrator
    from repro.errors import BackendError
    from repro.llm import make_model, synthesize
    from repro.quantum.execution import resolve_backend

    if args.qec and not args.backend:
        print("error: --qec needs a device target; pass e.g. --backend brisbane")
        return 2
    try:
        target = resolve_backend(args.backend) if args.backend else None
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    orchestrator = Orchestrator(
        model=make_model(fine_tuned=True, prompt_style="scot"), max_passes=3
    )
    artifact = orchestrator.run_episode(
        "Implement Grover search over 3 qubits for the marked state 101, "
        "using the optimal number of iterations.",
        params={"marked": "101"},
        reference_code=synthesize("grover", {"marked": "101"}, "correct"),
        seed=args.seed,
        target_backend=target,
        apply_qec=args.qec,
    )
    print(artifact.log.render())
    print(f"\naccepted: {artifact.accepted}")
    if artifact.qec is not None:
        print(
            f"qec: suppression {artifact.qec.suppression_factor:.4f} on "
            f"'{artifact.qec.corrected_backend.name}'"
        )
    print("\n--- generated program ---")
    print(artifact.code)
    return 0


def _limits_from_args(args):
    """A CacheLimits from --max-* flags, falling back to the environment."""
    from repro.quantum.execution import CacheLimits

    kwargs = {}
    if getattr(args, "max_bytes", None) is not None:
        kwargs["max_bytes"] = args.max_bytes
    if getattr(args, "max_entries", None) is not None:
        kwargs["max_entries"] = args.max_entries
    if getattr(args, "max_age", None) is not None:
        kwargs["max_age_seconds"] = args.max_age
    return CacheLimits(**kwargs) if kwargs else CacheLimits.from_env()


def _cmd_cache(args) -> int:
    import os

    from repro.quantum.execution import DiskResultCache
    from repro.quantum.execution.service import CACHE_DIR_ENV

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(f"no cache dir: pass --cache-dir or set {CACHE_DIR_ENV}")
        return 2
    if not os.path.isdir(cache_dir):
        # Inspection must not create directories: a typo'd path should be
        # reported, not silently materialised as an empty cache.
        print(f"no cache at {cache_dir}: directory does not exist")
        return 2
    disk = DiskResultCache(cache_dir)
    entries = len(disk)
    if args.clear:
        disk.clear()
        print(f"cleared {entries} entries from {cache_dir}")
        return 0
    if args.prune:
        limits = _limits_from_args(args)
        if limits is None or not limits.bounded:
            print(
                "nothing to prune against: pass --max-bytes/--max-entries/"
                "--max-age or set REPRO_CACHE_MAX_BYTES/_MAX_ENTRIES/_MAX_AGE"
            )
            return 2
        evicted = disk.prune(limits)
        print(
            f"pruned {evicted} of {entries} entries from {cache_dir}: "
            f"{len(disk)} entries, {disk.size_bytes()} bytes remain"
        )
        return 0
    print(
        f"execution result cache at {cache_dir}: {entries} entries, "
        f"{disk.size_bytes()} bytes"
    )
    return 0


def _cmd_cache_server(args) -> int:
    import os

    from repro.quantum.execution import CacheServer
    from repro.quantum.execution.service import CACHE_DIR_ENV

    cache_dir = args.dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(f"no cache dir: pass --dir or set {CACHE_DIR_ENV}")
        return 2
    limits = _limits_from_args(args)
    token = _resolve_token(args.token)
    tenants = _load_tenants_or_fail(args.tenant_file)
    if tenants is Ellipsis:
        return 2
    server = CacheServer(
        cache_dir, host=args.host, port=args.port, limits=limits,
        quiet=False, token=token, tenants=tenants,
    )
    print(
        f"serving execution result cache {cache_dir} "
        f"({len(server.disk)} entries) at {server.url}"
        + (f" with limits {limits}" if limits is not None else "")
        + (" [token auth on]" if token else "")
        + (f" [{len(tenants)} tenant(s)]" if tenants is not None else "")
    )
    print("point workers at it:  repro eval <arm> --remote-cache "
          f"{server.url}   (or REPRO_CACHE_URL={server.url})")
    print(f"scrape metrics:  curl -H 'Authorization: Bearer <key>' "
          f"{server.url}/metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_eval_server(args) -> int:
    from repro.evalsuite import (
        build_suite,
        comparison_table,
        evaluate,
        execution_stats_table,
        progress_printer,
    )

    settings = _arm_settings(args.arm, args.samples)
    if settings is None:
        return 2
    import os

    tenants = _load_tenants_or_fail(args.tenant_file)
    if tenants is Ellipsis:
        return 2
    served, ephemeral = _served_dir(args.dir)
    # The coordinator's own (fallback) execution must read and warm the
    # store it serves, exactly like `eval --cache-dir` would.
    _serve_store_locally(served)
    job_store = None
    if not args.no_job_store:
        # `jobs/` beside (not inside a glob of) the cache entries, so the
        # store's eviction sweep never touches job records.
        job_store = args.job_store or os.path.join(served, "jobs")
    coordinator = _start_coordinator(
        served, args.host, args.port, _resolve_token(args.token),
        fallback_workers=args.fallback_workers,
        lease_timeout=args.lease_timeout,
        tenants=tenants,
        job_store=job_store,
    )
    try:
        result = evaluate(
            settings,
            build_suite(),
            progress=progress_printer(args.arm) if args.progress else None,
            coordinator=coordinator,
        )
    except KeyboardInterrupt:
        print("\nshutting down")
        return 1
    finally:
        _stop_coordinator(coordinator, served, ephemeral)
    print(comparison_table([result]).render())
    if args.exec_stats:
        print()
        print(execution_stats_table([result]).render())
    return 0


def _cmd_eval_worker(args) -> int:
    import sys

    from repro.quantum.execution import (
        ExecutionService,
        RemoteResultCache,
        ResultCache,
        executor_from_env,
        set_default_service,
    )
    from repro.quantum.execution.dispatch import run_worker

    token = _resolve_token(args.token)
    cache_url = None if args.no_remote_cache else (args.remote_cache or args.url)
    if cache_url:
        # The coordinator serves the fleet cache on the same port, so by
        # default a worker shares results through the very server that hands
        # it work — zero simulations against a warm store.
        remote = RemoteResultCache(cache_url, token=token)
        # REPRO_EXECUTOR still applies: a fleet can run its workers with
        # executor=batch (or process) while sharing one remote store.
        set_default_service(
            ExecutionService(
                cache=ResultCache(remote=remote),
                executor=executor_from_env(),
            ),
            shutdown_previous=True,
        )
        print(f"sharing execution results via {cache_url}", file=sys.stderr)
    print(
        f"serving coordinator {args.url} with {args.workers} worker "
        f"thread(s)",
        file=sys.stderr,
    )
    try:
        completed = run_worker(
            args.url,
            token=token,
            workers=args.workers,
            max_idle=args.max_idle,
            poll_interval=args.poll_interval,
        )
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
        return 0
    print(f"completed {completed} chunk(s)", file=sys.stderr)
    return 0


def _lint_targets(args) -> tuple[list, int]:
    """Resolve lint inputs to ``(label, circuit | None, failure)`` triples.

    ``failure`` is a message for targets that never produced a circuit (an
    unreadable/unparsable QASM file, a reference program that crashed); those
    count as errors.  A reference program that runs clean but publishes no
    ``qc`` artifact is skipped with a note, not failed — statevector-style
    tasks are allowed to expose only ``state``/``counts``.
    """
    from repro.errors import ReproError
    from repro.quantum.circuit import QuantumCircuit
    from repro.quantum.qasm import qasm_to_circuit

    targets: list = []
    status = 0
    for path in args.files:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            targets.append((path, None, f"cannot read: {exc}"))
            continue
        try:
            targets.append((path, qasm_to_circuit(text), None))
        except ReproError as exc:
            targets.append((path, None, f"QASM parse failed: {exc}"))
    if args.task or args.suite:
        from repro.agents.sandbox import run_code
        from repro.evalsuite import build_suite

        tasks = build_suite()
        if args.task:
            tasks = [t for t in tasks if t.case_id == args.task]
            if not tasks:
                print(f"unknown task '{args.task}'; see the suite's case ids")
                return targets, 2
        for task in tasks:
            label = f"task {task.case_id} ({task.case.family})"
            execution = run_code(task.reference_code)
            if not execution.ok:
                targets.append(
                    (label, None,
                     f"reference program failed: {execution.exception_type}")
                )
                continue
            qc = execution.artifact("qc")
            if isinstance(qc, QuantumCircuit):
                targets.append((label, qc, None))
            else:
                print(f"{label}: no 'qc' artifact; skipped")
    return targets, status


def _cmd_lint(args) -> int:
    from repro.quantum.analysis import analyze_circuit
    from repro.quantum.simulator import MAX_DENSE_QUBITS

    if not args.files and not args.task and not args.suite:
        print("nothing to lint: pass QASM files, --task ID, or --suite")
        return 2
    targets, status = _lint_targets(args)
    if status:
        return status
    total_errors = 0
    total_warnings = 0
    linted = 0
    for label, circuit, failure in targets:
        if circuit is None:
            print(f"{label}: ERROR {failure}")
            total_errors += 1
            continue
        linted += 1
        analysis = analyze_circuit(circuit, max_qubits=MAX_DENSE_QUBITS)
        shown = analysis.diagnostics if args.verbose else [
            d for d in analysis.diagnostics if d.severity != "info"
        ]
        total_errors += len(analysis.errors)
        total_warnings += len(analysis.warnings)
        marker = "ok" if analysis.ok else "FAIL"
        print(f"{label}: {marker}")
        for diagnostic in shown:
            print(f"  {diagnostic.render()}")
    print(
        f"linted {linted} circuit(s): {total_errors} error(s), "
        f"{total_warnings} warning(s)"
    )
    return 1 if total_errors else 0


def _cmd_backends(_args) -> int:
    from repro.quantum.execution import default_service, get_backend, provider

    registry = provider()
    for name in registry.names():
        backend = get_backend(name)
        aliases = registry.aliases_of(name)
        alias_note = f"  (aliases: {', '.join(aliases)})" if aliases else ""
        noise = "noisy" if backend.noise_model is not None else "ideal"
        coupled = (
            "coupled" if backend.coupling_map is not None else "fully-connected"
        )
        print(
            f"  {name:18s} {backend.num_qubits:>4d} qubits  "
            f"{noise:5s}  {coupled}{alias_note}"
        )
    stats = default_service().stats()
    print(
        f"\nexecution service [{stats.get('executor', 'thread')}, "
        f"validate={stats.get('validate', 'off')}]: "
        f"{stats.get('simulations', 0)} simulations, "
        f"{stats.get('simulations_batched', 0)} batched "
        f"({stats.get('batch_groups', 0)} groups), "
        f"{stats.get('programs_validated', 0)} validated "
        f"({stats.get('rejected_static', 0)} rejected static), "
        f"{stats.get('cache_hits', 0)} cache hits "
        f"({stats.get('cache_hit_rate', 0.0):.0%} hit rate), "
        f"{stats.get('transpiles', 0)} transpiles "
        f"({stats.get('transpile_cache_hits', 0)} transpile cache hits)"
        + (
            f", disk cache at {stats['cache_dir']}"
            if "cache_dir" in stats
            else ""
        )
    )
    return 0


def _library_circuit(name: str, qubits: int):
    from repro.quantum import library

    if name == "bell":
        return library.bell_pair(measure=True)
    if name == "ghz":
        return library.ghz_state(qubits, measure=True)
    if name == "qft":
        return library.qft(qubits)
    return library.grover(qubits, ["1" * qubits])


def _cmd_transpile(args) -> int:
    from repro.errors import BackendError
    from repro.quantum.execution import default_service, resolve_backend
    from repro.quantum.transpiler import build_pass_manager, resolve_lowering

    circuit = _library_circuit(args.circuit, args.qubits)
    try:
        backend = resolve_backend(args.backend) if args.backend else None
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    service = default_service()
    with service.stats_scope() as scope:
        out = service.transpile(
            circuit, backend=backend, optimization_level=args.level
        )
    source = "cache" if scope.get("transpile_cache_hits") else "pass manager"
    target = backend.name if backend is not None else "all-to-all"
    print(
        f"{circuit.name}: {circuit.num_qubits} qubits, "
        f"{circuit.size()} instructions"
    )
    print(
        f"-> {out.name} on {target} [level {args.level}, from {source}]: "
        f"{out.num_qubits} qubits, {out.size()} instructions, "
        f"depth {out.depth()}"
    )
    print(
        f"   layout {out.metadata['layout']}  "
        f"final {out.metadata['final_layout']}"
    )
    if args.explain:
        # Introspection path: run the pass stack directly (bypassing the
        # cache) so the per-pass timings describe real work, not a lookup.
        coupling_map, basis = resolve_lowering(backend, None, None)
        manager = build_pass_manager(
            coupling_map=coupling_map, basis=basis,
            optimization_level=args.level,
        )
        manager.run(circuit)
        print()
        print(f"{'pass':<18s} {'in':>5s} {'out':>5s} {'delta':>6s} {'ms':>9s}")
        for record in manager.records:
            print(
                f"{record.name:<18s} {record.instructions_in:>5d} "
                f"{record.instructions_out:>5d} {record.delta:>+6d} "
                f"{record.seconds * 1e3:>9.3f}"
            )
    return 0


def _cmd_variational(args) -> int:
    from repro.errors import BackendError, CircuitError
    from repro.quantum.execution import default_service, resolve_backend
    from repro.quantum.variational import (
        hardware_efficient_ansatz,
        maxcut_energy,
        minimize,
        qaoa_ansatz,
    )

    n = args.qubits
    edges = [(i, (i + 1) % n) for i in range(n)]
    try:
        if args.ansatz == "qaoa":
            ansatz = qaoa_ansatz(n, edges, reps=args.reps)
        else:
            ansatz = hardware_efficient_ansatz(n, reps=args.reps)
        backend = resolve_backend(args.backend) if args.backend else "ideal"
    except (BackendError, CircuitError) as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"{ansatz.name}: {n} qubits, ring MaxCut ({len(edges)} edges), "
        f"{ansatz.num_parameters} parameter(s), method {args.method}"
    )
    service = default_service()
    try:
        with service.stats_scope() as scope:
            result = minimize(
                maxcut_energy(edges), ansatz,
                backend=backend, shots=args.shots, seed=args.seed,
                method=args.method, maxiter=args.iters, service=service,
            )
    except CircuitError as exc:
        print(f"error: {exc}")
        return 2
    print(
        f"best expected cut {-result.best_value:.4f} / {len(edges)} "
        f"after {result.iterations} iteration(s), "
        f"{result.evaluations} evaluation(s)"
    )
    for name, value in result.best_parameters.items():
        print(f"  {name} = {value:+.6f}")
    print(
        f"  transpiles {scope.get('transpiles')}, "
        f"transpile cache hits {scope.get('transpile_cache_hits')}, "
        f"simulations {scope.get('simulations')}"
        + (
            f", batched {scope.get('simulations_batched')} "
            f"in {scope.get('batch_groups')} group(s)"
            if scope.get("simulations_batched")
            else ""
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC-2025 quantum-codegen reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment drivers")

    run_parser = sub.add_parser("run", help="run one experiment driver")
    run_parser.add_argument("name")

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report_parser.add_argument("--samples", type=int, default=6)
    report_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for the experiment drivers (bit-identical "
        "results for any N; default: $REPRO_EVAL_WORKERS or serial)",
    )
    report_parser.add_argument(
        "--distributed", action="store_true",
        help="start a work-distribution coordinator and lease the "
        "evaluation drivers' episode chunks (figure3, table1, multipass) "
        "to attached eval-workers; figure2 decode shots, figure4 and the "
        "ablations keep using the local pool (bit-identical results "
        "either way; the local pool is also the fallback when no worker "
        "attaches)",
    )
    report_parser.add_argument(
        "--port", type=int, default=8751,
        help="coordinator listen port for --distributed (0: ephemeral)",
    )
    report_parser.add_argument(
        "--token", default=None,
        help="shared auth token for --distributed "
        "(default: $REPRO_CACHE_TOKEN, else open)",
    )

    eval_parser = sub.add_parser("eval", help="evaluate one arm on the suite")
    eval_parser.add_argument("arm")
    eval_parser.add_argument("--samples", type=int, default=4)
    eval_parser.add_argument(
        "--workers", type=int, default=None,
        help="fan (task, sample) episodes across this many worker processes; "
        "results are bit-identical to the serial run for any N "
        "(default: $REPRO_EVAL_WORKERS or serial)",
    )
    eval_parser.add_argument(
        "--progress", action="store_true",
        help="render a live chunk-completion meter on stderr",
    )
    eval_parser.add_argument(
        "--opt-level", dest="opt_level", type=int, choices=(0, 1, 2),
        default=None,
        help="pin the transpiler optimization level for every transpile in "
        "this arm's episodes (default: the pipeline's own choice, level 1)",
    )
    eval_parser.add_argument(
        "--exec-stats", action="store_true", dest="exec_stats",
        help="also print ExecutionService simulation/cache counters",
    )
    eval_parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="persist execution results under this directory (warm-starts "
        "a repeat of the same arm across processes)",
    )
    eval_parser.add_argument(
        "--remote-cache", dest="remote_cache", default=None, metavar="URL",
        help="share execution results with a 'repro cache-server' at this "
        "URL (a cold worker pointed at a warm server simulates nothing)",
    )
    eval_parser.add_argument(
        "--executor", choices=("thread", "process", "batch"), default=None,
        help="strategy for cache misses: thread pool, process pool, or the "
        "vectorised batch engine (default: $REPRO_EXECUTOR or thread)",
    )
    eval_parser.add_argument(
        "--validate", choices=("off", "warn", "strict"), default=None,
        help="static pre-flight over every submitted circuit: warn prints "
        "QA diagnostics, strict rejects QA1xx errors before any simulation "
        "(default: $REPRO_VALIDATE or off)",
    )
    eval_parser.add_argument(
        "--distributed", action="store_true",
        help="start a work-distribution coordinator for this run and lease "
        "episode chunks to attached eval-workers (results stay "
        "bit-identical; the local pool is the fallback when none attach)",
    )
    eval_parser.add_argument(
        "--port", type=int, default=8751,
        help="coordinator listen port for --distributed (0: ephemeral)",
    )
    eval_parser.add_argument(
        "--token", default=None,
        help="shared auth token for --distributed "
        "(default: $REPRO_CACHE_TOKEN, else open)",
    )

    demo_parser = sub.add_parser("demo", help="one verbose generation episode")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--backend", default=None,
        help="target backend name/alias from the registry (see 'backends')",
    )
    demo_parser.add_argument(
        "--qec", action="store_true",
        help="attach the QEC agent to the target backend",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="static-analyze circuits: QASM files, a task's reference "
        "program, or the whole task bank",
    )
    lint_parser.add_argument(
        "files", nargs="*",
        help="OpenQASM files to analyze",
    )
    lint_parser.add_argument(
        "--task", default=None, metavar="CASE_ID",
        help="lint the reference program of one suite task",
    )
    lint_parser.add_argument(
        "--suite", action="store_true",
        help="lint every reference program in the task bank",
    )
    lint_parser.add_argument(
        "--verbose", action="store_true",
        help="also print QA3xx info diagnostics (depth/width stats)",
    )

    sub.add_parser("backends", help="list registered execution backends")

    transpile_parser = sub.add_parser(
        "transpile",
        help="lower a library circuit to a backend through the cached "
        "transpile stage",
    )
    transpile_parser.add_argument(
        "circuit", choices=("bell", "ghz", "qft", "grover"),
        help="library circuit to lower",
    )
    transpile_parser.add_argument(
        "--qubits", type=int, default=3,
        help="circuit width (ignored for bell)",
    )
    transpile_parser.add_argument(
        "--backend", default=None,
        help="target backend name/alias from the registry (see 'backends'); "
        "omit for an all-to-all target with the default basis",
    )
    transpile_parser.add_argument(
        "--level", type=int, choices=(0, 1, 2), default=1,
        help="optimization level (0 lowering only, 1 peephole, 2 repeated)",
    )
    transpile_parser.add_argument(
        "--explain", action="store_true",
        help="print the PassManager's per-pass instruction deltas and "
        "wall-clock timings (from an uncached run of the stack)",
    )

    var_parser = sub.add_parser(
        "variational",
        help="optimize a parameterized ansatz (MaxCut on a ring) through "
        "the batched execution service",
    )
    var_parser.add_argument(
        "--qubits", type=int, default=4, help="ring size (>= 3)"
    )
    var_parser.add_argument(
        "--ansatz", choices=("qaoa", "hea"), default="qaoa",
        help="qaoa (problem-aware) or hea (hardware-efficient)",
    )
    var_parser.add_argument(
        "--reps", type=int, default=1,
        help="ansatz repetitions (QAOA depth p / entangling blocks)",
    )
    var_parser.add_argument(
        "--method", choices=("spsa", "coordinate"), default="spsa"
    )
    var_parser.add_argument(
        "--iters", type=int, default=25,
        help="optimizer iterations (each is one execution batch)",
    )
    var_parser.add_argument("--shots", type=int, default=1024)
    var_parser.add_argument("--seed", type=int, default=0)
    var_parser.add_argument(
        "--backend", default=None,
        help="target backend name/alias from the registry (see 'backends')",
    )

    cache_parser = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the on-disk execution result cache",
    )
    cache_parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every persisted entry"
    )
    cache_parser.add_argument(
        "--prune", action="store_true",
        help="evict least-recently-used entries until the --max-* bounds "
        "(or their REPRO_CACHE_MAX_* equivalents) are satisfied",
    )
    server_parser = sub.add_parser(
        "cache-server",
        help="serve a cache directory over HTTP for a fleet of workers",
    )
    server_parser.add_argument(
        "--dir", default=None,
        help="cache directory to serve (default: $REPRO_CACHE_DIR)",
    )
    server_parser.add_argument("--host", default="127.0.0.1")
    server_parser.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 binds an ephemeral port)",
    )
    server_parser.add_argument(
        "--token", default=None,
        help="require this shared token on every endpoint "
        "(default: $REPRO_CACHE_TOKEN, else open)",
    )
    server_parser.add_argument(
        "--tenant-file", dest="tenant_file", default=None, metavar="JSON",
        help="tenants.json with per-tenant API keys, rate limits, and "
        "quotas (default: $REPRO_TENANT_FILE, else single-tenant)",
    )
    for bounded in (cache_parser, server_parser):
        bounded.add_argument(
            "--max-bytes", dest="max_bytes", type=int, default=None,
            help="byte budget for the store (LRU eviction)",
        )
        bounded.add_argument(
            "--max-entries", dest="max_entries", type=int, default=None,
            help="entry-count budget for the store",
        )
        bounded.add_argument(
            "--max-age", dest="max_age", type=float, default=None,
            help="evict entries idle for more than this many seconds",
        )

    eval_server = sub.add_parser(
        "eval-server",
        help="evaluate one arm as a distribution coordinator "
        "(cache + work queue on one port; workers attach with eval-worker)",
    )
    eval_server.add_argument("arm")
    eval_server.add_argument("--samples", type=int, default=4)
    eval_server.add_argument(
        "--dir", default=None,
        help="cache directory to serve alongside the work queue "
        "(default: $REPRO_CACHE_DIR, else a temp dir)",
    )
    eval_server.add_argument("--host", default="127.0.0.1")
    eval_server.add_argument(
        "--port", type=int, default=8751,
        help="listen port (0 binds an ephemeral port)",
    )
    eval_server.add_argument(
        "--token", default=None,
        help="require this shared token on every cache and work endpoint "
        "(default: $REPRO_CACHE_TOKEN, else open)",
    )
    eval_server.add_argument(
        "--tenant-file", dest="tenant_file", default=None, metavar="JSON",
        help="tenants.json with per-tenant API keys, rate limits, quotas, "
        "and fair-share priorities (default: $REPRO_TENANT_FILE, else "
        "single-tenant)",
    )
    eval_server.add_argument(
        "--job-store", dest="job_store", default=None, metavar="DIR",
        help="directory persisting queued chunks across coordinator "
        "restarts (default: <served dir>/jobs)",
    )
    eval_server.add_argument(
        "--no-job-store", dest="no_job_store", action="store_true",
        help="do not persist queued chunks (no restart recovery)",
    )
    eval_server.add_argument(
        "--lease-timeout", dest="lease_timeout", type=float, default=None,
        help="seconds a leased chunk may go without a heartbeat before it "
        "is requeued (default: 30)",
    )
    eval_server.add_argument(
        "--fallback-workers", dest="fallback_workers", type=int, default=None,
        help="local pool size when no remote worker attaches "
        "(0 disables local fallback; default: $REPRO_EVAL_WORKERS or 1)",
    )
    eval_server.add_argument(
        "--progress", action="store_true",
        help="render a live chunk-completion meter on stderr",
    )
    eval_server.add_argument(
        "--exec-stats", action="store_true", dest="exec_stats",
        help="also print per-arm ExecutionService counters",
    )

    eval_worker = sub.add_parser(
        "eval-worker",
        help="lease and execute episode chunks from an eval-server",
    )
    eval_worker.add_argument(
        "--url", required=True, help="coordinator URL (from eval-server)"
    )
    eval_worker.add_argument(
        "--token", default=None,
        help="shared auth token (default: $REPRO_CACHE_TOKEN)",
    )
    eval_worker.add_argument(
        "--workers", type=int, default=1,
        help="concurrent chunk-execution threads",
    )
    eval_worker.add_argument(
        "--max-idle", dest="max_idle", type=float, default=None,
        help="exit after this many seconds without work (default: poll "
        "until Ctrl-C)",
    )
    eval_worker.add_argument(
        "--poll-interval", dest="poll_interval", type=float, default=0.2,
        help="pause between lease attempts on an empty queue",
    )
    eval_worker.add_argument(
        "--remote-cache", dest="remote_cache", default=None, metavar="URL",
        help="share execution results with this cache server "
        "(default: the coordinator itself, which serves the cache too)",
    )
    eval_worker.add_argument(
        "--no-remote-cache", dest="no_remote_cache", action="store_true",
        help="do not attach any remote cache tier",
    )

    args = parser.parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "report": _cmd_report,
        "eval": _cmd_eval,
        "demo": _cmd_demo,
        "lint": _cmd_lint,
        "backends": _cmd_backends,
        "transpile": _cmd_transpile,
        "variational": _cmd_variational,
        "cache": _cmd_cache,
        "cache-server": _cmd_cache_server,
        "eval-server": _cmd_eval_server,
        "eval-worker": _cmd_eval_worker,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
