"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list the available experiment drivers
``run <name>``             run one driver (figure2, figure3, figure4,
                           table1, multipass, ablations)
``report [path]``          regenerate EXPERIMENTS.md
``eval <arm>``             evaluate one pipeline arm on the test suite
                           (arm = base | ft | rag | cot | scot | mp3);
                           ``--workers N`` fans (task, sample) episodes
                           across N worker processes — bit-identical to the
                           serial run — with ``--progress`` showing a meter;
                           ``--cache-dir`` persists execution results on disk
                           so a repeat run simulates nothing, ``--remote-cache
                           URL`` shares a warm store across machines,
                           ``--executor process`` fans simulation across
                           worker processes
``demo``                   one multi-agent generation episode, verbose
``backends``               list registered execution backends and aliases
``cache``                  inspect, ``--clear``, or ``--prune`` (with
                           ``--max-bytes/--max-entries/--max-age`` bounds)
                           the on-disk result cache
``cache-server``           serve a cache directory over HTTP so a fleet of
                           workers shares one warm store
"""

from __future__ import annotations

import argparse
import sys

EXPERIMENTS = ("figure2", "figure3", "figure4", "table1", "multipass", "ablations")

ARMS = {
    "base": dict(fine_tuned=False),
    "ft": dict(fine_tuned=True),
    "rag": dict(fine_tuned=True, rag_docs=True, rag_guides=True),
    "cot": dict(fine_tuned=True, prompt_style="cot"),
    "scot": dict(fine_tuned=True, prompt_style="scot"),
    "mp3": dict(fine_tuned=True),
}


def _cmd_experiments(_args) -> int:
    for name in EXPERIMENTS:
        print(f"  {name:10s}  python -m repro.experiments.{name}")
    return 0


def _cmd_run(args) -> int:
    import importlib

    if args.name not in EXPERIMENTS:
        print(f"unknown experiment '{args.name}'; choose from {EXPERIMENTS}")
        return 2
    module = importlib.import_module(f"repro.experiments.{args.name}")
    module.main()
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.generate_report import collect, render

    sections = collect(samples_per_task=args.samples, workers=args.workers)
    with open(args.path, "w") as handle:
        handle.write(render(sections))
    print(f"wrote {args.path} ({len(sections)} sections)")
    return 0


def _cmd_eval(args) -> int:
    from repro.evalsuite import (
        PipelineSettings,
        build_suite,
        comparison_table,
        evaluate,
        execution_stats_table,
        progress_printer,
    )
    from repro.llm.faults import ModelConfig
    from repro.quantum.execution import (
        ExecutionService,
        default_service,
        set_default_service,
    )

    if args.arm not in ARMS:
        print(f"unknown arm '{args.arm}'; choose from {sorted(ARMS)}")
        return 2
    if args.cache_dir or args.remote_cache or args.executor:
        # Rebuild the shared service with the requested persistence/executor;
        # everything downstream (sandboxed programs, graders, QEC memory
        # experiments) funnels through it.  The REPRO_CACHE_MAX_* bounds
        # apply here exactly as they do to the env-built default service.
        from repro.quantum.execution import CacheLimits

        set_default_service(
            ExecutionService(
                cache_dir=args.cache_dir or None,
                cache_limits=(
                    CacheLimits.from_env() if args.cache_dir else None
                ),
                remote_url=args.remote_cache or None,
                executor=args.executor or "thread",
            ),
            shutdown_previous=True,
        )
    settings = PipelineSettings(
        ModelConfig("3b", **ARMS[args.arm]),
        max_passes=3 if args.arm == "mp3" else 1,
        samples_per_task=args.samples,
        label=args.arm,
    )
    result = evaluate(
        settings,
        build_suite(),
        workers=args.workers,
        progress=progress_printer(args.arm) if args.progress else None,
    )
    print(comparison_table([result]).render())
    if args.exec_stats:
        print()
        print(execution_stats_table([result]).render())
        stats = default_service().stats()
        line = (
            f"service totals: {stats.get('simulations', 0)} simulations, "
            f"{stats.get('simulations_deduped', 0)} deduped, "
            f"{stats.get('cache_hits', 0)} cache hits "
            f"({stats.get('cache_disk_hits', 0)} from disk, "
            f"{stats.get('cache_remote_hits', 0)} from remote), "
            f"executor={stats.get('executor', 'thread')}"
        )
        if "cache_dir" in stats:
            line += f", cache_dir={stats['cache_dir']}"
            if stats.get("cache_evictions"):
                line += f" ({stats['cache_evictions']} evictions)"
        if "cache_url" in stats:
            line += f", cache_url={stats['cache_url']}"
            if stats.get("cache_remote_errors"):
                line += f" ({stats['cache_remote_errors']} remote errors)"
        print(line)
    return 0


def _cmd_demo(args) -> int:
    from repro.agents import Orchestrator
    from repro.errors import BackendError
    from repro.llm import make_model, synthesize
    from repro.quantum.execution import resolve_backend

    if args.qec and not args.backend:
        print("error: --qec needs a device target; pass e.g. --backend brisbane")
        return 2
    try:
        target = resolve_backend(args.backend) if args.backend else None
    except BackendError as exc:
        print(f"error: {exc}")
        return 2
    orchestrator = Orchestrator(
        model=make_model(fine_tuned=True, prompt_style="scot"), max_passes=3
    )
    artifact = orchestrator.run_episode(
        "Implement Grover search over 3 qubits for the marked state 101, "
        "using the optimal number of iterations.",
        params={"marked": "101"},
        reference_code=synthesize("grover", {"marked": "101"}, "correct"),
        seed=args.seed,
        target_backend=target,
        apply_qec=args.qec,
    )
    print(artifact.log.render())
    print(f"\naccepted: {artifact.accepted}")
    if artifact.qec is not None:
        print(
            f"qec: suppression {artifact.qec.suppression_factor:.4f} on "
            f"'{artifact.qec.corrected_backend.name}'"
        )
    print("\n--- generated program ---")
    print(artifact.code)
    return 0


def _limits_from_args(args):
    """A CacheLimits from --max-* flags, falling back to the environment."""
    from repro.quantum.execution import CacheLimits

    kwargs = {}
    if getattr(args, "max_bytes", None) is not None:
        kwargs["max_bytes"] = args.max_bytes
    if getattr(args, "max_entries", None) is not None:
        kwargs["max_entries"] = args.max_entries
    if getattr(args, "max_age", None) is not None:
        kwargs["max_age_seconds"] = args.max_age
    return CacheLimits(**kwargs) if kwargs else CacheLimits.from_env()


def _cmd_cache(args) -> int:
    import os

    from repro.quantum.execution import DiskResultCache
    from repro.quantum.execution.service import CACHE_DIR_ENV

    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(f"no cache dir: pass --cache-dir or set {CACHE_DIR_ENV}")
        return 2
    if not os.path.isdir(cache_dir):
        # Inspection must not create directories: a typo'd path should be
        # reported, not silently materialised as an empty cache.
        print(f"no cache at {cache_dir}: directory does not exist")
        return 2
    disk = DiskResultCache(cache_dir)
    entries = len(disk)
    if args.clear:
        disk.clear()
        print(f"cleared {entries} entries from {cache_dir}")
        return 0
    if args.prune:
        limits = _limits_from_args(args)
        if limits is None or not limits.bounded:
            print(
                "nothing to prune against: pass --max-bytes/--max-entries/"
                "--max-age or set REPRO_CACHE_MAX_BYTES/_MAX_ENTRIES/_MAX_AGE"
            )
            return 2
        evicted = disk.prune(limits)
        print(
            f"pruned {evicted} of {entries} entries from {cache_dir}: "
            f"{len(disk)} entries, {disk.size_bytes()} bytes remain"
        )
        return 0
    print(
        f"execution result cache at {cache_dir}: {entries} entries, "
        f"{disk.size_bytes()} bytes"
    )
    return 0


def _cmd_cache_server(args) -> int:
    import os

    from repro.quantum.execution import CacheServer
    from repro.quantum.execution.service import CACHE_DIR_ENV

    cache_dir = args.dir or os.environ.get(CACHE_DIR_ENV, "").strip()
    if not cache_dir:
        print(f"no cache dir: pass --dir or set {CACHE_DIR_ENV}")
        return 2
    limits = _limits_from_args(args)
    server = CacheServer(
        cache_dir, host=args.host, port=args.port, limits=limits, quiet=False
    )
    print(
        f"serving execution result cache {cache_dir} "
        f"({len(server.disk)} entries) at {server.url}"
        + (f" with limits {limits}" if limits is not None else "")
    )
    print("point workers at it:  repro eval <arm> --remote-cache "
          f"{server.url}   (or REPRO_CACHE_URL={server.url})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_backends(_args) -> int:
    from repro.quantum.execution import default_service, get_backend, provider

    registry = provider()
    for name in registry.names():
        backend = get_backend(name)
        aliases = registry.aliases_of(name)
        alias_note = f"  (aliases: {', '.join(aliases)})" if aliases else ""
        noise = "noisy" if backend.noise_model is not None else "ideal"
        coupled = (
            "coupled" if backend.coupling_map is not None else "fully-connected"
        )
        print(
            f"  {name:18s} {backend.num_qubits:>4d} qubits  "
            f"{noise:5s}  {coupled}{alias_note}"
        )
    stats = default_service().stats()
    print(
        f"\nexecution service [{stats.get('executor', 'thread')}]: "
        f"{stats.get('simulations', 0)} simulations, "
        f"{stats.get('cache_hits', 0)} cache hits "
        f"({stats.get('cache_hit_rate', 0.0):.0%} hit rate)"
        + (
            f", disk cache at {stats['cache_dir']}"
            if "cache_dir" in stats
            else ""
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DAC-2025 quantum-codegen reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list experiment drivers")

    run_parser = sub.add_parser("run", help="run one experiment driver")
    run_parser.add_argument("name")

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("path", nargs="?", default="EXPERIMENTS.md")
    report_parser.add_argument("--samples", type=int, default=6)
    report_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool size for the experiment drivers (bit-identical "
        "results for any N; default: $REPRO_EVAL_WORKERS or serial)",
    )

    eval_parser = sub.add_parser("eval", help="evaluate one arm on the suite")
    eval_parser.add_argument("arm")
    eval_parser.add_argument("--samples", type=int, default=4)
    eval_parser.add_argument(
        "--workers", type=int, default=None,
        help="fan (task, sample) episodes across this many worker processes; "
        "results are bit-identical to the serial run for any N "
        "(default: $REPRO_EVAL_WORKERS or serial)",
    )
    eval_parser.add_argument(
        "--progress", action="store_true",
        help="render a live chunk-completion meter on stderr",
    )
    eval_parser.add_argument(
        "--exec-stats", action="store_true", dest="exec_stats",
        help="also print ExecutionService simulation/cache counters",
    )
    eval_parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="persist execution results under this directory (warm-starts "
        "a repeat of the same arm across processes)",
    )
    eval_parser.add_argument(
        "--remote-cache", dest="remote_cache", default=None, metavar="URL",
        help="share execution results with a 'repro cache-server' at this "
        "URL (a cold worker pointed at a warm server simulates nothing)",
    )
    eval_parser.add_argument(
        "--executor", choices=("thread", "process"), default=None,
        help="worker-pool strategy for cache misses (default: thread)",
    )

    demo_parser = sub.add_parser("demo", help="one verbose generation episode")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument(
        "--backend", default=None,
        help="target backend name/alias from the registry (see 'backends')",
    )
    demo_parser.add_argument(
        "--qec", action="store_true",
        help="attach the QEC agent to the target backend",
    )

    sub.add_parser("backends", help="list registered execution backends")

    cache_parser = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the on-disk execution result cache",
    )
    cache_parser.add_argument(
        "--cache-dir", dest="cache_dir", default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every persisted entry"
    )
    cache_parser.add_argument(
        "--prune", action="store_true",
        help="evict least-recently-used entries until the --max-* bounds "
        "(or their REPRO_CACHE_MAX_* equivalents) are satisfied",
    )
    server_parser = sub.add_parser(
        "cache-server",
        help="serve a cache directory over HTTP for a fleet of workers",
    )
    server_parser.add_argument(
        "--dir", default=None,
        help="cache directory to serve (default: $REPRO_CACHE_DIR)",
    )
    server_parser.add_argument("--host", default="127.0.0.1")
    server_parser.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 binds an ephemeral port)",
    )
    for bounded in (cache_parser, server_parser):
        bounded.add_argument(
            "--max-bytes", dest="max_bytes", type=int, default=None,
            help="byte budget for the store (LRU eviction)",
        )
        bounded.add_argument(
            "--max-entries", dest="max_entries", type=int, default=None,
            help="entry-count budget for the store",
        )
        bounded.add_argument(
            "--max-age", dest="max_age", type=float, default=None,
            help="evict entries idle for more than this many seconds",
        )

    args = parser.parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "report": _cmd_report,
        "eval": _cmd_eval,
        "demo": _cmd_demo,
        "backends": _cmd_backends,
        "cache": _cmd_cache,
        "cache-server": _cmd_cache_server,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
