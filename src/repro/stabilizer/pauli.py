"""Pauli string algebra.

A :class:`PauliString` is an n-qubit Pauli operator with a phase in
{+1, +i, -1, -i} tracked as an exponent of i (mod 4).  Qubit 0 is the first
character of the *internal* tuple; ``from_label`` accepts Qiskit-style labels
where the leftmost character is the highest-indexed qubit.

These are the building blocks for stabilizer codes: code definitions,
commutation checks, syndrome computation, and logical-operator bookkeeping all
reduce to PauliString operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import QECError

_PAULIS = ("I", "X", "Y", "Z")

# Single-qubit multiplication table: (a, b) -> (product, i-phase exponent).
# E.g. X*Y = iZ -> ("Z", 1); Y*X = -iZ -> ("Z", 3).
_MUL: dict[tuple[str, str], tuple[str, int]] = {
    ("I", "I"): ("I", 0), ("I", "X"): ("X", 0), ("I", "Y"): ("Y", 0), ("I", "Z"): ("Z", 0),
    ("X", "I"): ("X", 0), ("X", "X"): ("I", 0), ("X", "Y"): ("Z", 1), ("X", "Z"): ("Y", 3),
    ("Y", "I"): ("Y", 0), ("Y", "X"): ("Z", 3), ("Y", "Y"): ("I", 0), ("Y", "Z"): ("X", 1),
    ("Z", "I"): ("Z", 0), ("Z", "X"): ("Y", 1), ("Z", "Y"): ("X", 3), ("Z", "Z"): ("I", 0),
}


class PauliString:
    """An n-qubit Pauli operator with phase i^k."""

    __slots__ = ("paulis", "phase_exp")

    def __init__(self, paulis: Sequence[str], phase_exp: int = 0) -> None:
        paulis = tuple(p.upper() for p in paulis)
        for p in paulis:
            if p not in _PAULIS:
                raise QECError(f"invalid Pauli character '{p}'")
        self.paulis = paulis
        self.phase_exp = phase_exp % 4

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(("I",) * num_qubits)

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Parse a Qiskit-style label like ``'-iXZI'`` (leftmost = qubit n-1)."""
        phase_exp = 0
        body = label
        if body.startswith("-i"):
            phase_exp, body = 3, body[2:]
        elif body.startswith("+i") or body.startswith("i"):
            phase_exp, body = 1, body.lstrip("+")[1:]
        elif body.startswith("-"):
            phase_exp, body = 2, body[1:]
        elif body.startswith("+"):
            body = body[1:]
        return cls(tuple(reversed(body)), phase_exp)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, pauli: str) -> "PauliString":
        """A single Pauli on one qubit of an n-qubit identity."""
        if not 0 <= qubit < num_qubits:
            raise QECError(f"qubit {qubit} out of range for {num_qubits} qubits")
        paulis = ["I"] * num_qubits
        paulis[qubit] = pauli.upper()
        return cls(paulis)

    @classmethod
    def from_sparse(
        cls, num_qubits: int, entries: Iterable[tuple[int, str]]
    ) -> "PauliString":
        """Build from (qubit, pauli) pairs, e.g. ``[(0, 'X'), (3, 'X')]``."""
        paulis = ["I"] * num_qubits
        for qubit, pauli in entries:
            if not 0 <= qubit < num_qubits:
                raise QECError(f"qubit {qubit} out of range")
            if paulis[qubit] != "I":
                raise QECError(f"duplicate entry for qubit {qubit}")
            paulis[qubit] = pauli.upper()
        return cls(paulis)

    # -- properties -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.paulis)

    @property
    def weight(self) -> int:
        """Number of non-identity positions."""
        return sum(1 for p in self.paulis if p != "I")

    @property
    def phase(self) -> complex:
        return (1, 1j, -1, -1j)[self.phase_exp]

    def support(self) -> tuple[int, ...]:
        return tuple(q for q, p in enumerate(self.paulis) if p != "I")

    def x_bits(self) -> np.ndarray:
        """Boolean vector: positions carrying an X component (X or Y)."""
        return np.array([p in ("X", "Y") for p in self.paulis], dtype=bool)

    def z_bits(self) -> np.ndarray:
        """Boolean vector: positions carrying a Z component (Z or Y)."""
        return np.array([p in ("Z", "Y") for p in self.paulis], dtype=bool)

    # -- algebra ---------------------------------------------------------------

    def commutes_with(self, other: "PauliString") -> bool:
        """True when the operators commute (phases are irrelevant)."""
        if other.num_qubits != self.num_qubits:
            raise QECError("Pauli strings act on different qubit counts")
        anti = 0
        for a, b in zip(self.paulis, other.paulis):
            if a != "I" and b != "I" and a != b:
                anti += 1
        return anti % 2 == 0

    def __mul__(self, other: "PauliString") -> "PauliString":
        if other.num_qubits != self.num_qubits:
            raise QECError("Pauli strings act on different qubit counts")
        phase = self.phase_exp + other.phase_exp
        out = []
        for a, b in zip(self.paulis, other.paulis):
            prod, extra = _MUL[(a, b)]
            out.append(prod)
            phase += extra
        return PauliString(out, phase)

    def conjugate_sign_under(self, other: "PauliString") -> int:
        """Return +1/-1: the sign picked up when ``other`` conjugates ``self``."""
        return 1 if self.commutes_with(other) else -1

    def tensor(self, other: "PauliString") -> "PauliString":
        return PauliString(
            self.paulis + other.paulis, self.phase_exp + other.phase_exp
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PauliString):
            return NotImplemented
        return self.paulis == other.paulis and self.phase_exp == other.phase_exp

    def __hash__(self) -> int:
        return hash((self.paulis, self.phase_exp))

    def to_label(self) -> str:
        prefix = ("", "i", "-", "-i")[self.phase_exp]
        return prefix + "".join(reversed(self.paulis))

    def __repr__(self) -> str:
        return f"PauliString('{self.to_label()}')"


def syndrome_of(error: PauliString, checks: Sequence[PauliString]) -> tuple[int, ...]:
    """Syndrome bits: 1 where ``error`` anticommutes with a check."""
    return tuple(0 if error.commutes_with(c) else 1 for c in checks)
