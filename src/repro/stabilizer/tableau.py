"""Aaronson–Gottesman stabilizer-tableau (CHP) simulation.

Simulates Clifford circuits (H, S, X, Y, Z, CX, CZ, SWAP, measure, reset) on
hundreds of qubits in O(n^2) per measurement, which is what makes distance-5+
surface-code experiments tractable where dense simulation is hopeless.

The tableau holds 2n+1 rows (n destabilizers, n stabilizers, one scratch row)
of X/Z bit matrices plus a sign vector, exactly following Aaronson & Gottesman
(2004), "Improved simulation of stabilizer circuits".
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.stabilizer.pauli import PauliString


class StabilizerTableau:
    """A stabilizer state on ``num_qubits`` qubits, initially |0...0>."""

    def __init__(self, num_qubits: int, rng: np.random.Generator | None = None) -> None:
        if num_qubits < 1:
            raise SimulationError("tableau needs at least one qubit")
        self.num_qubits = num_qubits
        self._rng = rng if rng is not None else np.random.default_rng()
        n = num_qubits
        rows = 2 * n + 1
        self._x = np.zeros((rows, n), dtype=bool)
        self._z = np.zeros((rows, n), dtype=bool)
        self._r = np.zeros(rows, dtype=bool)
        # Destabilizers X_i, stabilizers Z_i.
        for i in range(n):
            self._x[i, i] = True
            self._z[n + i, i] = True

    # -- internal helpers -----------------------------------------------------

    def _g(self, x1: bool, z1: bool, x2: bool, z2: bool) -> int:
        """Phase exponent contribution when multiplying single-qubit Paulis."""
        if not x1 and not z1:
            return 0
        if x1 and z1:  # Y
            return int(z2) - int(x2)
        if x1 and not z1:  # X
            return int(z2) * (2 * int(x2) - 1)
        # Z
        return int(x2) * (1 - 2 * int(z2))

    def _rowsum(self, h: int, i: int) -> None:
        """row[h] := row[h] * row[i], with phase tracking."""
        two_r = 2 * int(self._r[h]) + 2 * int(self._r[i])
        phase = two_r + int(
            sum(
                self._g(self._x[i, j], self._z[i, j], self._x[h, j], self._z[h, j])
                for j in range(self.num_qubits)
            )
        )
        self._r[h] = (phase % 4) == 2
        self._x[h] ^= self._x[i]
        self._z[h] ^= self._z[i]

    # -- gates ------------------------------------------------------------------

    def h(self, q: int) -> None:
        self._r ^= self._x[:, q] & self._z[:, q]
        self._x[:, q], self._z[:, q] = self._z[:, q].copy(), self._x[:, q].copy()

    def s(self, q: int) -> None:
        self._r ^= self._x[:, q] & self._z[:, q]
        self._z[:, q] ^= self._x[:, q]

    def sdg(self, q: int) -> None:
        self.s(q)
        self.z(q)

    def x(self, q: int) -> None:
        self._r ^= self._z[:, q]

    def y(self, q: int) -> None:
        self._r ^= self._x[:, q] ^ self._z[:, q]

    def z(self, q: int) -> None:
        self._r ^= self._x[:, q]

    def cx(self, control: int, target: int) -> None:
        self._r ^= (
            self._x[:, control]
            & self._z[:, target]
            & (self._x[:, target] ^ self._z[:, control] ^ True)
        )
        self._x[:, target] ^= self._x[:, control]
        self._z[:, control] ^= self._z[:, target]

    def cz(self, control: int, target: int) -> None:
        self.h(target)
        self.cx(control, target)
        self.h(target)

    def swap(self, a: int, b: int) -> None:
        self.cx(a, b)
        self.cx(b, a)
        self.cx(a, b)

    def apply_pauli(self, pauli: PauliString) -> None:
        """Apply an n-qubit Pauli error (phase ignored — it is a global phase)."""
        for q, p in enumerate(pauli.paulis):
            if p == "X":
                self.x(q)
            elif p == "Y":
                self.y(q)
            elif p == "Z":
                self.z(q)

    # -- measurement --------------------------------------------------------------

    def measure(self, q: int) -> int:
        """Measure qubit ``q`` in the Z basis; collapses the state."""
        n = self.num_qubits
        p = next((i for i in range(n, 2 * n) if self._x[i, q]), None)
        if p is not None:
            # Outcome is random.
            for i in range(2 * n):
                if i != p and self._x[i, q]:
                    self._rowsum(i, p)
            self._x[p - n] = self._x[p].copy()
            self._z[p - n] = self._z[p].copy()
            self._r[p - n] = self._r[p]
            self._x[p] = False
            self._z[p] = False
            self._z[p, q] = True
            outcome = int(self._rng.random() < 0.5)
            self._r[p] = bool(outcome)
            return outcome
        # Outcome is deterministic: reduce into the scratch row.
        scratch = 2 * n
        self._x[scratch] = False
        self._z[scratch] = False
        self._r[scratch] = False
        for i in range(n):
            if self._x[i, q]:
                self._rowsum(scratch, i + n)
        return int(self._r[scratch])

    def reset(self, q: int) -> None:
        outcome = self.measure(q)
        if outcome == 1:
            self.x(q)

    def measure_pauli(self, pauli: PauliString) -> int:
        """Measure an arbitrary Pauli observable destructively-correctly.

        Implemented by rotating the observable onto a Z measurement of an
        existing qubit via Clifford conjugation: each X/Y factor is rotated to
        Z, supports are fanned into the first support qubit with CX, measured,
        then everything is undone.
        """
        support = pauli.support()
        if not support:
            raise SimulationError("cannot measure the identity")
        undo: list[tuple[str, tuple[int, ...]]] = []
        for q in support:
            p = pauli.paulis[q]
            if p == "X":
                self.h(q)
                undo.append(("h", (q,)))
            elif p == "Y":
                self.sdg(q)
                self.h(q)
                undo.append(("h", (q,)))
                undo.append(("s", (q,)))
        root = support[0]
        for q in support[1:]:
            self.cx(q, root)
            undo.append(("cx", (q, root)))
        outcome = self.measure(root)
        for name, args in reversed(undo):
            getattr(self, name)(*args)
        return outcome

    # -- circuit integration -----------------------------------------------------

    _SUPPORTED = {"h", "s", "sdg", "x", "y", "z", "cx", "cz", "swap", "id"}

    def apply_circuit(self, circuit: QuantumCircuit) -> list[int]:
        """Apply a Clifford circuit; returns the classical bit values.

        Raises:
            SimulationError: on non-Clifford gates.
        """
        if circuit.num_qubits > self.num_qubits:
            raise SimulationError(
                f"circuit needs {circuit.num_qubits} qubits, tableau has "
                f"{self.num_qubits}"
            )
        clbits = [0] * circuit.num_clbits
        for inst in circuit:
            if inst.name == "barrier" or inst.name == "id":
                continue
            if inst.condition is not None:
                bit, value = inst.condition
                if clbits[bit] != value:
                    continue
            if inst.name == "measure":
                clbits[inst.clbits[0]] = self.measure(inst.qubits[0])
                continue
            if inst.name == "reset":
                self.reset(inst.qubits[0])
                continue
            if inst.name not in self._SUPPORTED:
                raise SimulationError(
                    f"'{inst.name}' is not a Clifford tableau gate"
                )
            getattr(self, inst.name)(*inst.qubits)
        return clbits

    # -- inspection ----------------------------------------------------------------

    def stabilizer_generators(self) -> list[PauliString]:
        """The current stabilizer group generators as Pauli strings."""
        n = self.num_qubits
        out = []
        for i in range(n, 2 * n):
            paulis = []
            for j in range(n):
                x, z = self._x[i, j], self._z[i, j]
                paulis.append("Y" if x and z else "X" if x else "Z" if z else "I")
            out.append(PauliString(paulis, 2 if self._r[i] else 0))
        return out

    def expectation_sign(self, pauli: PauliString) -> int | None:
        """Expectation of a Pauli observable: +1, -1, or None when random.

        Non-destructive: works on a copy.
        """
        copy = self.copy()
        support = pauli.support()
        if not support:
            return 1
        # A Pauli has definite value iff measuring it is deterministic; use
        # the same rotation trick on a copy and check determinism.
        for q in support:
            p = pauli.paulis[q]
            if p == "X":
                copy.h(q)
            elif p == "Y":
                copy.sdg(q)
                copy.h(q)
        root = support[0]
        for q in support[1:]:
            copy.cx(q, root)
        n = copy.num_qubits
        if any(copy._x[i, root] for i in range(n, 2 * n)):
            return None
        outcome = copy.measure(root)
        return -1 if outcome else 1

    def copy(self) -> "StabilizerTableau":
        out = StabilizerTableau.__new__(StabilizerTableau)
        out.num_qubits = self.num_qubits
        out._rng = self._rng
        out._x = self._x.copy()
        out._z = self._z.copy()
        out._r = self._r.copy()
        return out
