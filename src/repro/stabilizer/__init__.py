"""Stabilizer formalism: Pauli algebra and CHP tableau simulation."""

from repro.stabilizer.pauli import PauliString, syndrome_of
from repro.stabilizer.tableau import StabilizerTableau

__all__ = ["PauliString", "StabilizerTableau", "syndrome_of"]
