"""Experiment drivers: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.common import ExperimentResult, ExperimentRow

__all__ = ["ExperimentResult", "ExperimentRow"]
