"""Figure 4 — QEC on the constant Deutsch-Jozsa oracle.

Paper: "Figure 4 shows an example of the constant Deutsch-Jozsa oracle under
a quantum noise environment, with and without the use of our framework.  We
expect the circuit to yield the |000> state...  Due to the fact that we
cannot directly alter physical qubits on IBM devices with corrections, we
simulated our results for (c) using a lower error probability than IBM
Brisbane, corresponding to the new error rate after QEC."

Reproduction:

* (a) the generated decoder's correction behaviour (suppression factor from a
  memory experiment at Brisbane's physical error rate);
* (b) the DJ circuit transpiled and run on FakeBrisbane's noise model;
* (c) the same circuit run with every error probability scaled by the QEC
  suppression factor — exactly the paper's methodology.
"""

from __future__ import annotations

from repro.agents.qec_agent import QECAgent
from repro.experiments.common import ExperimentResult
from repro.quantum.execution import default_service, get_backend, stats_scope
from repro.quantum.library import deutsch_jozsa
from repro.quantum.transpiler import transpile
from repro.utils.tables import format_histogram

EXPECTED = "000"


def _probability(counts: dict[str, int], key: str) -> float:
    total = sum(counts.values())
    return counts.get(key, 0) / total if total else 0.0


def run(
    num_qubits: int = 3,
    shots: int = 4096,
    seed: int = 9,
    distance: int = 3,
) -> ExperimentResult:
    experiment = ExperimentResult(
        "figure4", "QEC on the constant Deutsch-Jozsa oracle (FakeBrisbane)"
    )
    backend = get_backend("fake_brisbane")
    service = default_service()
    circuit = deutsch_jozsa(num_qubits, "constant0")

    # An attributable scope (not a racy before/after stats diff): async
    # submissions below credit it from the pool workers, so the appendix
    # numbers are exact even when this driver shares the service.
    with stats_scope("figure4") as scope:
        # Content-addressed transpile stage: a repeat of this driver (same
        # process or a warm disk cache) performs zero transpiles.
        transpiled = transpile(circuit, backend=backend)
        # (b) noisy device run, submitted asynchronously so it simulates
        # while the QEC agent generates the decoder below.
        noisy_job = service.submit(
            transpiled, backend=backend, shots=shots, seed=seed
        )

        # (a) + (c): the QEC agent generates the decoder and corrected backend.
        agent = QECAgent(distance=distance, shots=300, seed=seed)
        application = agent.apply(backend, allow_simulated_lattice=True)
        corrected_counts = (
            service.submit(
                transpiled,
                backend=application.corrected_backend,
                shots=shots,
                seed=seed,
            )
            .result()
            .get_counts()
        )
        noisy_counts = noisy_job.result().get_counts()
    p_corrected = _probability(corrected_counts, EXPECTED)
    p_noisy = _probability(noisy_counts, EXPECTED)

    experiment.add(
        "P(|000>) on noisy Brisbane (b)", None, 100.0 * p_noisy,
        note=f"{shots} shots",
    )
    experiment.add(
        "P(|000>) after QEC corrections (c)", None, 100.0 * p_corrected,
        note=f"noise scaled x{application.suppression_factor:.3f}",
    )
    experiment.add(
        "error probability reduction", None,
        100.0 * ((1 - p_noisy) - (1 - p_corrected)) / max(1e-9, 1 - p_noisy),
        note="relative shrink of non-|000> mass",
    )
    experiment.add(
        "average qubit lifetime gain", None, application.lifetime_gain,
        unit="x", note=f"d={distance} surface code via MWPM",
    )
    experiment.extras.append(
        "(a) decoder generated for topology 'brisbane' "
        f"(simulated lattice fallback: {application.decoder.simulated_lattice}; "
        "heavy-hex is not a fully-connected lattice — paper Section V-E)."
    )
    experiment.extras.append(
        format_histogram(noisy_counts, title="(b) noisy Brisbane counts")
    )
    experiment.extras.append(
        format_histogram(corrected_counts, title="(c) QEC-corrected counts")
    )
    counters = scope.as_dict()
    experiment.extras.append(
        f"execution service: {counters['simulations']} simulations (device "
        "runs + the QEC agent's memory experiment on the 'qec_memory' "
        f"backend), {counters['cache_hits']} cache hits, "
        f"{counters['transpiles']} transpiles "
        f"({counters['transpile_cache_hits']} transpile cache hits) — a "
        "repeat of this driver is served entirely from the cache, "
        "transpilation included."
    )
    return experiment


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
