"""Shared infrastructure for the per-figure/table experiment drivers.

Each driver returns a structured result and can render a paper-vs-measured
table; EXPERIMENTS.md is generated from exactly these outputs, so the
documented numbers can never drift from what the code produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.tables import AsciiTable


@dataclass
class ExperimentRow:
    """One row of a paper-vs-measured comparison."""

    name: str
    paper_value: float | None
    measured_value: float
    unit: str = "%"
    note: str = ""

    def formatted(self) -> list[str]:
        paper = f"{self.paper_value:.1f}{self.unit}" if self.paper_value is not None else "-"
        return [self.name, paper, f"{self.measured_value:.1f}{self.unit}", self.note]


@dataclass
class ExperimentResult:
    """A named experiment with paper-vs-measured rows and free-form extras."""

    experiment_id: str
    title: str
    rows: list[ExperimentRow] = field(default_factory=list)
    extras: list[str] = field(default_factory=list)

    def add(
        self,
        name: str,
        paper: float | None,
        measured: float,
        unit: str = "%",
        note: str = "",
    ) -> None:
        self.rows.append(ExperimentRow(name, paper, measured, unit, note))

    def table(self) -> AsciiTable:
        table = AsciiTable(
            ["Series", "Paper", "Measured", "Note"],
            title=f"{self.experiment_id}: {self.title}",
        )
        for row in self.rows:
            table.add_row(row.formatted())
        return table

    def render(self) -> str:
        parts = [self.table().render()]
        parts.extend(self.extras)
        return "\n\n".join(parts)

    def measured(self, name: str) -> float:
        for row in self.rows:
            if row.name == name:
                return row.measured_value
        raise KeyError(f"no row named '{name}' in {self.experiment_id}")
