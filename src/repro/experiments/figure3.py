"""Figure 3 — suite accuracy per optimization technique.

The paper's bar chart: percentage of test-suite prompts that are both
syntactically and semantically valid for each technique.  Reported operating
points: fine-tuning lifts pass@1 by ~10% to ~28%; RAG adds only ~4%; CoT adds
~32% and SCoT ~40% over the fine-tuned model ("up to 50%" over base in the
abstract's accounting); multi-pass reaches ~34%.
"""

from __future__ import annotations

from repro.evalsuite.reporting import accuracy_bars
from repro.evalsuite.runner import EvalResult, PipelineSettings, evaluate_many
from repro.evalsuite.suite import build_suite
from repro.experiments.common import ExperimentResult
from repro.llm.faults import ModelConfig

#: Paper operating points (percent accuracy on the custom suite).
PAPER_VALUES = {
    "Base-3B": 18.0,
    "FT": 28.0,
    "FT+RAG": 32.0,
    "FT+CoT": 60.0,
    "FT+SCoT": 68.0,
    "FT+MP3": 34.0,
}


def arms(samples_per_task: int = 6, base_seed: int = 1234) -> list[PipelineSettings]:
    """The six Figure-3 pipeline configurations."""
    return [
        PipelineSettings(
            ModelConfig("3b", False), samples_per_task=samples_per_task,
            base_seed=base_seed, label="Base-3B",
        ),
        PipelineSettings(
            ModelConfig("3b", True), samples_per_task=samples_per_task,
            base_seed=base_seed, label="FT",
        ),
        PipelineSettings(
            ModelConfig("3b", True, rag_docs=True, rag_guides=True),
            samples_per_task=samples_per_task, base_seed=base_seed, label="FT+RAG",
        ),
        PipelineSettings(
            ModelConfig("3b", True, prompt_style="cot"),
            samples_per_task=samples_per_task, base_seed=base_seed, label="FT+CoT",
        ),
        PipelineSettings(
            ModelConfig("3b", True, prompt_style="scot"),
            samples_per_task=samples_per_task, base_seed=base_seed, label="FT+SCoT",
        ),
        PipelineSettings(
            ModelConfig("3b", True), max_passes=3,
            samples_per_task=samples_per_task, base_seed=base_seed, label="FT+MP3",
        ),
    ]


def run(
    samples_per_task: int = 6, base_seed: int = 1234, workers: int | None = None
) -> tuple[ExperimentResult, list[EvalResult]]:
    """Run all six arms over the suite; returns the comparison + raw results.

    The arms are independent, so they share one worker pool
    (``workers`` / ``REPRO_EVAL_WORKERS``) with bit-identical results and
    exact per-arm execution stats.
    """
    tasks = build_suite()
    results = evaluate_many(
        arms(samples_per_task, base_seed), tasks, workers=workers
    )
    experiment = ExperimentResult(
        "figure3", "Suite accuracy by technique (syntactic + semantic valid)"
    )
    for result in results:
        experiment.add(
            result.label,
            PAPER_VALUES.get(result.label),
            100.0 * result.accuracy(),
            note=f"syntactic {result.syntactic_accuracy():.0%}",
        )
    experiment.extras.append(
        accuracy_bars(results, "Figure 3 (reproduced): fraction valid per arm")
    )
    # Abstract claims, derived the way the paper derives them.
    ft = next(r for r in results if r.label == "FT")
    scot = next(r for r in results if r.label == "FT+SCoT")
    rag = next(r for r in results if r.label == "FT+RAG")
    experiment.add(
        "SCoT gain over FT (abstract: 'up to 50%')",
        40.0,
        100.0 * (scot.accuracy() - ft.accuracy()),
        note="percentage points",
    )
    experiment.add(
        "RAG gain over FT (abstract: 'only 4%')",
        4.0,
        100.0 * (rag.accuracy() - ft.accuracy()),
        note="percentage points",
    )
    return experiment, results


def main() -> None:
    experiment, _results = run()
    print(experiment.render())


if __name__ == "__main__":
    main()
