"""Ablations over the design choices the paper calls out.

1. **FIM rate** (Section V-A: "the optimal FIM rate was 0.1") — held-out
   perplexity on plain code rises with FIM rate while perplexity on
   FIM-formatted text falls; the geometric-mean trade-off bottoms out at a
   small nonzero rate.
2. **RAG chunking** (Section V-C: "we used a basic RAG splitting technique
   ... we could see better accuracy if we used a more intelligent method") —
   naive fixed-size windows vs code-aware chunks, scored by migration-note
   retrieval coverage.
3. **Decoder choice** (Section V-E's decoder-scalability discussion) — MWPM
   vs union-find vs lookup on logical error rate and decode time.
4. **Surface-code distance / threshold** (Section V-B) — logical error rate
   vs physical rate for d in {3, 5}.
5. **Topology specificity** (Section V-E) — decoder generation across device
   topologies succeeds only on lattice-like maps.
6. **Transpiler optimization level** (the pipeline lowers every generated
   circuit before execution) — what routing/peephole quality buys on a noisy
   device: gate counts, depth, and success probability at levels 0/1/2.
"""

from __future__ import annotations

import time

from repro.errors import TopologyError
from repro.experiments.common import ExperimentResult
from repro.llm.corpus import build_corpus
from repro.llm.finetune import DatasetConfig, TrainingConfig, fine_tune
from repro.llm.tokenizer import FIM_MIDDLE, FIM_PREFIX, FIM_SUFFIX
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.surface import SurfaceCode
from repro.qec.decoder_gen import generate_decoder
from repro.qec.experiments import logical_error_rate
from repro.qec.lookup import LookupDecoder
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import sample_memory
from repro.qec.unionfind import UnionFindDecoder
from repro.quantum.topology import CouplingMap
from repro.rag.chunking import code_aware_chunks, naive_chunks
from repro.rag.docs import API_DOCS
from repro.utils.parallel import parallel_map, resolve_workers
from repro.utils.rng import derive_rng


# ---------------------------------------------------------------------------
# 1. FIM rate
# ---------------------------------------------------------------------------


def _fim_holdout(texts: list[str], rng) -> list[str]:
    """FIM-transform held-out documents for format-familiarity scoring."""
    from repro.llm.finetune import apply_fim
    from repro.llm.tokenizer import tokenize

    return [" ".join(apply_fim(tokenize(t), rng)) for t in texts]


def fim_rate_ablation(
    rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25, 0.5),
    seed: int = 5,
) -> ExperimentResult:
    experiment = ExperimentResult(
        "ablation-fim", "FIM rate vs held-out perplexity (paper optimum: 0.1)"
    )
    corpus = build_corpus(seed=seed)
    rng = derive_rng(seed, "fim-holdout")
    for rate in rates:
        model, report = fine_tune(
            corpus,
            dataset_config=DatasetConfig(fim_rate=rate),
            training_config=TrainingConfig(seed=seed),
        )
        plain_ppl = report.perplexity_after
        holdout = [t for t in (f.content for f in corpus if not f.is_notebook)][:8]
        fim_texts = _fim_holdout(holdout, derive_rng(seed, "fim-eval", rate))
        fim_ppl = sum(model.perplexity(t) for t in fim_texts) / len(fim_texts)
        combined = (plain_ppl * fim_ppl) ** 0.5
        experiment.add(
            f"fim_rate={rate}",
            None,
            combined,
            unit="",
            note=f"plain ppl {plain_ppl:.2f}, FIM-format ppl {fim_ppl:.2f}",
        )
    return experiment


# ---------------------------------------------------------------------------
# 2. RAG chunking
# ---------------------------------------------------------------------------

#: Queries whose answer lives in a specific migration note.
_MIGRATION_QUERIES = (
    ("execute was removed backend run", "execute"),
    ("Aer get_backend removed", "Aer"),
    ("cu1 removed controlled phase", "cu1"),
    ("u3 removed single qubit rotation", "u3"),
    ("toffoli removed three qubit", "toffoli"),
)


def chunking_ablation(chunk_size: int = 400) -> ExperimentResult:
    """Retrieval coverage of migration notes per chunking strategy."""
    from repro.rag.embedding import TfidfEmbedder
    from repro.rag.store import VectorStore

    experiment = ExperimentResult(
        "ablation-chunking",
        "Naive vs code-aware chunking (paper Section V-C caveat)",
    )
    for strategy, chunker in (
        ("naive", lambda d, t: naive_chunks(d, t, chunk_size)),
        ("code_aware", lambda d, t: code_aware_chunks(d, t, chunk_size + 200)),
    ):
        store = VectorStore(TfidfEmbedder())
        chunks = []
        for doc_id, text in API_DOCS.items():
            chunks.extend(chunker(doc_id, text))
        store.add(chunks)
        hits = 0
        for query, must_contain in _MIGRATION_QUERIES:
            results = store.search(query, top_k=1)
            if any(must_contain in h.chunk.text for h in results):
                hits += 1
        # Integrity: a migration note is useful only when its "removed" and
        # its "use ..." replacement survive in the same chunk; boundary-
        # oblivious windows sever them (the paper's stated weakness).
        intact = 0
        total_notes = 0
        for chunk in chunks:
            for line in chunk.text.splitlines():
                if "was removed" in line:
                    total_notes += 1
                    if "use" in line:
                        intact += 1
        experiment.add(
            f"{strategy} top-1 hit rate ({len(chunks)} chunks)",
            None,
            100.0 * hits / len(_MIGRATION_QUERIES),
            note="migration note found at rank 1",
        )
        experiment.add(
            f"{strategy} note integrity",
            None,
            100.0 * intact / max(1, total_notes),
            note=f"{intact}/{total_notes} notes unsevered",
        )
    return experiment


# ---------------------------------------------------------------------------
# 3. Decoder comparison
# ---------------------------------------------------------------------------


def decoder_ablation(
    p_data: float = 0.02, rounds: int = 3, shots: int = 150, seed: int = 3
) -> ExperimentResult:
    experiment = ExperimentResult(
        "ablation-decoders", "Decoder comparison on surface-3 / repetition-5"
    )
    surface = SurfaceCode(3)
    for name, decoder in (
        ("surface-3 MWPM", MWPMDecoder(surface, "x")),
        ("surface-3 union-find", UnionFindDecoder(surface, "x")),
    ):
        start = time.perf_counter()
        result = logical_error_rate(
            surface, decoder, rounds, p_data, shots=shots, seed=seed
        )
        elapsed = (time.perf_counter() - start) / shots * 1000
        experiment.add(
            name,
            None,
            100.0 * result.logical_error_rate,
            note=f"{elapsed:.2f} ms/shot",
        )
    # Lookup decoder: single perfect round (its validity domain).
    rep = RepetitionCode(5)
    lookup = LookupDecoder(rep, "x", strict=False)
    failures = 0
    for shot in range(shots):
        rng = derive_rng(seed, "lookup", shot)
        history = sample_memory(rep, 1, p_data, 0.0, rng, "x")
        correction = lookup.decode(history.syndromes[-1])
        if rep.logical_flipped(history.true_error ^ correction, "x"):
            failures += 1
    experiment.add(
        "repetition-5 lookup (perfect meas.)",
        None,
        100.0 * failures / shots,
        note="single round",
    )
    return experiment


# ---------------------------------------------------------------------------
# 4. Distance / threshold behaviour
# ---------------------------------------------------------------------------


def distance_ablation(
    physical_rates: tuple[float, ...] = (0.005, 0.02, 0.08),
    distances: tuple[int, ...] = (3, 5),
    shots: int = 120,
    seed: int = 17,
) -> ExperimentResult:
    experiment = ExperimentResult(
        "ablation-distance",
        "Logical error rate vs physical rate and distance (threshold shape)",
    )
    for d in distances:
        code = SurfaceCode(d)
        decoder = MWPMDecoder(code, "x")
        for p in physical_rates:
            result = logical_error_rate(
                code, decoder, rounds=d, p_data=p, shots=shots, seed=seed
            )
            experiment.add(
                f"d={d}, p={p}",
                None,
                100.0 * result.logical_error_rate,
                note=f"per-round {result.logical_error_per_round:.4f}",
            )
    return experiment


# ---------------------------------------------------------------------------
# 5. Topology specificity
# ---------------------------------------------------------------------------


def topology_ablation(distance: int = 3) -> ExperimentResult:
    experiment = ExperimentResult(
        "ablation-topology",
        "Decoder generation across device topologies (Section V-E)",
    )
    devices = [
        CouplingMap.grid(5, 5),
        CouplingMap.grid(3, 3),
        CouplingMap.linear(12),
        CouplingMap.ring(12),
        CouplingMap.brisbane(),
    ]
    for device in devices:
        try:
            generated = generate_decoder(device, distance=distance)
            outcome, note = 100.0, f"data qubits placed: {len(generated.data_layout)}"
        except TopologyError as exc:
            outcome, note = 0.0, str(exc).split(":")[1][:60].strip()
        experiment.add(device.name, None, outcome, note=note)
    return experiment


# ---------------------------------------------------------------------------
# 6. Transpiler optimization level
# ---------------------------------------------------------------------------


def optimization_level_ablation(
    shots: int = 2048, seed: int = 11
) -> ExperimentResult:
    """How much does routing/peephole quality buy on a noisy device?

    The same logical circuits are lowered to ``fake_falcon`` at optimization
    levels 0/1/2 through the cached transpile stage, then sampled under the
    device noise model with a fixed seed.  Rows report the success
    probability; notes carry the two-qubit gate count, depth and size the
    level achieved — the circuit-quality axis the evalsuite's
    ``optimization_level`` arm varies.
    """
    from repro.quantum.execution import default_service, get_backend
    from repro.quantum.library import deutsch_jozsa, ghz_state

    experiment = ExperimentResult(
        "ablation-optlevel",
        "Transpiler optimization level: what routing quality buys "
        "(fake_falcon)",
    )
    backend = get_backend("fake_falcon")
    service = default_service()
    cases = [
        ("ghz-4", ghz_state(4, measure=True), ("0000", "1111")),
        ("dj-const0", deutsch_jozsa(3, "constant0"), ("000",)),
    ]
    for name, circuit, accepted in cases:
        for level in (0, 1, 2):
            lowered = service.transpile(
                circuit, backend=backend, optimization_level=level
            )
            counts = (
                service.run(lowered, backend=backend, shots=shots, seed=seed)
                .result()
                .get_counts()
            )
            total = sum(counts.values())
            success = sum(counts.get(k, 0) for k in accepted) / max(1, total)
            two_qubit = sum(
                1 for inst in lowered.instructions if len(inst.qubits) == 2
            )
            experiment.add(
                f"{name} O{level}",
                None,
                100.0 * success,
                note=(
                    f"{two_qubit} 2q gates, depth {lowered.depth()}, "
                    f"size {lowered.size()}"
                ),
            )
    return experiment


#: The six ablations, in report order.  Each is deterministic and
#: independent, so ``run_all`` can fan them across worker processes.
_ABLATIONS = (
    fim_rate_ablation,
    chunking_ablation,
    decoder_ablation,
    distance_ablation,
    topology_ablation,
    optimization_level_ablation,
)


def _run_ablation(index: int) -> ExperimentResult:
    """Run one ablation by position (module-level, hence picklable)."""
    return _ABLATIONS[index]()


def run_all(workers: int | None = None) -> list[ExperimentResult]:
    """All six ablations; ``workers`` / ``REPRO_EVAL_WORKERS`` fans the
    independent studies across processes with identical results (the
    per-shot timing notes in the decoder study remain wall-clock)."""
    resolved = resolve_workers(workers)
    return parallel_map(
        _run_ablation, [(i,) for i in range(len(_ABLATIONS))], resolved
    )


def main() -> None:
    for experiment in run_all():
        print(experiment.render())
        print()


if __name__ == "__main__":
    main()
