"""Figure 2 — evolution of qubits during QEC: errors, syndromes, decoding.

The paper's figure shows (a) X bit-flips violating surface-code stabilizers,
(b) measurement errors corrupting syndrome readout, and (c) the decoder
turning multiple faulty syndrome rounds into a correction set — "the errors
shown are from a circuit preparing the 1-qubit state |1>".

This driver reproduces the full trace: it prepares the logical |1> state of a
rotated surface code (an X-logical applied to |0>_L, whose Z-syndrome starts
trivial), injects phenomenological data + measurement noise over several
extraction rounds, renders the lattice per round, runs the MWPM decoder on
the detection events, and verifies that the correction returns the logical
qubit to |1> (i.e. no logical flip).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.qec.codes.surface import SurfaceCode
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import sample_memory
from repro.utils.parallel import parallel_map, resolve_workers
from repro.utils.rng import derive_rng


def _stats_shot_batch(
    distance: int,
    rounds: int,
    p_data: float,
    p_meas: float,
    seed: int,
    start: int,
    stop: int,
) -> tuple[int, int]:
    """Decode shots [start, stop); per-shot RNGs make order irrelevant.

    Module-level and fully described by picklable scalars, so the statistics
    loop can fan across worker processes with bit-identical totals.
    """
    code = SurfaceCode(distance)
    decoder = MWPMDecoder(code, "x")
    cleared = 0
    preserved = 0
    for shot in range(start, stop):
        shot_rng = derive_rng(seed, "figure2", "stats", shot)
        h = sample_memory(code, rounds, p_data, p_meas, shot_rng, "x")
        r = decoder.decode(h)
        final_syndrome = code.syndrome(h.true_error ^ r.correction, "x")
        if not final_syndrome.any():
            cleared += 1
        if not code.logical_flipped(h.true_error ^ r.correction, "x"):
            preserved += 1
    return cleared, preserved


def run(
    distance: int = 3,
    rounds: int = 4,
    p_data: float = 0.04,
    p_meas: float = 0.04,
    seed: int = 11,
    shots_for_stats: int = 200,
    workers: int | None = None,
) -> ExperimentResult:
    code = SurfaceCode(distance)
    decoder = MWPMDecoder(code, "x")
    experiment = ExperimentResult(
        "figure2", "Surface-code error evolution and decoding trace"
    )

    # -- the single-shot illustrated trace (the figure itself) -------------
    rng = derive_rng(seed, "figure2", "trace")
    history = sample_memory(code, rounds, p_data, p_meas, rng, error_type="x")
    lines = [
        f"Rotated surface code d={distance}; preparing logical |1> "
        "(X-logical on |0>_L leaves Z-syndromes trivial).",
        f"{rounds} noisy extraction rounds, p_data={p_data}, p_meas={p_meas}.",
        "Legend: . data qubit, X data error, o Z-check, * fired Z-check.",
    ]
    cumulative = np.zeros(code.num_data_qubits, dtype=bool)
    for t in range(rounds):
        for q in history.injected[t]:
            cumulative[q] ^= True
        fired = set(int(c) for c in np.flatnonzero(history.syndromes[t]))
        meas_lies = history.measurement_flips[t]
        lines.append(
            f"\n(a) round {t}: new X errors on {history.injected[t] or 'none'}"
            + (f"   (b) measurement lies on checks {meas_lies}" if meas_lies else "")
        )
        lines.append(code.ascii_lattice(cumulative, fired, "x"))
    events = history.detection_events
    result = decoder.decode(history)
    lines.append(
        f"\n(c) decoder: {len(events)} detection events "
        f"{[(t, c) for t, c in events]}"
    )
    lines.append(
        "matched pairs: "
        + ", ".join(
            f"{a}-{'boundary' if b is None else b}" for a, b in result.matched_pairs
        )
        if result.matched_pairs
        else "no corrections needed"
    )
    corrections = sorted(int(q) for q in np.flatnonzero(result.correction))
    lines.append(f"corrections applied to data qubits: {corrections}")
    residual = history.true_error ^ result.correction
    logical_flip = code.logical_flipped(residual, "x")
    lines.append(
        "residual error is "
        + ("a logical flip (decoder failed)" if logical_flip else "a stabilizer "
           "(logical state |1> preserved)")
    )
    experiment.extras.append("\n".join(lines))

    # -- statistics over many shots (fanned across workers) ----------------
    resolved = resolve_workers(workers)
    step = max(1, -(-shots_for_stats // max(1, resolved * 4)))
    batches = [
        (distance, rounds, p_data, p_meas, seed, start,
         min(start + step, shots_for_stats))
        for start in range(0, shots_for_stats, step)
    ]
    totals = parallel_map(_stats_shot_batch, batches, resolved)
    cleared = sum(batch_cleared for batch_cleared, _ in totals)
    preserved = sum(batch_preserved for _, batch_preserved in totals)
    experiment.add(
        "decoder clears the final syndrome",
        100.0,
        100.0 * cleared / shots_for_stats,
        note=f"{shots_for_stats} shots",
    )
    experiment.add(
        "logical |1> preserved after correction",
        None,
        100.0 * preserved / shots_for_stats,
        note="paper shows a qualitative success trace",
    )
    return experiment


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
