"""Table I — Qiskit HumanEval performance, plus the Section V-C split.

Paper values: Starcoder2-7B 17.9%, +QK 24.5%, +QKRAG 33.8%, +QKCoT 41.4%,
IBM Granite-20B-CODE-QK 46.5%.  Section V-C adds the syntactic/semantic
split: RAG 45.7% syntactic / 33.8% semantic; CoT 46.4% / 41.4%.
"""

from __future__ import annotations

from repro.evalsuite.qhe import build_qhe
from repro.evalsuite.runner import EvalResult, PipelineSettings, evaluate_many
from repro.experiments.common import ExperimentResult
from repro.llm.faults import ModelConfig

PAPER_VALUES = {
    "Starcoder2-7B": 17.9,
    "Starcoder2-7B-QK": 24.5,
    "Starcoder2-7B-QKRAG": 33.8,
    "Starcoder2-7B-QKCoT": 41.4,
    "Granite-20B-CODE-QK": 46.5,
}

PAPER_SYNTACTIC = {
    "Starcoder2-7B-QKRAG": 45.7,
    "Starcoder2-7B-QKCoT": 46.4,
}


def arms(samples_per_task: int = 6, base_seed: int = 77) -> list[PipelineSettings]:
    return [
        PipelineSettings(
            ModelConfig("7b", False, profile="qhe"),
            samples_per_task=samples_per_task, base_seed=base_seed,
            label="Starcoder2-7B",
        ),
        PipelineSettings(
            ModelConfig("7b", True, profile="qhe"),
            samples_per_task=samples_per_task, base_seed=base_seed,
            label="Starcoder2-7B-QK",
        ),
        PipelineSettings(
            ModelConfig("7b", True, rag_docs=True, rag_guides=True, profile="qhe"),
            samples_per_task=samples_per_task, base_seed=base_seed,
            label="Starcoder2-7B-QKRAG",
        ),
        PipelineSettings(
            ModelConfig("7b", True, prompt_style="cot", profile="qhe"),
            samples_per_task=samples_per_task, base_seed=base_seed,
            label="Starcoder2-7B-QKCoT",
        ),
        PipelineSettings(
            ModelConfig("20b", True, profile="qhe"),
            samples_per_task=samples_per_task, base_seed=base_seed,
            label="Granite-20B-CODE-QK",
        ),
    ]


def run(
    samples_per_task: int = 6, base_seed: int = 77, workers: int | None = None
) -> tuple[ExperimentResult, list[EvalResult]]:
    tasks = build_qhe()
    # All five arms fan out over one worker pool (bit-identical to running
    # them serially); per-arm execution_stats stay exact via stats scopes.
    results = evaluate_many(
        arms(samples_per_task, base_seed), tasks, workers=workers
    )
    experiment = ExperimentResult("table1", "Qiskit HumanEval performance")
    for result in results:
        experiment.add(
            result.label,
            PAPER_VALUES.get(result.label),
            100.0 * result.accuracy(),
            note=f"pass@1 {result.pass_at_k(1):.1%}",
        )
    # The Section V-C syntactic/semantic split rows.
    for label, paper_syn in PAPER_SYNTACTIC.items():
        result = next(r for r in results if r.label == label)
        experiment.add(
            f"{label} (syntactic)",
            paper_syn,
            100.0 * result.syntactic_accuracy(),
            note="runs without error",
        )
    return experiment, results


def main() -> None:
    experiment, _results = run()
    print(experiment.render())


if __name__ == "__main__":
    main()
