"""Exact lookup-table decoder for small codes.

Enumerates all error patterns up to weight ``(d-1)//2`` (or a caller-supplied
cap), maps each syndrome to its minimum-weight correction, and decodes in O(1)
per shot.  Exact for single-round (perfect-measurement) decoding of small
codes — the regime where Figure 2's single-shot trace and the Steane-code
examples live.  Raises when a syndrome is outside the table (beyond the
correction radius) unless ``strict=False``, in which case it returns the
all-zero correction as a best-effort fallback.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import DecodingError
from repro.qec.codes.base import CSSCode


class LookupDecoder:
    """Syndrome -> minimum-weight error table for one error type."""

    def __init__(
        self,
        code: CSSCode,
        error_type: str = "x",
        max_weight: int | None = None,
        strict: bool = True,
    ) -> None:
        self.code = code
        self.error_type = error_type
        self.strict = strict
        self.max_weight = (
            max_weight if max_weight is not None else (code.distance - 1) // 2
        )
        checks = code.hz if error_type == "x" else code.hx
        if checks.shape[0] == 0:
            raise DecodingError(
                f"{code.name} has no checks for error type '{error_type}'"
            )
        self._table: dict[tuple[int, ...], np.ndarray] = {}
        n = code.num_data_qubits
        zero = np.zeros(n, dtype=bool)
        self._table[tuple(np.zeros(checks.shape[0], dtype=int))] = zero
        for weight in range(1, self.max_weight + 1):
            for support in itertools.combinations(range(n), weight):
                error = np.zeros(n, dtype=bool)
                error[list(support)] = True
                syndrome = tuple(
                    ((checks.astype(int) @ error.astype(int)) % 2).tolist()
                )
                # Lower weights were inserted first; keep the first (minimal).
                self._table.setdefault(syndrome, error)

    @property
    def table_size(self) -> int:
        return len(self._table)

    def decode(self, syndrome: np.ndarray) -> np.ndarray:
        """Return the minimum-weight correction for a measured syndrome."""
        key = tuple(int(b) for b in np.asarray(syndrome).astype(int))
        correction = self._table.get(key)
        if correction is None:
            if self.strict:
                raise DecodingError(
                    f"{self.code.name}: syndrome {key} exceeds the weight-"
                    f"{self.max_weight} lookup radius"
                )
            return np.zeros(self.code.num_data_qubits, dtype=bool)
        return correction.copy()
