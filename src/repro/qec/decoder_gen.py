"""Decoder generation for a target device topology — the QEC agent's product.

Paper Section III-A (Agent #3): "this agent uses the topology of the quantum
device to generate a decoder that allows a surface error correction code to be
used when running the algorithm", and Section V-E: the approach "requires the
devices to follow a fully-connected lattice design" and must be re-generated
per topology.  Both behaviours are modelled faithfully:

* grid-like topologies large enough for the requested distance produce a
  :class:`GeneratedDecoder` (surface code + layout + MWPM/union-find decoder);
* anything else raises :class:`~repro.errors.TopologyError` with a diagnosis,
  unless ``allow_simulated_lattice=True``, which mirrors the paper's own
  Figure-4 fallback ("we simulated our results ... corresponding to the new
  error rate after QEC").
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.qec.codes.surface import SurfaceCode
from repro.qec.matching import MWPMDecoder
from repro.qec.unionfind import UnionFindDecoder
from repro.quantum.topology import CouplingMap

#: decoder name -> factory(code, error_type)
DECODER_FACTORIES = {
    "mwpm": MWPMDecoder,
    "unionfind": UnionFindDecoder,
}


@dataclass
class GeneratedDecoder:
    """A surface-code decoder specialised to one device.

    Attributes:
        code: the surface code instance.
        decoder_x / decoder_z: decoders for X and Z errors.
        device_name: the topology the decoder was generated for — using it on
            a different device requires regeneration (the paper's stated
            scalability limitation).
        data_layout: data-qubit index -> physical qubit.
        ancilla_layout: (check type, check index) -> physical qubit, when the
            device has room for ancillas; empty in simulated-lattice mode.
        simulated_lattice: True when the device could not host the code and
            the decoder runs against a simulated lattice instead.
    """

    code: SurfaceCode
    decoder_x: object
    decoder_z: object
    device_name: str
    data_layout: dict[int, int] = field(default_factory=dict)
    ancilla_layout: dict[tuple[str, int], int] = field(default_factory=dict)
    simulated_lattice: bool = False

    def compatible_with(self, device: CouplingMap) -> bool:
        """Topology-specificity check: decoders do not transfer across devices."""
        return device.name == self.device_name


def _parse_grid_shape(cmap: CouplingMap) -> tuple[int, int] | None:
    """Recognise grids built by :meth:`CouplingMap.grid` (named grid-RxC)."""
    match = re.fullmatch(r"grid-(\d+)x(\d+)", cmap.name)
    if match:
        return int(match.group(1)), int(match.group(2))
    return None


def _looks_like_grid(cmap: CouplingMap) -> tuple[int, int] | None:
    """Structural grid detection for unnamed maps (degree/edge census)."""
    named = _parse_grid_shape(cmap)
    if named:
        return named
    n = cmap.num_qubits
    num_edges = len(cmap.edges)
    max_deg = cmap.max_degree()
    if max_deg > 4:
        return None
    # A rows x cols grid has rows*cols nodes and rows*(cols-1)+(rows-1)*cols
    # edges; search small factorizations.
    for rows in range(1, n + 1):
        if n % rows:
            continue
        cols = n // rows
        if rows * (cols - 1) + (rows - 1) * cols == num_edges:
            # Verify by exact embedding only for small instances.
            if n <= 64 and not cmap.subgraph_has_grid(rows, cols):
                continue
            return rows, cols
    return None


def generate_decoder(
    device: CouplingMap,
    distance: int = 3,
    decoder: str = "mwpm",
    include_ancillas: bool = True,
    allow_simulated_lattice: bool = False,
) -> GeneratedDecoder:
    """Generate a distance-``distance`` surface-code decoder for a device.

    Args:
        device: target coupling map.
        distance: surface-code distance (odd, >= 3).
        decoder: 'mwpm' or 'unionfind'.
        include_ancillas: also place syndrome ancillas (needs a
            ``(2d-1) x (2d-1)`` grid rather than ``d x d``).
        allow_simulated_lattice: on non-lattice devices, fall back to a
            simulated lattice instead of raising (the paper's Figure-4 mode).

    Raises:
        TopologyError: when the device cannot host the code and the fallback
            is not enabled.
    """
    if decoder not in DECODER_FACTORIES:
        raise TopologyError(
            f"unknown decoder '{decoder}'; choose from {sorted(DECODER_FACTORIES)}"
        )
    code = SurfaceCode(distance)
    factory = DECODER_FACTORIES[decoder]
    shape = _looks_like_grid(device)
    needed = 2 * distance - 1 if include_ancillas else distance

    if shape is None or min(shape) < needed:
        if not allow_simulated_lattice:
            reason = (
                "device topology is not a rectangular lattice"
                if shape is None
                else f"device grid {shape[0]}x{shape[1]} is smaller than the "
                f"required {needed}x{needed}"
            )
            raise TopologyError(
                f"cannot generate a distance-{distance} surface-code decoder "
                f"for device '{device.name}': {reason}. Surface codes are "
                "topology-specific (paper Section V-E); re-generate for a "
                "lattice device or pass allow_simulated_lattice=True to "
                "estimate corrections off-device."
            )
        return GeneratedDecoder(
            code=code,
            decoder_x=factory(code, "x"),
            decoder_z=factory(code, "z"),
            device_name=device.name,
            simulated_lattice=True,
        )

    rows, cols = shape
    data_layout: dict[int, int] = {}
    ancilla_layout: dict[tuple[str, int], int] = {}
    if include_ancillas:
        # Data qubits occupy even-even lattice positions of the 2d-1 grid;
        # checks the positions matching their plaquette-corner coordinates.
        for r in range(distance):
            for c in range(distance):
                data_layout[code.data_index(r, c)] = (2 * r) * cols + (2 * c)
        for kind, coords in (("x", code.x_check_coords), ("z", code.z_check_coords)):
            for idx, (pr, pc) in enumerate(coords):
                row = int(2 * pr - 1)
                col = int(2 * pc - 1)
                row = min(max(row, 0), 2 * distance - 2)
                col = min(max(col, 0), 2 * distance - 2)
                ancilla_layout[(kind, idx)] = row * cols + col
    else:
        for r in range(distance):
            for c in range(distance):
                data_layout[code.data_index(r, c)] = r * cols + c

    return GeneratedDecoder(
        code=code,
        decoder_x=factory(code, "x"),
        decoder_z=factory(code, "z"),
        device_name=device.name,
        data_layout=data_layout,
        ancilla_layout=ancilla_layout,
    )
