"""Noisy syndrome extraction.

Two layers, mirroring Figure 2 of the paper:

* :func:`sample_memory` — the *phenomenological* noise model: each round,
  every data qubit suffers an error with probability ``p_data`` ("physical
  errors over time", Fig. 2a) and every check is read out wrongly with
  probability ``p_meas`` ("measurement error", Fig. 2b).  Returns the
  detection events the decoder consumes (Fig. 2c) plus the true accumulated
  error, so experiments can score the decoder's correction.

* :func:`extraction_circuit` / :func:`run_extraction_on_tableau` — explicit
  ancilla-based syndrome measurement circuits executed on the stabilizer
  tableau, used to validate that the phenomenological model agrees with a
  real circuit for single faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import QECError
from repro.qec.codes.base import CSSCode
from repro.quantum.circuit import QuantumCircuit
from repro.stabilizer.tableau import StabilizerTableau

#: A detection event: (round index, check index).
DetectionEvent = tuple[int, int]


def memory_shot_rng(
    seed: int,
    code: CSSCode,
    rounds: int,
    p_data: float,
    p_meas: float,
    shot: int,
) -> np.random.Generator:
    """The canonical per-shot generator of a memory experiment.

    Defined once so every sampling path — the legacy inline loop in
    :mod:`repro.qec.experiments` and the ExecutionService-routed
    ``qec_memory`` backend — derives bit-identical shots from the same
    ``(seed, experiment parameters, shot index)`` scope.
    """
    from repro.utils.rng import derive_rng

    return derive_rng(seed, "memory", code.name, rounds, p_data, p_meas, shot)


@dataclass
class SyndromeHistory:
    """Everything a decoder (and a Figure-2 style trace) needs for one shot.

    Attributes:
        code: the code sampled.
        error_type: 'x' or 'z' — which Pauli error accumulated.
        rounds: number of noisy extraction rounds (a final perfect round is
            appended, standard for memory experiments).
        syndromes: (rounds+1, num_checks) bool — *measured* syndromes per
            round; the last row is the perfect readout.
        detection_events: list of (round, check) where the measured syndrome
            changed relative to the previous round.
        true_error: (n,) bool — the accumulated data error at the end.
        injected: per-round lists of data qubits that flipped (for traces).
        measurement_flips: per-round lists of checks whose readout lied.
    """

    code: CSSCode
    error_type: str
    rounds: int
    syndromes: np.ndarray
    detection_events: list[DetectionEvent]
    true_error: np.ndarray
    injected: list[list[int]] = field(default_factory=list)
    measurement_flips: list[list[int]] = field(default_factory=list)


def sample_memory(
    code: CSSCode,
    rounds: int,
    p_data: float,
    p_meas: float,
    rng: np.random.Generator,
    error_type: str = "x",
) -> SyndromeHistory:
    """Sample one phenomenological memory-experiment shot.

    Each of ``rounds`` noisy rounds: i.i.d. data errors then a noisy readout
    of every check.  A final perfect readout round is appended so all
    detection events are matchable (the usual memory-experiment convention).
    """
    if rounds < 1:
        raise QECError(f"memory experiment needs >= 1 round, got {rounds}")
    if not (0 <= p_data <= 1 and 0 <= p_meas <= 1):
        raise QECError("error probabilities must be in [0, 1]")
    checks = code.hz if error_type == "x" else code.hx
    num_checks, n = checks.shape
    error = np.zeros(n, dtype=bool)
    measured = np.zeros((rounds + 1, num_checks), dtype=bool)
    injected: list[list[int]] = []
    meas_flips: list[list[int]] = []
    for t in range(rounds):
        flips = rng.random(n) < p_data
        error ^= flips
        injected.append(np.flatnonzero(flips).tolist())
        true_syndrome = (checks.astype(int) @ error.astype(int)) % 2 == 1
        lies = rng.random(num_checks) < p_meas
        meas_flips.append(np.flatnonzero(lies).tolist())
        measured[t] = true_syndrome ^ lies
    # Perfect final round.
    measured[rounds] = (checks.astype(int) @ error.astype(int)) % 2 == 1
    events: list[DetectionEvent] = []
    previous = np.zeros(num_checks, dtype=bool)
    for t in range(rounds + 1):
        changed = measured[t] ^ previous
        events.extend((t, int(c)) for c in np.flatnonzero(changed))
        previous = measured[t]
    return SyndromeHistory(
        code=code,
        error_type=error_type,
        rounds=rounds,
        syndromes=measured,
        detection_events=events,
        true_error=error,
        injected=injected,
        measurement_flips=meas_flips,
    )


# ---------------------------------------------------------------------------
# Circuit-level extraction (tableau-backed), used for validation and Figure 2
# ---------------------------------------------------------------------------


def extraction_circuit(code: CSSCode, error_type: str = "x") -> QuantumCircuit:
    """One round of ancilla-based syndrome extraction as a Clifford circuit.

    Data qubits are 0..n-1; each check gets one ancilla appended after them.
    Z-type checks (detecting X errors) use CX(data -> ancilla); X-type checks
    conjugate with Hadamards.  Ancillas are measured into classical bits in
    check order.
    """
    checks = code.hz if error_type == "x" else code.hx
    num_checks, n = checks.shape
    qc = QuantumCircuit(n + num_checks, num_checks, name=f"extract-{error_type}")
    for check_idx in range(num_checks):
        ancilla = n + check_idx
        support = np.flatnonzero(checks[check_idx])
        if error_type == "x":
            for q in support:
                qc.cx(int(q), ancilla)
        else:
            qc.h(ancilla)
            for q in support:
                qc.cx(ancilla, int(q))
            qc.h(ancilla)
        qc.measure(ancilla, check_idx)
        qc.reset(ancilla)
    return qc


def run_extraction_on_tableau(
    code: CSSCode,
    data_errors: list[int],
    error_type: str = "x",
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Inject errors on a fresh tableau, run one extraction round, return syndrome.

    Validates the phenomenological model: the measured syndrome must equal
    ``code.syndrome(errors, error_type)`` exactly when measurement is
    noiseless.
    """
    checks = code.hz if error_type == "x" else code.hx
    num_checks, n = checks.shape
    tableau = StabilizerTableau(n + num_checks, rng=rng)
    if error_type == "z":
        # Prepare |+...+> so Z errors are detectable deviations.
        for q in range(n):
            tableau.h(q)
    pauli = "X" if error_type == "x" else "Z"
    for q in data_errors:
        if not 0 <= q < n:
            raise QECError(f"data qubit {q} out of range")
        getattr(tableau, pauli.lower())(q)
    bits = tableau.apply_circuit(extraction_circuit(code, error_type))
    return np.array(bits, dtype=bool)
