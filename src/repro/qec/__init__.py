"""Quantum error correction: codes, syndrome extraction, decoders, experiments."""

from repro.qec.codes.base import BOUNDARY, CSSCode
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.steane import SteaneCode
from repro.qec.codes.surface import SurfaceCode
from repro.qec.decoder_gen import GeneratedDecoder, generate_decoder
from repro.qec.experiments import (
    MemoryExperimentResult,
    average_qubit_lifetime_gain,
    logical_error_rate,
    qec_suppression_factor,
    threshold_sweep,
)
from repro.qec.lookup import LookupDecoder
from repro.qec.matching import MatchingResult, MWPMDecoder
from repro.qec.syndrome import (
    SyndromeHistory,
    extraction_circuit,
    run_extraction_on_tableau,
    sample_memory,
)
from repro.qec.unionfind import UnionFindDecoder, UnionFindResult

__all__ = [
    "BOUNDARY",
    "CSSCode",
    "GeneratedDecoder",
    "LookupDecoder",
    "MWPMDecoder",
    "MatchingResult",
    "MemoryExperimentResult",
    "RepetitionCode",
    "SteaneCode",
    "SurfaceCode",
    "SyndromeHistory",
    "UnionFindDecoder",
    "UnionFindResult",
    "average_qubit_lifetime_gain",
    "extraction_circuit",
    "generate_decoder",
    "logical_error_rate",
    "qec_suppression_factor",
    "run_extraction_on_tableau",
    "sample_memory",
    "threshold_sweep",
]
