"""Minimum-weight perfect matching (MWPM) decoder.

The workhorse surface-code decoder (paper Fig. 2c: "we pass multiple faulty
syndromes into the decoder to get the required set of corrections").
Detection events from a multi-round syndrome history are matched pairwise —
or to the spatial boundary — with cost equal to their space-time separation;
the corrections are the data qubits along the spatial part of each matched
path.

Matching runs on a complete graph over events plus one *boundary twin* per
event (twins interconnect at zero cost), reduced to networkx's
``max_weight_matching`` with negated costs; this is the standard exact
reduction of boundary matching to perfect matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import DecodingError
from repro.qec.codes.base import BOUNDARY, CSSCode
from repro.qec.syndrome import DetectionEvent, SyndromeHistory


@dataclass
class MatchingResult:
    """Decoder output.

    Attributes:
        correction: bool vector over data qubits (which to flip back).
        matched_pairs: list of (event, event-or-None) — None means matched
            to the boundary.
        weight: total matching cost (space + time edges).
    """

    correction: np.ndarray
    matched_pairs: list[tuple[DetectionEvent, DetectionEvent | None]]
    weight: float


class MWPMDecoder:
    """MWPM over the space-time decoding graph of one error type."""

    def __init__(
        self, code: CSSCode, error_type: str = "x", time_weight: float = 1.0
    ) -> None:
        self.code = code
        self.error_type = error_type
        self.time_weight = float(time_weight)
        self._graph = code.matching_graph(error_type)
        self._spatial = self._graph.copy()
        self._spatial.remove_node(BOUNDARY)
        # All-pairs spatial distances among checks, and each check's distance
        # to the boundary, precomputed once per code.
        self._dist = dict(nx.all_pairs_shortest_path_length(self._spatial))
        boundary_lengths = nx.single_source_shortest_path_length(
            self._graph, BOUNDARY
        )
        self._boundary_dist = {
            node: length
            for node, length in boundary_lengths.items()
            if node != BOUNDARY
        }

    # -- distances ---------------------------------------------------------------

    def _event_distance(self, a: DetectionEvent, b: DetectionEvent) -> float:
        (t1, c1), (t2, c2) = a, b
        spatial = self._dist.get(c1, {}).get(c2)
        if spatial is None:
            return float("inf")
        return spatial + self.time_weight * abs(t1 - t2)

    def _boundary_distance(self, event: DetectionEvent) -> float:
        dist = self._boundary_dist.get(event[1])
        return float("inf") if dist is None else float(dist)

    # -- decoding -------------------------------------------------------------------

    def decode(self, history_or_events) -> MatchingResult:
        """Decode a :class:`SyndromeHistory` or a raw event list."""
        events = (
            history_or_events.detection_events
            if isinstance(history_or_events, SyndromeHistory)
            else list(history_or_events)
        )
        n = self.code.num_data_qubits
        if not events:
            return MatchingResult(np.zeros(n, dtype=bool), [], 0.0)

        pairs = self._match(events)
        correction = np.zeros(n, dtype=bool)
        total = 0.0
        for event, partner in pairs:
            if partner is None:
                path_faults, cost = self._path_to_boundary(event[1])
            else:
                path_faults, cost = self._path_between(event[1], partner[1])
                cost += self.time_weight * abs(event[0] - partner[0])
            for fault in path_faults:
                correction[fault] ^= True
            total += cost
        return MatchingResult(correction, pairs, total)

    def _match(
        self, events: list[DetectionEvent]
    ) -> list[tuple[DetectionEvent, DetectionEvent | None]]:
        k = len(events)
        graph = nx.Graph()
        # Event nodes 0..k-1; boundary twins k..2k-1.
        big = 10_000.0
        for i in range(k):
            for j in range(i + 1, k):
                dist = self._event_distance(events[i], events[j])
                if np.isfinite(dist):
                    graph.add_edge(i, j, weight=big - dist)
                dist_b = 0.0  # twin-twin edges are free
                graph.add_edge(k + i, k + j, weight=big - dist_b)
            bdist = self._boundary_distance(events[i])
            if np.isfinite(bdist):
                graph.add_edge(i, k + i, weight=big - bdist)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        matched: dict[int, int] = {}
        for a, b in matching:
            matched[a] = b
            matched[b] = a
        if any(i not in matched for i in range(k)):
            raise DecodingError(
                f"{self.code.name}: matching left a detection event unpaired"
            )
        pairs: list[tuple[DetectionEvent, DetectionEvent | None]] = []
        seen: set[int] = set()
        for i in range(k):
            if i in seen:
                continue
            j = matched[i]
            seen.add(i)
            if j < k:
                seen.add(j)
                pairs.append((events[i], events[j]))
            else:
                pairs.append((events[i], None))
        return pairs

    # -- correction paths ---------------------------------------------------------

    def _path_between(self, c1: int, c2: int) -> tuple[list[int], float]:
        if c1 == c2:
            return [], 0.0
        path = nx.shortest_path(self._spatial, c1, c2)
        return self._faults_on(path), float(len(path) - 1)

    def _path_to_boundary(self, check: int) -> tuple[list[int], float]:
        path = nx.shortest_path(self._graph, check, BOUNDARY)
        return self._faults_on(path), float(len(path) - 1)

    def _faults_on(self, path: list) -> list[int]:
        faults = []
        for a, b in zip(path, path[1:]):
            faults.append(self._graph.edges[a, b]["fault"])
        return faults
