"""QEC experiments: memory runs, logical error rates, thresholds, lifetime.

These drive the paper's Section V-B/V-D claims:

* :func:`logical_error_rate` — the decoder-scored memory experiment.
* :func:`threshold_sweep` — logical vs physical error rate across distances
  (the crossing point is the code threshold).
* :func:`qec_suppression_factor` — the effective noise-reduction factor the
  Figure-4(c) experiment applies to the device noise model ("corresponding to
  the new error rate after QEC").
* :func:`average_qubit_lifetime_gain` — the paper's "extend the average qubit
  lifetime" claim, expressed in rounds.

Memory-experiment shot loops are the heaviest workload in the reproduction
(decoder benchmarking sweeps thousands of MWPM decodes), so they are routed
through the unified :class:`~repro.quantum.execution.service.ExecutionService`
rather than looping inline: each experiment becomes one
:class:`MemoryExperimentCircuit` executed on the registered ``qec_memory``
backend, which buys

* **caching** — a repeated ``logical_error_rate`` / ``threshold_sweep``
  invocation (same code, decoder, rates, seed) is a content-addressed cache
  hit, persisted across processes when the service has a disk tier;
* **batching** — ``threshold_sweep`` submits every rate of a distance as
  asynchronous jobs that fan out across the service's worker pool (real
  parallelism under ``executor="process"``);
* **observability** — decoder benchmarking now shows up in
  ``service.stats()`` next to circuit simulation counters.

The per-shot randomness is derived by
:func:`repro.qec.syndrome.memory_shot_rng` exactly as the pre-service inline
loop derived it, so routed results are bit-identical to the legacy path.
Decoders the service cannot reconstruct in a worker process (anything other
than the stock MWPM/union-find/lookup decoders bound to the experiment's code
and error type) transparently fall back to the inline loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QECError
from repro.qec.codes.base import CSSCode
from repro.qec.lookup import LookupDecoder
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import memory_shot_rng, sample_memory
from repro.qec.unionfind import UnionFindDecoder
from repro.quantum.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    ExecutionService,
    default_service,
    list_backends,
    register_backend,
)
from repro.utils.rng import derive_seed, stable_hash
from repro.utils.stats import binomial_confidence_interval

#: Registry name of the memory-experiment execution target.
MEMORY_BACKEND = "qec_memory"


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Aggregated memory-experiment statistics."""

    code_name: str
    decoder_name: str
    rounds: int
    p_data: float
    p_meas: float
    shots: int
    logical_failures: int

    @property
    def logical_error_rate(self) -> float:
        return self.logical_failures / self.shots

    @property
    def confidence_interval(self) -> tuple[float, float]:
        return binomial_confidence_interval(self.logical_failures, self.shots)

    @property
    def logical_error_per_round(self) -> float:
        """Per-round failure probability inferred from the run-level rate."""
        p_run = min(self.logical_error_rate, 0.5)
        # p_run = (1 - (1 - 2 p_round)^rounds) / 2, inverted:
        inner = max(1.0 - 2.0 * p_run, 1e-12)
        return 0.5 * (1.0 - inner ** (1.0 / self.rounds))


# ---------------------------------------------------------------------------
# ExecutionService routing: the memory experiment as an executable work unit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryExperimentSpec:
    """Everything that determines a memory experiment's failure statistics.

    The spec (not any live decoder object) is what travels through the
    execution subsystem, so it must be picklable for the process-pool
    executor and content-hashable for the result cache.
    """

    code: CSSCode
    rounds: int
    p_data: float
    p_meas: float
    error_type: str
    decoder_kind: str
    decoder_args: tuple[tuple[str, float | int | bool], ...] = ()

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise QECError(
                f"memory experiment needs >= 1 round, got {self.rounds}"
            )
        if not (0 <= self.p_data <= 1 and 0 <= self.p_meas <= 1):
            raise QECError("error probabilities must be in [0, 1]")
        if self.error_type not in ("x", "z"):
            raise QECError(
                f"error_type must be 'x' or 'z', got '{self.error_type}'"
            )
        if self.decoder_kind not in _DECODER_BUILDERS:
            raise QECError(
                f"unknown decoder kind '{self.decoder_kind}'; routable kinds: "
                f"{sorted(_DECODER_BUILDERS)}"
            )

    def fingerprint(self) -> int:
        """64-bit content hash covering the code structure and every knob."""
        return stable_hash(
            "qec-memory",
            self.code.name,
            self.code.hx.tobytes(),
            self.code.hz.tobytes(),
            self.code.logical_x.tobytes(),
            self.code.logical_z.tobytes(),
            self.rounds,
            self.p_data,
            self.p_meas,
            self.error_type,
            self.decoder_kind,
            self.decoder_args,
        )

    def build_decoder(self):
        """Reconstruct the decoder this spec describes."""
        builder = _DECODER_BUILDERS[self.decoder_kind]
        return builder(self.code, self.error_type, dict(self.decoder_args))


_DECODER_BUILDERS = {
    "mwpm": lambda code, error_type, kw: MWPMDecoder(code, error_type, **kw),
    "unionfind": lambda code, error_type, kw: UnionFindDecoder(code, error_type),
    "lookup": lambda code, error_type, kw: LookupDecoder(code, error_type, **kw),
}


def _classify_decoder(
    decoder, code: CSSCode, error_type: str
) -> tuple[str, tuple[tuple[str, float | int | bool], ...]] | None:
    """Map a live decoder to a routable ``(kind, args)`` spec, or ``None``.

    ``None`` means the ExecutionService cannot faithfully rebuild this
    decoder in a worker (custom class, different code object, or an error
    type other than the one it was constructed for) and the caller must use
    the inline loop.
    """
    if getattr(decoder, "code", None) is not code:
        return None
    if getattr(decoder, "error_type", None) != error_type:
        return None
    if type(decoder) is MWPMDecoder:
        return "mwpm", (("time_weight", decoder.time_weight),)
    if type(decoder) is UnionFindDecoder:
        return "unionfind", ()
    if type(decoder) is LookupDecoder:
        return "lookup", (
            ("max_weight", decoder.max_weight),
            ("strict", decoder.strict),
        )
    return None


class MemoryExperimentCircuit(QuantumCircuit):
    """A memory experiment disguised as an executable circuit.

    The instruction stream encodes the spec fingerprint (two exactly-
    representable 32-bit rotation angles), which is all the content-addressed
    result cache hashes — two experiments collide exactly when their specs
    match.  The live :class:`MemoryExperimentSpec` rides along for the
    ``qec_memory`` backend (and pickles with the circuit for process-pool
    workers).
    """

    def __init__(self, spec: MemoryExperimentSpec) -> None:
        super().__init__(1, 1, name=f"qec-memory-{spec.code.name}")
        self.spec = spec
        fp = spec.fingerprint()
        self.rz(float(fp >> 32), 0)
        self.rz(float(fp & 0xFFFFFFFF), 0)
        self.measure(0, 0)


class MemoryExperimentBackend(Backend):
    """Execution target that scores memory-experiment shots.

    ``counts`` uses one classical bit: ``"1"`` is a logical failure (the
    decoder's correction left the stored observable flipped), ``"0"`` a
    success; ``memory=True`` returns the per-shot outcome bits.  The per-shot
    RNG derivation matches the legacy inline loop exactly, so routed and
    inline runs agree bit-for-bit.
    """

    def __init__(self) -> None:
        super().__init__(name=MEMORY_BACKEND, num_qubits=1)

    def execute_circuit(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: int | None = None,
        memory: bool = False,
    ) -> tuple[dict[str, int], list[str] | None]:
        spec = getattr(circuit, "spec", None)
        if not isinstance(spec, MemoryExperimentSpec):
            raise QECError(
                f"backend '{self.name}' executes MemoryExperimentCircuit "
                f"submissions only, got circuit '{circuit.name}'"
            )
        decoder = spec.build_decoder()
        entropy = np.random.default_rng() if seed is None else None
        bits: list[str] = []
        failures = 0
        for shot in range(shots):
            if entropy is not None:
                rng = entropy
            else:
                rng = memory_shot_rng(
                    seed, spec.code, spec.rounds, spec.p_data, spec.p_meas, shot
                )
            history = sample_memory(
                spec.code,
                spec.rounds,
                spec.p_data,
                spec.p_meas,
                rng,
                spec.error_type,
            )
            result = decoder.decode(history)
            residual = history.true_error ^ result.correction
            failed = spec.code.logical_flipped(residual, spec.error_type)
            failures += int(failed)
            if memory:
                bits.append("1" if failed else "0")
        counts: dict[str, int] = {}
        if shots - failures:
            counts["0"] = shots - failures
        if failures:
            counts["1"] = failures
        return counts, (bits if memory else None)


if MEMORY_BACKEND not in list_backends():  # idempotent under re-import
    register_backend(
        MEMORY_BACKEND, MemoryExperimentBackend, aliases=("qec-memory",)
    )


def _inline_failures(
    code: CSSCode,
    decoder,
    rounds: int,
    p_data: float,
    p_meas: float,
    shots: int,
    seed: int,
    error_type: str,
) -> int:
    """Legacy shot loop for decoders the service cannot reconstruct."""
    failures = 0
    for shot in range(shots):
        rng = memory_shot_rng(seed, code, rounds, p_data, p_meas, shot)
        history = sample_memory(code, rounds, p_data, p_meas, rng, error_type)
        result = decoder.decode(history)
        residual = history.true_error ^ result.correction
        if code.logical_flipped(residual, error_type):
            failures += 1
    return failures


def logical_error_rate(
    code: CSSCode,
    decoder,
    rounds: int,
    p_data: float,
    p_meas: float | None = None,
    shots: int = 200,
    seed: int = 0,
    error_type: str = "x",
    service: ExecutionService | None = None,
) -> MemoryExperimentResult:
    """Score a decoder on the phenomenological memory experiment.

    A shot fails when (true error XOR decoder correction) flips the stored
    logical observable.  ``p_meas`` defaults to ``p_data`` (the standard
    phenomenological convention).

    Stock decoders (MWPM/union-find/lookup bound to ``code`` and
    ``error_type``) execute through the shared :class:`ExecutionService` —
    batched, cached, and visible in ``service.stats()``; anything else falls
    back to the equivalent inline loop.  Both paths derive per-shot RNGs
    identically, so the choice never changes the result.
    """
    if shots < 1:
        raise QECError("memory experiment needs >= 1 shot")
    p_meas = p_data if p_meas is None else p_meas
    routed = _classify_decoder(decoder, code, error_type)
    if routed is None:
        failures = _inline_failures(
            code, decoder, rounds, p_data, p_meas, shots, seed, error_type
        )
    else:
        kind, args = routed
        spec = MemoryExperimentSpec(
            code=code,
            rounds=rounds,
            p_data=p_data,
            p_meas=p_meas,
            error_type=error_type,
            decoder_kind=kind,
            decoder_args=args,
        )
        svc = service if service is not None else default_service()
        counts = (
            svc.run(
                MemoryExperimentCircuit(spec),
                backend=MEMORY_BACKEND,
                shots=shots,
                seed=seed,
            )
            .result()
            .get_counts()
        )
        failures = counts.get("1", 0)
    return MemoryExperimentResult(
        code_name=code.name,
        decoder_name=type(decoder).__name__,
        rounds=rounds,
        p_data=p_data,
        p_meas=p_meas,
        shots=shots,
        logical_failures=failures,
    )


def threshold_sweep(
    code_factory,
    distances: list[int],
    physical_rates: list[float],
    rounds_per_distance: bool = True,
    shots: int = 200,
    seed: int = 0,
    decoder_factory=None,
    p_meas: float | None = None,
    error_type: str = "x",
    service: ExecutionService | None = None,
) -> dict[int, list[tuple[float, float]]]:
    """Logical error rate vs physical rate, one series per distance.

    Below threshold the larger code wins; above it, loses.  Returns
    ``{distance: [(p_physical, p_logical), ...]}``.

    ``p_meas`` and ``error_type`` thread through to every
    :func:`logical_error_rate` point (``p_meas=None`` keeps the
    phenomenological ``p_meas = p_data`` convention per point), and each
    distance samples under its own derived seed scope, so adding or
    reordering distances never perturbs another distance's shots.  Routable
    decoders submit all rates of a distance as asynchronous ExecutionService
    jobs — parallel across the worker pool, and cache-coherent with direct
    ``logical_error_rate`` calls at the same parameters.
    """
    if decoder_factory is None:
        decoder_factory = lambda code: MWPMDecoder(code, error_type)  # noqa: E731
    out: dict[int, list[tuple[float, float]]] = {}
    for distance in distances:
        code = code_factory(distance)
        decoder = decoder_factory(code)
        rounds = distance if rounds_per_distance else 1
        scoped_seed = derive_seed(seed, "threshold", distance)
        routed = _classify_decoder(decoder, code, error_type)
        if routed is not None:
            kind, args = routed
            svc = service if service is not None else default_service()
            jobs = []
            for p in physical_rates:
                spec = MemoryExperimentSpec(
                    code=code,
                    rounds=rounds,
                    p_data=p,
                    p_meas=p if p_meas is None else p_meas,
                    error_type=error_type,
                    decoder_kind=kind,
                    decoder_args=args,
                )
                jobs.append(
                    svc.submit(
                        MemoryExperimentCircuit(spec),
                        backend=MEMORY_BACKEND,
                        shots=shots,
                        seed=scoped_seed,
                    )
                )
            series = [
                (p, job.result().get_counts().get("1", 0) / shots)
                for p, job in zip(physical_rates, jobs)
            ]
        else:
            series = [
                (
                    p,
                    logical_error_rate(
                        code,
                        decoder,
                        rounds,
                        p,
                        p_meas=p_meas,
                        shots=shots,
                        seed=scoped_seed,
                        error_type=error_type,
                        service=service,
                    ).logical_error_rate,
                )
                for p in physical_rates
            ]
        out[distance] = series
    return out


def qec_suppression_factor(
    code: CSSCode,
    decoder,
    p_data: float,
    rounds: int | None = None,
    shots: int = 400,
    seed: int = 0,
    service: ExecutionService | None = None,
) -> float:
    """Effective noise suppression: logical rate per round / physical rate.

    This is the factor the Figure-4(c) experiment multiplies into the device
    noise model: after attaching the generated decoder, the effective error
    probability of each operation drops from p to p * factor.  Clamped to
    (0, 1]; a factor >= 1 means the code is operating above threshold and
    QEC would not help.
    """
    rounds = code.distance if rounds is None else rounds
    result = logical_error_rate(
        code, decoder, rounds, p_data, shots=shots, seed=seed, service=service
    )
    per_round = result.logical_error_per_round
    if per_round <= 0.0:
        # No observed failure: bound by the Wilson upper limit instead of 0.
        upper = binomial_confidence_interval(0, shots)[1]
        per_round = max(upper / rounds, 1e-9)
    return float(min(1.0, per_round / p_data))


def average_qubit_lifetime_gain(
    code: CSSCode,
    decoder,
    p_data: float,
    rounds: int | None = None,
    shots: int = 400,
    seed: int = 0,
    service: ExecutionService | None = None,
) -> float:
    """How many times longer the logical qubit survives vs a bare qubit.

    Bare qubit lifetime ~ 1/p per round; logical lifetime ~ 1/p_L per round.
    """
    factor = qec_suppression_factor(
        code, decoder, p_data, rounds, shots, seed, service=service
    )
    return 1.0 / factor
