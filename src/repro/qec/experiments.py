"""QEC experiments: memory runs, logical error rates, thresholds, lifetime.

These drive the paper's Section V-B/V-D claims:

* :func:`logical_error_rate` — the decoder-scored memory experiment.
* :func:`threshold_sweep` — logical vs physical error rate across distances
  (the crossing point is the code threshold).
* :func:`qec_suppression_factor` — the effective noise-reduction factor the
  Figure-4(c) experiment applies to the device noise model ("corresponding to
  the new error rate after QEC").
* :func:`average_qubit_lifetime_gain` — the paper's "extend the average qubit
  lifetime" claim, expressed in rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QECError
from repro.qec.codes.base import CSSCode
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import sample_memory
from repro.utils.rng import derive_rng
from repro.utils.stats import binomial_confidence_interval


@dataclass(frozen=True)
class MemoryExperimentResult:
    """Aggregated memory-experiment statistics."""

    code_name: str
    decoder_name: str
    rounds: int
    p_data: float
    p_meas: float
    shots: int
    logical_failures: int

    @property
    def logical_error_rate(self) -> float:
        return self.logical_failures / self.shots

    @property
    def confidence_interval(self) -> tuple[float, float]:
        return binomial_confidence_interval(self.logical_failures, self.shots)

    @property
    def logical_error_per_round(self) -> float:
        """Per-round failure probability inferred from the run-level rate."""
        p_run = min(self.logical_error_rate, 0.5)
        # p_run = (1 - (1 - 2 p_round)^rounds) / 2, inverted:
        inner = max(1.0 - 2.0 * p_run, 1e-12)
        return 0.5 * (1.0 - inner ** (1.0 / self.rounds))


def logical_error_rate(
    code: CSSCode,
    decoder,
    rounds: int,
    p_data: float,
    p_meas: float | None = None,
    shots: int = 200,
    seed: int = 0,
    error_type: str = "x",
) -> MemoryExperimentResult:
    """Score a decoder on the phenomenological memory experiment.

    A shot fails when (true error XOR decoder correction) flips the stored
    logical observable.  ``p_meas`` defaults to ``p_data`` (the standard
    phenomenological convention).
    """
    if shots < 1:
        raise QECError("memory experiment needs >= 1 shot")
    p_meas = p_data if p_meas is None else p_meas
    failures = 0
    for shot in range(shots):
        rng = derive_rng(seed, "memory", code.name, rounds, p_data, p_meas, shot)
        history = sample_memory(code, rounds, p_data, p_meas, rng, error_type)
        result = decoder.decode(history)
        residual = history.true_error ^ result.correction
        if code.logical_flipped(residual, error_type):
            failures += 1
    return MemoryExperimentResult(
        code_name=code.name,
        decoder_name=type(decoder).__name__,
        rounds=rounds,
        p_data=p_data,
        p_meas=p_meas,
        shots=shots,
        logical_failures=failures,
    )


def threshold_sweep(
    code_factory,
    distances: list[int],
    physical_rates: list[float],
    rounds_per_distance: bool = True,
    shots: int = 200,
    seed: int = 0,
    decoder_factory=None,
) -> dict[int, list[tuple[float, float]]]:
    """Logical error rate vs physical rate, one series per distance.

    Below threshold the larger code wins; above it, loses.  Returns
    ``{distance: [(p_physical, p_logical), ...]}``.
    """
    if decoder_factory is None:
        decoder_factory = lambda code: MWPMDecoder(code, "x")  # noqa: E731
    out: dict[int, list[tuple[float, float]]] = {}
    for distance in distances:
        code = code_factory(distance)
        decoder = decoder_factory(code)
        rounds = distance if rounds_per_distance else 1
        series = []
        for p in physical_rates:
            result = logical_error_rate(
                code, decoder, rounds, p, shots=shots, seed=seed
            )
            series.append((p, result.logical_error_rate))
        out[distance] = series
    return out


def qec_suppression_factor(
    code: CSSCode,
    decoder,
    p_data: float,
    rounds: int | None = None,
    shots: int = 400,
    seed: int = 0,
) -> float:
    """Effective noise suppression: logical rate per round / physical rate.

    This is the factor the Figure-4(c) experiment multiplies into the device
    noise model: after attaching the generated decoder, the effective error
    probability of each operation drops from p to p * factor.  Clamped to
    (0, 1]; a factor >= 1 means the code is operating above threshold and
    QEC would not help.
    """
    rounds = code.distance if rounds is None else rounds
    result = logical_error_rate(code, decoder, rounds, p_data, shots=shots, seed=seed)
    per_round = result.logical_error_per_round
    if per_round <= 0.0:
        # No observed failure: bound by the Wilson upper limit instead of 0.
        upper = binomial_confidence_interval(0, shots)[1]
        per_round = max(upper / rounds, 1e-9)
    return float(min(1.0, per_round / p_data))


def average_qubit_lifetime_gain(
    code: CSSCode,
    decoder,
    p_data: float,
    rounds: int | None = None,
    shots: int = 400,
    seed: int = 0,
) -> float:
    """How many times longer the logical qubit survives vs a bare qubit.

    Bare qubit lifetime ~ 1/p per round; logical lifetime ~ 1/p_L per round.
    """
    factor = qec_suppression_factor(code, decoder, p_data, rounds, shots, seed)
    return 1.0 / factor
