"""Union-find decoder (Delfosse & Nickerson, simplified).

An almost-linear-time alternative to MWPM with slightly worse accuracy —
exactly the trade-off the paper's "topology-agnostic decoder" future-work
discussion cares about.  The implementation follows the standard two phases:

1. **Cluster growth** — clusters seeded at space-time detection events grow by
   half-edges on the space-time decoding graph until every cluster has even
   defect parity or touches the spatial boundary.
2. **Peeling** — within each cluster's spanning forest, leaves are peeled off;
   a leaf edge joins the correction iff it is needed to pair up defects.

Corrections only collect *space* edges (data-qubit faults); time edges
represent measurement errors and need no data correction.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import DecodingError
from repro.qec.codes.base import BOUNDARY, CSSCode
from repro.qec.syndrome import DetectionEvent, SyndromeHistory


@dataclass
class UnionFindResult:
    correction: np.ndarray
    num_growth_rounds: int
    cluster_count: int


class _DisjointSet:
    """Union-find with parity and boundary tracking per root."""

    def __init__(self) -> None:
        self.parent: dict = {}
        self.rank: dict = {}
        self.parity: dict = {}
        self.touches_boundary: dict = {}

    def add(self, node, defect: bool, boundary: bool) -> None:
        if node in self.parent:
            return
        self.parent[node] = node
        self.rank[node] = 0
        self.parity[node] = 1 if defect else 0
        self.touches_boundary[node] = boundary

    def find(self, node):
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.parity[ra] = (self.parity[ra] + self.parity[rb]) % 2
        self.touches_boundary[ra] = (
            self.touches_boundary[ra] or self.touches_boundary[rb]
        )

    def is_odd(self, node) -> bool:
        root = self.find(node)
        return self.parity[root] == 1 and not self.touches_boundary[root]


class UnionFindDecoder:
    """Union-find decoding of multi-round syndrome histories."""

    def __init__(self, code: CSSCode, error_type: str = "x") -> None:
        self.code = code
        self.error_type = error_type
        self._space_graph = code.matching_graph(error_type)

    # -- space-time graph -----------------------------------------------------

    def _build_graph(self, rounds: int) -> nx.Graph:
        """Replicate the spatial graph across rounds; add time edges."""
        graph = nx.Graph()
        boundary = ("B",)
        graph.add_node(boundary)
        checks = [n for n in self._space_graph.nodes if n != BOUNDARY]
        for t in range(rounds + 1):
            for c in checks:
                graph.add_node((t, c))
            for a, b, data in self._space_graph.edges(data=True):
                fault = data["fault"]
                if a == BOUNDARY:
                    graph.add_edge((t, b), boundary, fault=fault, kind="space")
                elif b == BOUNDARY:
                    graph.add_edge((t, a), boundary, fault=fault, kind="space")
                else:
                    graph.add_edge((t, a), (t, b), fault=fault, kind="space")
            if t > 0:
                for c in checks:
                    graph.add_edge((t - 1, c), (t, c), fault=None, kind="time")
        return graph

    # -- decoding -----------------------------------------------------------------

    def decode(self, history_or_events, rounds: int | None = None) -> UnionFindResult:
        """Decode detection events; ``rounds`` required for raw event lists."""
        if isinstance(history_or_events, SyndromeHistory):
            events = history_or_events.detection_events
            rounds = history_or_events.rounds
        else:
            events = list(history_or_events)
            if rounds is None:
                rounds = max((t for t, _ in events), default=0)
        n = self.code.num_data_qubits
        if not events:
            return UnionFindResult(np.zeros(n, dtype=bool), 0, 0)

        graph = self._build_graph(rounds)
        defects: set = {(t, c) for t, c in events}
        for node in defects:
            if node not in graph:
                raise DecodingError(f"detection event {node} outside the graph")

        dsu = _DisjointSet()
        boundary = ("B",)
        dsu.add(boundary, defect=False, boundary=True)
        for node in defects:
            dsu.add(node, defect=True, boundary=False)

        growth: dict[tuple, int] = {}  # edge key -> half-edges grown (0..2)
        in_cluster: set = set(defects)
        grown_edges: set = set()
        max_rounds = 2 * (graph.number_of_nodes() + 1)
        rounds_used = 0
        while any(dsu.is_odd(node) for node in list(in_cluster)):
            rounds_used += 1
            if rounds_used > max_rounds:
                raise DecodingError("union-find growth failed to converge")
            # Grow all boundary edges of odd clusters by one half-step.
            frontier = []
            for node in list(in_cluster):
                if not dsu.is_odd(node):
                    continue
                for nbr in graph.neighbors(node):
                    key = _edge_key(node, nbr)
                    if growth.get(key, 0) < 2:
                        frontier.append((node, nbr, key))
            for node, nbr, key in frontier:
                growth[key] = growth.get(key, 0) + 1
                if growth[key] >= 2 and key not in grown_edges:
                    grown_edges.add(key)
                    if nbr not in dsu.parent:
                        dsu.add(nbr, defect=False, boundary=nbr == boundary)
                    in_cluster.add(nbr)
                    dsu.union(node, nbr)

        correction = self._peel(graph, grown_edges, defects, dsu)
        clusters = {dsu.find(n) for n in in_cluster}
        return UnionFindResult(correction, rounds_used, len(clusters))

    # -- peeling ---------------------------------------------------------------------

    def _peel(
        self,
        graph: nx.Graph,
        grown_edges: set,
        defects: set,
        dsu: _DisjointSet,
    ) -> np.ndarray:
        n = self.code.num_data_qubits
        correction = np.zeros(n, dtype=bool)
        erasure = nx.Graph()
        for key in grown_edges:
            a, b = key
            erasure.add_edge(a, b, **graph.edges[a, b])
        # Spanning forest of the erasure; peel leaves, flipping defect marks.
        marked = {node: (node in defects) for node in erasure.nodes}
        boundary = ("B",)
        for component in list(nx.connected_components(erasure)):
            tree = nx.minimum_spanning_tree(erasure.subgraph(component))
            # Peel from the leaves inward; treat the boundary node as the
            # root so it is peeled last and absorbs any leftover defect.
            order = sorted(
                tree.nodes, key=lambda v: (v == boundary, tree.degree(v))
            )
            tree = tree.copy()
            while tree.number_of_nodes() > 1:
                leaves = [
                    v
                    for v in tree.nodes
                    if tree.degree(v) == 1 and v != boundary
                ]
                if not leaves:
                    break
                for leaf in leaves:
                    if tree.number_of_nodes() <= 1 or leaf not in tree:
                        continue
                    (parent,) = list(tree.neighbors(leaf))
                    if marked.get(leaf, False):
                        edge = tree.edges[leaf, parent]
                        if edge.get("kind") == "space" and edge.get("fault") is not None:
                            correction[edge["fault"]] ^= True
                        marked[parent] = not marked.get(parent, False)
                        marked[leaf] = False
                    tree.remove_node(leaf)
        return correction


def _edge_key(a, b) -> tuple:
    return (a, b) if repr(a) <= repr(b) else (b, a)
