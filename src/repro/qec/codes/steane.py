"""The Steane [[7,1,3]] code (paper reference [17]).

Both stabilizer types share the parity-check matrix of the classical [7,4,3]
Hamming code, whose syndrome directly reads out the (1-based) index of a
single flipped qubit — which is why the lookup decoder is exact for it.
"""

from __future__ import annotations

import numpy as np

from repro.qec.codes.base import CSSCode

#: Hamming(7,4) parity checks; column q covers qubit q (0-based), and check
#: row i fires for qubits whose (q+1) has bit i set.
_HAMMING = np.array(
    [
        [1, 0, 1, 0, 1, 0, 1],
        [0, 1, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ],
    dtype=bool,
)


class SteaneCode(CSSCode):
    """[[7, 1, 3]] self-dual CSS code."""

    def __init__(self) -> None:
        logical = np.ones(7, dtype=bool)  # X^7 and Z^7 are the logicals
        super().__init__(
            name="steane",
            hx=_HAMMING.copy(),
            hz=_HAMMING.copy(),
            logical_x=logical.copy(),
            logical_z=logical.copy(),
            distance=3,
        )

    @staticmethod
    def syndrome_to_qubit(syndrome: np.ndarray) -> int | None:
        """Decode a 3-bit Hamming syndrome to the flipped qubit (or None)."""
        value = int(sum((1 << i) * int(b) for i, b in enumerate(syndrome)))
        return value - 1 if value > 0 else None
