"""Stabilizer code constructions."""

from repro.qec.codes.base import BOUNDARY, CSSCode
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.steane import SteaneCode
from repro.qec.codes.surface import SurfaceCode

__all__ = ["BOUNDARY", "CSSCode", "RepetitionCode", "SteaneCode", "SurfaceCode"]
