"""The distance-d repetition (bit-flip) code.

Protects one logical qubit against X errors only: stabilizers are Z_i Z_{i+1}
on a line of d qubits.  Used by the paper-adjacent ablations as the simplest
code exercising the full decoder stack, and as the ground truth for decoder
unit tests (its minimum-weight decoding is majority vote).
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodeConstructionError
from repro.qec.codes.base import CSSCode


class RepetitionCode(CSSCode):
    """[[d, 1, d]] against X errors (no Z protection)."""

    def __init__(self, distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise CodeConstructionError(
                f"repetition code distance must be odd and >= 3, got {distance}"
            )
        n = distance
        hz = np.zeros((n - 1, n), dtype=bool)
        for i in range(n - 1):
            hz[i, i] = True
            hz[i, i + 1] = True
        hx = np.zeros((0, n), dtype=bool)
        # Logical X is X on every qubit (commutes with each ZZ check); any
        # single Z is a logical-Z representative (all are equivalent modulo
        # stabilizers).
        logical_x = np.ones(n, dtype=bool)
        logical_z = np.zeros(n, dtype=bool)
        logical_z[0] = True
        data_coords = np.array([[i, 0.0] for i in range(n)])
        z_check_coords = np.array([[i + 0.5, 0.0] for i in range(n - 1)])
        super().__init__(
            name=f"repetition-{distance}",
            hx=hx,
            hz=hz,
            logical_x=logical_x,
            logical_z=logical_z,
            distance=distance,
            data_coords=data_coords,
            z_check_coords=z_check_coords,
        )
