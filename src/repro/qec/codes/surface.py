"""The rotated surface code (Fowler et al., Phys. Rev. A 86, 032324 — the
paper's reference [18]).

Data qubits sit on a d x d grid; weight-4 plaquette stabilizers tile the bulk
in a checkerboard of X and Z types, with weight-2 boundary checks: X-type
checks terminate on the top/bottom boundaries and Z-type on the left/right.
Logical Z runs along the top row (crossing every X-boundary column), logical X
down the left column.

The construction is fully coordinate-based so Figure-2-style lattice renders
and the QEC agent's device layout can share the same geometry.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodeConstructionError
from repro.qec.codes.base import CSSCode


class SurfaceCode(CSSCode):
    """[[d^2, 1, d]] rotated surface code."""

    def __init__(self, distance: int) -> None:
        if distance < 3 or distance % 2 == 0:
            raise CodeConstructionError(
                f"surface code distance must be odd and >= 3, got {distance}"
            )
        self._d = distance
        hx_rows, hz_rows = [], []
        x_coords, z_coords = [], []
        d = distance
        n = d * d

        def data_index(row: int, col: int) -> int:
            return row * d + col

        # Plaquette corners live at (r, c) with r, c in 0..d; the plaquette
        # covers the up-to-four data qubits NW/NE/SW/SE of the corner.
        for r in range(d + 1):
            for c in range(d + 1):
                cells = [
                    (rr, cc)
                    for rr, cc in [(r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c)]
                    if 0 <= rr < d and 0 <= cc < d
                ]
                if len(cells) < 2:
                    continue  # corners of the patch host no check
                is_x_type = (r + c) % 2 == 0
                is_bulk = len(cells) == 4
                if not is_bulk:
                    # Boundary rule: X checks only on top/bottom edges,
                    # Z checks only on left/right edges.
                    on_top_bottom = r == 0 or r == d
                    on_left_right = c == 0 or c == d
                    if is_x_type and not on_top_bottom:
                        continue
                    if not is_x_type and not on_left_right:
                        continue
                row_vec = np.zeros(n, dtype=bool)
                for rr, cc in cells:
                    row_vec[data_index(rr, cc)] = True
                if is_x_type:
                    hx_rows.append(row_vec)
                    x_coords.append((r, c))
                else:
                    hz_rows.append(row_vec)
                    z_coords.append((r, c))

        hx = np.array(hx_rows, dtype=bool)
        hz = np.array(hz_rows, dtype=bool)
        expected = (d * d - 1) // 2
        if hx.shape[0] != expected or hz.shape[0] != expected:
            raise CodeConstructionError(
                f"surface-{d}: built {hx.shape[0]} X and {hz.shape[0]} Z "
                f"checks, expected {expected} each"
            )

        logical_z = np.zeros(n, dtype=bool)
        logical_z[[data_index(0, c) for c in range(d)]] = True  # top row
        logical_x = np.zeros(n, dtype=bool)
        logical_x[[data_index(r, 0) for r in range(d)]] = True  # left column

        data_coords = np.array([[r, c] for r in range(d) for c in range(d)], float)
        super().__init__(
            name=f"surface-{distance}",
            hx=hx,
            hz=hz,
            logical_x=logical_x,
            logical_z=logical_z,
            distance=distance,
            data_coords=data_coords,
            x_check_coords=np.array(x_coords, float),
            z_check_coords=np.array(z_coords, float),
        )

    @property
    def lattice_distance(self) -> int:
        return self._d

    def data_index(self, row: int, col: int) -> int:
        """Index of the data qubit at lattice position (row, col)."""
        d = self._d
        if not (0 <= row < d and 0 <= col < d):
            raise CodeConstructionError(f"({row}, {col}) outside a d={d} lattice")
        return row * d + col

    def ascii_lattice(
        self,
        error_bits: np.ndarray | None = None,
        highlight_checks: set[int] | None = None,
        error_type: str = "x",
    ) -> str:
        """Render the lattice: data qubits, checks, errors and fired checks.

        Data qubits print as ``.`` (or ``X``/``Z`` when errored); checks of
        the type that detects ``error_type`` print as ``o`` (or ``*`` when in
        ``highlight_checks``).  This drives the Figure-2 style decoder trace.
        """
        d = self._d
        coords = self.z_check_coords if error_type == "x" else self.x_check_coords
        fired = highlight_checks or set()
        err = (
            np.asarray(error_bits, dtype=bool)
            if error_bits is not None
            else np.zeros(d * d, dtype=bool)
        )
        # Canvas indexed by half-integer lattice positions, scaled by 2.
        size = 2 * d + 1
        canvas = [[" "] * size for _ in range(size)]
        for r in range(d):
            for c in range(d):
                mark = error_type.upper() if err[self.data_index(r, c)] else "."
                canvas[2 * r + 1][2 * c + 1] = mark
        for idx, (r, c) in enumerate(coords):
            mark = "*" if idx in fired else "o"
            canvas[int(2 * r)][int(2 * c)] = mark
        return "\n".join("".join(row).rstrip() for row in canvas)
