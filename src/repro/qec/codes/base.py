"""CSS stabilizer-code base class.

A CSS code is defined by two binary parity-check matrices: ``hx`` (X-type
stabilizers, detecting Z errors) and ``hz`` (Z-type stabilizers, detecting X
errors), with ``hx @ hz.T = 0`` over GF(2).  The class derives Pauli-string
stabilizers, validates commutation relations, and builds the decoder matching
graphs that MWPM and union-find operate on.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.errors import CodeConstructionError
from repro.stabilizer.pauli import PauliString

#: The virtual boundary vertex in matching graphs.
BOUNDARY = "boundary"


class CSSCode:
    """A CSS stabilizer code [[n, k, d]].

    Args:
        name: human-readable identifier.
        hx: bool array (mx, n) — X-stabilizer supports.
        hz: bool array (mz, n) — Z-stabilizer supports.
        logical_x: bool vector (n,) — support of one logical X operator.
        logical_z: bool vector (n,) — support of one logical Z operator.
        distance: claimed code distance (validated empirically in tests).
        data_coords: optional (n, 2) float coordinates for visualisation.
        x_check_coords / z_check_coords: optional check coordinates.
    """

    def __init__(
        self,
        name: str,
        hx: np.ndarray,
        hz: np.ndarray,
        logical_x: np.ndarray,
        logical_z: np.ndarray,
        distance: int,
        data_coords: np.ndarray | None = None,
        x_check_coords: np.ndarray | None = None,
        z_check_coords: np.ndarray | None = None,
    ) -> None:
        self.name = name
        self.hx = np.asarray(hx, dtype=bool)
        self.hz = np.asarray(hz, dtype=bool)
        self.logical_x = np.asarray(logical_x, dtype=bool)
        self.logical_z = np.asarray(logical_z, dtype=bool)
        self.distance = int(distance)
        self.data_coords = data_coords
        self.x_check_coords = x_check_coords
        self.z_check_coords = z_check_coords
        self._validate()

    # -- structure -----------------------------------------------------------

    @property
    def num_data_qubits(self) -> int:
        return self.hx.shape[1]

    @property
    def num_x_checks(self) -> int:
        return self.hx.shape[0]

    @property
    def num_z_checks(self) -> int:
        return self.hz.shape[0]

    @property
    def num_logical_qubits(self) -> int:
        rank_x = _gf2_rank(self.hx.copy())
        rank_z = _gf2_rank(self.hz.copy())
        return self.num_data_qubits - rank_x - rank_z

    def _validate(self) -> None:
        n = self.num_data_qubits
        if self.hz.shape[1] != n:
            raise CodeConstructionError(
                f"hx has {n} columns but hz has {self.hz.shape[1]}"
            )
        if self.logical_x.shape != (n,) or self.logical_z.shape != (n,):
            raise CodeConstructionError("logical operator support has wrong length")
        # CSS condition: every X check commutes with every Z check.
        overlap = (self.hx.astype(int) @ self.hz.astype(int).T) % 2
        if overlap.any():
            raise CodeConstructionError(
                f"{self.name}: hx and hz do not commute (CSS condition violated)"
            )
        # Logical X commutes with Z checks iff hz @ lx = 0; anticommutes rule.
        if ((self.hz.astype(int) @ self.logical_x.astype(int)) % 2).any():
            raise CodeConstructionError(
                f"{self.name}: logical X anticommutes with a Z stabilizer"
            )
        if ((self.hx.astype(int) @ self.logical_z.astype(int)) % 2).any():
            raise CodeConstructionError(
                f"{self.name}: logical Z anticommutes with an X stabilizer"
            )
        if int(self.logical_x.astype(int) @ self.logical_z.astype(int)) % 2 != 1:
            raise CodeConstructionError(
                f"{self.name}: logical X and Z must anticommute"
            )

    # -- stabilizers as Pauli strings ------------------------------------------

    def x_stabilizers(self) -> list[PauliString]:
        n = self.num_data_qubits
        return [
            PauliString.from_sparse(n, [(q, "X") for q in np.flatnonzero(row)])
            for row in self.hx
        ]

    def z_stabilizers(self) -> list[PauliString]:
        n = self.num_data_qubits
        return [
            PauliString.from_sparse(n, [(q, "Z") for q in np.flatnonzero(row)])
            for row in self.hz
        ]

    def stabilizers(self) -> list[PauliString]:
        return self.x_stabilizers() + self.z_stabilizers()

    def logical_x_operator(self) -> PauliString:
        n = self.num_data_qubits
        return PauliString.from_sparse(
            n, [(q, "X") for q in np.flatnonzero(self.logical_x)]
        )

    def logical_z_operator(self) -> PauliString:
        n = self.num_data_qubits
        return PauliString.from_sparse(
            n, [(q, "Z") for q in np.flatnonzero(self.logical_z)]
        )

    # -- syndromes ------------------------------------------------------------------

    def syndrome(self, error_bits: np.ndarray, error_type: str) -> np.ndarray:
        """Syndrome of a pure-X or pure-Z error pattern.

        ``error_type='x'`` means the data qubits in ``error_bits`` suffered X
        flips, detected by the Z checks; ``'z'`` errors are detected by X
        checks.
        """
        checks = self._checks_for(error_type)
        return (checks.astype(int) @ np.asarray(error_bits, dtype=int)) % 2 == 1

    def _checks_for(self, error_type: str) -> np.ndarray:
        if error_type == "x":
            return self.hz
        if error_type == "z":
            return self.hx
        raise CodeConstructionError(f"error_type must be 'x' or 'z', got '{error_type}'")

    def logical_support_for(self, error_type: str) -> np.ndarray:
        """The logical operator whose parity the given error type can flip."""
        return self.logical_z if error_type == "z" else self.logical_x

    def logical_flipped(self, error_bits: np.ndarray, error_type: str) -> bool:
        """Does this residual error anticommute with the conjugate logical?

        An X error flips the stored logical-Z eigenvalue when its support
        overlaps logical Z oddly (and vice versa).
        """
        conjugate = self.logical_z if error_type == "x" else self.logical_x
        return bool(int(conjugate.astype(int) @ np.asarray(error_bits, int)) % 2)

    # -- matching graph ---------------------------------------------------------------

    def matching_graph(self, error_type: str) -> nx.Graph:
        """Decoder graph for one error type.

        Nodes are check indices (ints) plus the virtual :data:`BOUNDARY`
        node.  Each data qubit becomes an edge between the (at most two)
        checks that see it; qubits seen by a single check connect that check
        to the boundary.  Edge attribute ``fault`` is the data qubit index;
        edges carry unit ``weight``.

        Raises:
            CodeConstructionError: if some qubit triggers more than two
                checks (not a matchable code for this error type).
        """
        checks = self._checks_for(error_type)
        graph = nx.Graph()
        graph.add_node(BOUNDARY)
        graph.add_nodes_from(range(checks.shape[0]))
        for qubit in range(checks.shape[1]):
            touching = np.flatnonzero(checks[:, qubit])
            if len(touching) == 0:
                continue  # undetectable by this check type
            if len(touching) == 1:
                graph.add_edge(int(touching[0]), BOUNDARY, fault=qubit, weight=1)
            elif len(touching) == 2:
                graph.add_edge(
                    int(touching[0]), int(touching[1]), fault=qubit, weight=1
                )
            else:
                raise CodeConstructionError(
                    f"{self.name}: qubit {qubit} touches {len(touching)} "
                    f"{error_type}-detecting checks; matching decoders need <= 2"
                )
        return graph

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name='{self.name}', "
            f"n={self.num_data_qubits}, k={self.num_logical_qubits}, "
            f"d={self.distance})"
        )


def _gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a boolean matrix over GF(2), by Gaussian elimination."""
    m = matrix.astype(np.uint8) % 2
    rank = 0
    rows, cols = m.shape
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if m[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for row in range(rows):
            if row != rank and m[row, col]:
                m[row] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank
