"""Prompt templates: zero-shot, CoT, SCoT and the multi-pass repair template.

These render the exact textual structures the paper's pipeline feeds the
model.  The simulated LLM conditions on the *style* (plain/cot/scot) rather
than parsing the rendered text, but rendering is still load-bearing: the
multi-pass template carries the error trace the repair step parses, and the
eval reports show rendered prompts for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

PLAIN_TEMPLATE = """\
### Task
{prompt}

### Python code
"""

COT_TEMPLATE = """\
### Task
{prompt}

### Let's think step by step
{reasoning}

### Python code
"""

SCOT_TEMPLATE = """\
### Task
{prompt}

### Program structure (sequence / branch / loop)
{skeleton}

### Python code
"""

MULTIPASS_TEMPLATE = """\
### Original task
{prompt}

### Previously generated code
```python
{code}
```

### Error produced when running the code
```
{trace}
```

### Fix the error above. Produce the corrected, complete program.

### Python code
"""

SEMANTIC_FEEDBACK_TEMPLATE = """\
### Original task
{prompt}

### Previously generated code
```python
{code}
```

### Problem
The code runs, but its measured output distribution does not match the
expected behaviour: {feedback}

### Revise the algorithm. Produce the corrected, complete program.

### Python code
"""


@dataclass(frozen=True)
class RenderedPrompt:
    """A fully rendered prompt plus the style tag the model conditions on."""

    text: str
    style: str  # 'plain' | 'cot' | 'scot' | 'multipass' | 'semantic'


def render_plain(prompt: str) -> RenderedPrompt:
    return RenderedPrompt(PLAIN_TEMPLATE.format(prompt=prompt), "plain")


def render_cot(prompt: str, reasoning_steps: list[str]) -> RenderedPrompt:
    reasoning = "\n".join(f"{i+1}. {step}" for i, step in enumerate(reasoning_steps))
    return RenderedPrompt(
        COT_TEMPLATE.format(prompt=prompt, reasoning=reasoning), "cot"
    )


def render_scot(prompt: str, skeleton_lines: list[str]) -> RenderedPrompt:
    skeleton = "\n".join(skeleton_lines)
    return RenderedPrompt(
        SCOT_TEMPLATE.format(prompt=prompt, skeleton=skeleton), "scot"
    )


def render_multipass(prompt: str, code: str, trace: str) -> RenderedPrompt:
    return RenderedPrompt(
        MULTIPASS_TEMPLATE.format(prompt=prompt, code=code, trace=trace),
        "multipass",
    )


def render_semantic_feedback(prompt: str, code: str, feedback: str) -> RenderedPrompt:
    return RenderedPrompt(
        SEMANTIC_FEEDBACK_TEMPLATE.format(prompt=prompt, code=code, feedback=feedback),
        "semantic",
    )
