"""The test-suite prompt bank (paper Section III-B).

34 prompt-answer pairs across three tiers with the paper's exact mix:
16 basic (47%), 8 intermediate (24%), 10 advanced (29%).  Each case carries
its family and parameters; the *answer* half of the pair is the canonical
synthesis of the family (see :mod:`repro.evalsuite.suite`).

A separate, larger, syntax-flavoured bank lives in
:mod:`repro.evalsuite.qhe` for the Qiskit-HumanEval-style comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PromptCase:
    """One prompt of the evaluation suite."""

    case_id: str
    tier: str
    family: str
    text: str
    params: dict = field(default_factory=dict, hash=False)


_BASIC: list[PromptCase] = [
    PromptCase(
        "basic-01", "basic", "superposition",
        "Generate a quantum program that puts a single qubit into an equal "
        "superposition using a Hadamard gate, measures it, and reports the "
        "counts from a simulator.",
    ),
    PromptCase(
        "basic-02", "basic", "superposition",
        "Write code that demonstrates quantum randomness: apply a hadamard "
        "to one qubit, measure, and run 2048 shots so both outcomes appear "
        "with roughly equal probability.",
    ),
    PromptCase(
        "basic-03", "basic", "bell",
        "Create a Bell state (the Phi+ EPR pair) on two qubits, measure both "
        "qubits, and run the circuit on a simulator.",
    ),
    PromptCase(
        "basic-04", "basic", "bell",
        "Write a quantum program that entangles two qubits into a Bell pair "
        "and shows that the measurement outcomes are perfectly correlated.",
    ),
    PromptCase(
        "basic-05", "basic", "ghz",
        "Prepare a 3-qubit GHZ cat state, measure every qubit, and collect "
        "the counts.",
        {"n": 3},
    ),
    PromptCase(
        "basic-06", "basic", "ghz",
        "Create a 4-qubit GHZ cat state and measure all of the qubits on a "
        "simulator.",
        {"n": 4},
    ),
    PromptCase(
        "basic-07", "basic", "basis_prep",
        "Prepare the computational basis state |110> on three qubits, "
        "measure all qubits and verify the counts show only that bitstring.",
        {"bits": "110"},
    ),
    PromptCase(
        "basic-08", "basic", "basis_prep",
        "Write code that prepares the basis state |0011> on four qubits and "
        "measures it.",
        {"bits": "0011"},
    ),
    PromptCase(
        "basic-09", "basic", "rotation",
        "Apply an RY rotation of angle 1.2 radians to a qubit starting in "
        "|0>, measure it many times, and estimate the probability of "
        "reading 1 on the Bloch sphere.",
        {"theta": 1.2},
    ),
    PromptCase(
        "basic-10", "basic", "rotation",
        "Rotate a single qubit by angle 0.7 about the Y axis and measure; "
        "the 1-probability should be sin^2(0.35).",
        {"theta": 0.7},
    ),
    PromptCase(
        "basic-11", "basic", "statevector",
        "Build a two-qubit circuit that prepares |01> and inspect its "
        "statevector amplitudes without measuring.",
        {"label": "01"},
    ),
    PromptCase(
        "basic-12", "basic", "statevector",
        "Build the three-qubit state |100> and print the state vector "
        "amplitudes without measuring.",
        {"label": "100"},
    ),
    PromptCase(
        "basic-13", "basic", "device_run",
        "Run a 3-qubit entangling circuit on the IBM Brisbane backend: "
        "transpile it for the device and fetch the measurement counts.",
        {"n": 3},
    ),
    PromptCase(
        "basic-14", "basic", "device_run",
        "Write code that submits a 2-qubit circuit to a real quantum device "
        "backend (fake Brisbane), handling the hardware coupling map "
        "correctly.",
        {"n": 2},
    ),
    PromptCase(
        "basic-15", "basic", "qasm_io",
        "Serialise a Bell circuit to OpenQASM text and parse it back, "
        "verifying the round trip preserves the circuit.",
    ),
    PromptCase(
        "basic-16", "basic", "qasm_io",
        "Export a measured two-qubit entangling circuit to QASM and re-import "
        "it.",
    ),
]

_INTERMEDIATE: list[PromptCase] = [
    PromptCase(
        "inter-01", "intermediate", "qft",
        "Implement the 3-qubit quantum Fourier transform including the "
        "final bit-order swaps, and return the circuit's statevector.",
        {"n": 3},
    ),
    PromptCase(
        "inter-02", "intermediate", "qft",
        "Write the quantum Fourier transform on 4 qubits with controlled "
        "phase gradient rotations.",
        {"n": 4},
    ),
    PromptCase(
        "inter-03", "intermediate", "deutsch_jozsa",
        "Implement the Deutsch-Jozsa algorithm for a constant-0 oracle on 3 "
        "input qubits; the measurement should return all zeros.",
        {"n": 3, "kind": "constant0"},
    ),
    PromptCase(
        "inter-04", "intermediate", "deutsch_jozsa",
        "Use the Deutsch-Jozsa algorithm with a balanced oracle on 3 input "
        "qubits to show the result is never the all-zero string.",
        {"n": 3, "kind": "balanced"},
    ),
    PromptCase(
        "inter-05", "intermediate", "bernstein_vazirani",
        "Recover the secret string 101 in a single query using the "
        "Bernstein-Vazirani algorithm.",
        {"secret": "101"},
    ),
    PromptCase(
        "inter-06", "intermediate", "bernstein_vazirani",
        "Implement Bernstein-Vazirani for the hidden bitstring 1101 and "
        "confirm the measurement reveals it.",
        {"secret": "1101"},
    ),
    PromptCase(
        "inter-07", "intermediate", "grover",
        "Use Grover's search to find the marked state 11 among two qubits "
        "with amplitude amplification.",
        {"marked": "11"},
    ),
    PromptCase(
        "inter-08", "intermediate", "grover",
        "Implement Grover search over 3 qubits for the marked state 101, "
        "using the optimal number of iterations.",
        {"marked": "101"},
    ),
]

_ADVANCED: list[PromptCase] = [
    PromptCase(
        "adv-01", "advanced", "teleportation",
        "Implement quantum teleportation: Alice teleports the state "
        "U(1.0, 0.5, 0)|0> to Bob using a shared Bell pair, a Bell "
        "measurement, and classically conditioned corrections.",
        {"theta": 1.0, "phi": 0.5},
    ),
    PromptCase(
        "adv-02", "advanced", "teleportation",
        "Teleport the state created by rotating |0> with theta=2.0 from "
        "qubit 0 to qubit 2; include the conditioned X and Z corrections "
        "after the Bell measurement.",
        {"theta": 2.0, "phi": 0.0},
    ),
    PromptCase(
        "adv-03", "advanced", "superdense",
        "Use superdense coding to transmit the two classical bits 10 over "
        "one Bell pair and decode them.",
        {"bits": "10"},
    ),
    PromptCase(
        "adv-04", "advanced", "superdense",
        "Demonstrate superdense coding of the message 01: encode on one "
        "half of an entangled pair and decode with a CNOT and Hadamard.",
        {"bits": "01"},
    ),
    PromptCase(
        "adv-05", "advanced", "phase_estimation",
        "Run quantum phase estimation with 3 counting qubits to estimate "
        "the phase 0.25 of a P-gate eigenvalue.",
        {"phase": 0.25, "n": 3},
    ),
    PromptCase(
        "adv-06", "advanced", "phase_estimation",
        "Estimate the eigenphase 0.375 using phase estimation (QPE) with 3 "
        "counting qubits and an inverse QFT before measurement.",
        {"phase": 0.375, "n": 3},
    ),
    PromptCase(
        "adv-07", "advanced", "quantum_walk",
        "Simulate 3 steps of a discrete-time quantum walk on a 4-cycle "
        "with a Hadamard coin, then measure the walker position.",
        {"steps": 3},
    ),
    PromptCase(
        "adv-08", "advanced", "quantum_walk",
        "Implement a coined quantum walk of 2 steps on a cycle of four "
        "positions and report the position distribution.",
        {"steps": 2},
    ),
    PromptCase(
        "adv-09", "advanced", "annealing",
        "Write a Trotterised quantum annealing schedule for a 3-qubit "
        "transverse-field Ising chain, ramping from the driver to the "
        "problem Hamiltonian, and measure the final state.",
        {"n": 3, "steps": 4},
    ),
    PromptCase(
        "adv-10", "advanced", "annealing",
        "Simulate adiabatic evolution of a 4-qubit Ising chain via a "
        "4-slice Trotter annealing schedule and sample the result.",
        {"n": 4, "steps": 4},
    ),
]


def suite_cases() -> list[PromptCase]:
    """All 34 prompt cases in tier order."""
    return list(_BASIC) + list(_INTERMEDIATE) + list(_ADVANCED)


def tier_mix() -> dict[str, float]:
    """The basic/intermediate/advanced fractions (paper: 47/24/29)."""
    cases = suite_cases()
    total = len(cases)
    return {
        tier: sum(1 for c in cases if c.tier == tier) / total
        for tier in ("basic", "intermediate", "advanced")
    }
