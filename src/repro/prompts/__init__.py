"""Prompt templates, CoT/SCoT scaffolds, and the evaluation prompt bank."""

from repro.prompts.bank import PromptCase, suite_cases, tier_mix
from repro.prompts.generator import (
    MANUAL_SEED_FAMILIES,
    GeneratedScaffold,
    ScaffoldGenerator,
)
from repro.prompts.templates import (
    RenderedPrompt,
    render_cot,
    render_multipass,
    render_plain,
    render_scot,
    render_semantic_feedback,
)

__all__ = [
    "GeneratedScaffold",
    "MANUAL_SEED_FAMILIES",
    "PromptCase",
    "RenderedPrompt",
    "ScaffoldGenerator",
    "render_cot",
    "render_multipass",
    "render_plain",
    "render_scot",
    "render_semantic_feedback",
    "suite_cases",
    "tier_mix",
]
