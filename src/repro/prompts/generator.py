"""CoT / SCoT prompt generation for the full suite from seed exemplars.

The paper (Section IV-C) hand-wrote CoT/SCoT scaffolds for the first five
test prompts and used GPT-4o to generate scaffolds "of the same CoT format"
for the rest — and later observed (Section V-E) that "some of the errors
occur due to incorrect CoT prompt generation".

Here the generator expands the five manual seeds to every prompt using the
knowledge base's outlines/skeletons as the generation oracle, and injects the
same imperfection: a seeded fraction of generated scaffolds are *corrupted*
(steps shuffled or dropped), which downstream forces structurally wrong code
exactly as a wrong GPT-4o scaffold did in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.knowledge import DEFAULT_KNOWLEDGE, KnowledgeBase
from repro.prompts.templates import RenderedPrompt, render_cot, render_scot
from repro.utils.rng import derive_rng

#: The five hand-written seed families (the first five prompts of the suite).
MANUAL_SEED_FAMILIES = (
    "superposition",
    "bell",
    "ghz",
    "basis_prep",
    "rotation",
)


@dataclass(frozen=True)
class GeneratedScaffold:
    """A reasoning scaffold plus its provenance."""

    family: str
    style: str  # 'cot' | 'scot'
    steps: tuple[str, ...]
    manual: bool
    corrupted: bool


class ScaffoldGenerator:
    """Expands manual seeds into scaffolds for every task family."""

    def __init__(
        self,
        knowledge: KnowledgeBase | None = None,
        corruption_rate: float = 0.08,
        seed: int = 2024,
    ) -> None:
        self.knowledge = knowledge or DEFAULT_KNOWLEDGE
        self.corruption_rate = corruption_rate
        self.seed = seed

    def scaffold(self, family: str, style: str) -> GeneratedScaffold:
        """Scaffold for one family: manual for seeds, generated otherwise."""
        spec = self.knowledge.get(family)
        steps = spec.outline if style == "cot" else spec.skeleton
        manual = family in MANUAL_SEED_FAMILIES
        corrupted = False
        if not manual:
            rng = derive_rng(self.seed, "scaffold", family, style)
            if rng.random() < self.corruption_rate:
                steps = _corrupt_steps(steps, rng)
                corrupted = True
        return GeneratedScaffold(
            family=family,
            style=style,
            steps=tuple(steps),
            manual=manual,
            corrupted=corrupted,
        )

    def render(self, prompt_text: str, family: str, style: str) -> RenderedPrompt:
        scaffold = self.scaffold(family, style)
        if style == "cot":
            return render_cot(prompt_text, list(scaffold.steps))
        return render_scot(prompt_text, list(scaffold.steps))


def _corrupt_steps(steps: tuple[str, ...], rng: np.random.Generator) -> tuple[str, ...]:
    """Damage a scaffold the way a wrong LLM generation would: drop or swap."""
    steps = list(steps)
    if len(steps) >= 2 and rng.random() < 0.5:
        i, j = rng.choice(len(steps), size=2, replace=False)
        steps[i], steps[j] = steps[j], steps[i]
    elif len(steps) >= 2:
        del steps[int(rng.integers(len(steps)))]
    return tuple(steps)
