"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so callers can
catch one base class.  The quantum SDK deliberately exposes a *structured* error
surface — error category, offending symbol, and a migration hint — because the
multi-pass repair loop (paper Section IV-A) consumes tracebacks programmatically
and the fault taxonomy of the evaluation (paper Section V) is keyed on these
categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Quantum SDK errors
# ---------------------------------------------------------------------------


class QuantumError(ReproError):
    """Base class for errors raised by :mod:`repro.quantum`."""


class CircuitError(QuantumError):
    """Structural problem while building a circuit (bad qubit index, width...)."""


class GateError(QuantumError):
    """Unknown gate name or malformed gate parameters."""


class SimulationError(QuantumError):
    """The simulator could not execute the circuit."""


class ValidationError(QuantumError):
    """Static analysis rejected a circuit before execution.

    Raised by the execution service's pre-flight stage (``validate="strict"``)
    when the analyzer reports ``QA1xx`` errors.  Carries the full diagnostic
    stream so callers — the evalsuite's ``static_error`` grading, the lint
    CLI — can report coded findings without re-running the analyzer.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        self.diagnostics = tuple(diagnostics)
        super().__init__(message)


class TranspilerError(QuantumError):
    """Layout/routing/decomposition failure."""


class BackendError(QuantumError):
    """Problems talking to a (simulated) backend."""


class QasmError(QuantumError):
    """Malformed OpenQASM text."""


class QuantumDeprecationError(QuantumError):
    """A removed legacy API was called.

    Mirrors the "deprecated Qiskit feature" errors that the paper identifies as
    the dominant syntactic failure mode of LLM-generated quantum code
    (Sections IV-C and V-D).  Instances carry the removed symbol and a
    migration hint so the repair loop — and RAG over the API docs — can fix
    the call site.
    """

    def __init__(self, symbol: str, hint: str) -> None:
        self.symbol = symbol
        self.hint = hint
        super().__init__(
            f"'{symbol}' was removed from the quantum SDK. Migration: {hint}"
        )


# ---------------------------------------------------------------------------
# QEC errors
# ---------------------------------------------------------------------------


class QECError(ReproError):
    """Base class for errors raised by :mod:`repro.qec`."""


class CodeConstructionError(QECError):
    """A stabilizer code could not be constructed (bad distance, topology...)."""


class DecodingError(QECError):
    """A decoder failed to produce a correction for a syndrome."""


class TopologyError(QECError):
    """The device topology cannot host the requested code.

    Raised by the QEC agent when the coupling map is not lattice-embeddable;
    reproduces the topology-specificity limitation of paper Section V-E.
    """


# ---------------------------------------------------------------------------
# LLM / agents / evaluation errors
# ---------------------------------------------------------------------------


class LLMError(ReproError):
    """Base class for errors raised by :mod:`repro.llm`."""


class TokenizationError(LLMError):
    """Input text could not be tokenized."""


class GenerationError(LLMError):
    """The model failed to produce a completion."""


class DatasetError(LLMError):
    """The fine-tuning data pipeline rejected or failed to parse the corpus."""


class RAGError(ReproError):
    """Base class for errors raised by :mod:`repro.rag`."""


class AgentError(ReproError):
    """Base class for errors raised by :mod:`repro.agents`."""


class SandboxError(AgentError):
    """Generated code escaped or crashed the execution sandbox."""


class EvaluationError(ReproError):
    """Base class for errors raised by :mod:`repro.evalsuite`."""


class GradingError(EvaluationError):
    """A grader could not compare candidate output against the reference."""
