"""Shared utilities: deterministic RNG derivation, text helpers, ASCII reporting."""

from repro.utils.rng import derive_rng, derive_seed, stable_hash
from repro.utils.tables import AsciiTable, format_histogram
from repro.utils.stats import (
    binomial_confidence_interval,
    mean,
    total_variation_distance,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "stable_hash",
    "AsciiTable",
    "format_histogram",
    "binomial_confidence_interval",
    "mean",
    "total_variation_distance",
]
