"""ASCII reporting: aligned tables and horizontal bar histograms.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output readable in a terminal without plotting libraries.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


class AsciiTable:
    """A minimal fixed-width table renderer.

    Example::

        table = AsciiTable(["Model", "QHE Score"])
        table.add_row(["Starcoder2-7B", "17.9%"])
        print(table.render())
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.headers = [str(h) for h in headers]
        self.title = title
        self._rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append(row)

    @property
    def rows(self) -> list[list[str]]:
        return [list(row) for row in self._rows]

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(row: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(rule))
        lines.append(fmt(self.headers))
        lines.append(rule)
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)


def format_histogram(
    counts: Mapping[str, float],
    width: int = 40,
    title: str | None = None,
    sort_by_key: bool = True,
) -> str:
    """Render counts as a horizontal ASCII bar chart.

    Used to print the Figure-4 style measurement histograms (noisy vs
    QEC-corrected Deutsch–Jozsa results).
    """
    if not counts:
        return "(empty histogram)"
    items = sorted(counts.items()) if sort_by_key else sorted(
        counts.items(), key=lambda kv: -kv[1]
    )
    total = sum(v for _, v in items)
    peak = max(v for _, v in items)
    key_width = max(len(k) for k, _ in items)
    lines = []
    if title:
        lines.append(title)
    for key, value in items:
        bar = "#" * int(round(width * value / peak)) if peak > 0 else ""
        share = value / total if total > 0 else 0.0
        lines.append(f"{key.rjust(key_width)} | {bar.ljust(width)} {share:7.2%}")
    return "\n".join(lines)
