"""Deterministic random-number utilities.

Every stochastic component of the reproduction (noise sampling, fault injection,
prompt generation, dataset shuffling) draws from a :class:`numpy.random.Generator`
derived from an explicit seed plus a string scope.  Deriving rather than sharing
generators keeps experiments order-independent: adding a new sub-experiment does
not perturb the random stream of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin ``hash`` is salted per-process for strings, so it cannot be
    used to derive reproducible seeds.  We hash the ``repr`` of each part with
    BLAKE2b instead.
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")  # unit separator, avoids concatenation collisions
    return int.from_bytes(digest.digest(), "little") & _MASK64


def derive_seed(base_seed: int, *scope: object) -> int:
    """Derive a new 64-bit seed from ``base_seed`` and a scope path.

    Example::

        seed = derive_seed(1234, "figure3", "scot", task_id)
    """
    return stable_hash(base_seed, *scope)


def derive_rng(base_seed: int, *scope: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from a scope path."""
    return np.random.default_rng(derive_seed(base_seed, *scope))
