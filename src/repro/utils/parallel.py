"""Order-preserving parallel mapping over picklable work chunks.

The evaluation engine and the experiment drivers fan deterministic,
seed-derived chunks of work across a pool.  The helpers here keep that
machinery in one place:

* :func:`resolve_workers` — one rule for picking the worker count: an
  explicit argument wins, then any per-config setting, then the
  ``REPRO_EVAL_WORKERS`` environment variable, then the serial default.
* :func:`parallel_map` — maps a module-level function over argument tuples,
  preserving input order.  Prefers a ``fork``-based process pool (the work is
  CPU-bound Python/numpy that holds the GIL, and forked children inherit the
  warm in-memory execution cache); falls back to threads when the platform
  lacks usable multiprocessing or the payload does not pickle, and runs
  inline for ``workers <= 1``.  Results are bit-identical across all three
  modes as long as ``fn`` is deterministic per item — which is exactly the
  contract the eval engine's seed derivation provides.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, ThreadPoolExecutor, wait

#: Environment variable consulted when no explicit worker count is given.
EVAL_WORKERS_ENV = "REPRO_EVAL_WORKERS"


def resolve_workers(
    *candidates: int | None,
    env: str = EVAL_WORKERS_ENV,
    default: int = 1,
) -> int:
    """The first explicit worker count, else the environment, else ``default``.

    Raises ``ValueError`` for a non-positive or unparsable count — a
    misconfigured fleet variable must fail loudly, not silently serialise.
    """
    for value in candidates:
        if value is not None:
            if value < 1:
                raise ValueError(f"workers must be >= 1, got {value}")
            return value
    text = os.environ.get(env, "").strip()
    if text:
        try:
            value = int(text)
        except ValueError:
            raise ValueError(f"{env} must be an integer, got {text!r}") from None
        if value < 1:
            raise ValueError(f"{env} must be >= 1, got {value}")
        return value
    return default


def _fork_pool(workers: int) -> ProcessPoolExecutor:
    """A process pool preferring ``fork`` so children inherit warm caches."""
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _picklable(fn: Callable, calls: Sequence[tuple]) -> bool:
    # Probe the function plus *every* call: one unpicklable item anywhere
    # (e.g. a task carrying a closure checker) must downgrade the whole run
    # to threads, not crash mid-pool.  This serialises the payload twice in
    # the happy path, but payloads are KB-scale task tuples — correctness of
    # the fallback wins over the microseconds.
    try:
        pickle.dumps((fn, list(calls)))
        return True
    except Exception:  # noqa: BLE001 - any pickling failure means "use threads"
        return False


def parallel_map(
    fn: Callable,
    calls: Sequence[tuple],
    workers: int,
    on_result: Callable[[int, object], None] | None = None,
    prefer: str = "process",
) -> list:
    """``[fn(*args) for args in calls]``, fanned across ``workers``.

    ``on_result(completed_count, result)`` fires as results land (in
    completion order — use it for progress, not for ordering).  The returned
    list is always in input order.  The first failing call re-raises after
    outstanding work is cancelled.
    """
    if prefer not in ("process", "thread"):
        raise ValueError(f"prefer must be 'process' or 'thread', got {prefer!r}")
    calls = list(calls)
    if workers <= 1 or len(calls) <= 1:
        results = []
        for index, args in enumerate(calls):
            result = fn(*args)
            results.append(result)
            if on_result is not None:
                on_result(index + 1, result)
        return results

    workers = min(workers, len(calls))
    use_process = prefer == "process" and _picklable(fn, calls)
    pool = None
    if use_process:
        try:
            pool = _fork_pool(workers)
        except (OSError, NotImplementedError, ValueError):
            pool = None
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-eval"
        )
    results: list = [None] * len(calls)
    try:
        futures = {pool.submit(fn, *args): i for i, args in enumerate(calls)}
        pending = set(futures)
        completed = 0
        while pending:
            done, pending = wait(pending, return_when=FIRST_EXCEPTION)
            for future in done:
                index = futures[future]
                results[index] = future.result()  # re-raises the first failure
                completed += 1
                if on_result is not None:
                    on_result(completed, results[index])
    finally:
        # cancel_futures tears queued work down fast on the failure path.
        pool.shutdown(wait=True, cancel_futures=True)
    return results
