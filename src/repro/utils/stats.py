"""Small statistics helpers used by graders and experiment reports."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; returns 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def binomial_confidence_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to attach error bars to accuracy numbers in experiment reports.  The
    Wilson interval behaves sensibly near 0 and 1, unlike the normal
    approximation.
    """
    if trials <= 0:
        return (0.0, 0.0)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def total_variation_distance(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """Total variation distance between two distributions over bitstrings.

    Both mappings are normalised before comparison so callers may pass raw
    counts.  TVD is the semantic-grading metric: a generated circuit is
    semantically correct when its output distribution is close to the
    reference distribution (paper Section III-B's "semantic testing").
    """
    p_total = sum(p.values())
    q_total = sum(q.values())
    if p_total <= 0 or q_total <= 0:
        return 1.0
    keys = set(p) | set(q)
    return 0.5 * sum(
        abs(p.get(k, 0.0) / p_total - q.get(k, 0.0) / q_total) for k in keys
    )
