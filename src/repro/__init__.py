"""Reproduction of "Enhancing LLM-based Quantum Code Generation with
Multi-Agent Optimization and Quantum Error Correction" (DAC 2025).

Subpackages
-----------
``repro.quantum``
    Gate-level quantum SDK (circuits, simulators, noise, topologies,
    transpiler) — the Qiskit substitute every other layer targets.
``repro.stabilizer``
    Aaronson-Gottesman stabilizer-tableau simulation for QEC-scale circuits.
``repro.qec``
    Stabilizer codes (repetition, rotated surface, Steane), noisy syndrome
    extraction, and MWPM / union-find / lookup decoders.
``repro.llm``
    The simulated code-generation LLM: corpus, fine-tuning pipeline, n-gram
    language model, knowledge base, fault-injection and repair.
``repro.rag``
    Retrieval-augmented generation: embeddings, vector store, chunkers, and
    the two bundled documentation corpora.
``repro.prompts``
    Prompt templates (zero-shot, CoT, SCoT, multi-pass) and the test-suite
    prompt bank.
``repro.agents``
    The paper's multi-agent framework: code generator, semantic analyzer
    (multi-pass repair loop), QEC decoder agent, and the orchestrator.
``repro.evalsuite``
    Graders (syntactic/semantic), pass@k, the paper-style test suite and the
    Qiskit-HumanEval-style benchmark bank.
``repro.experiments``
    One driver per paper table/figure; see DESIGN.md for the index.
"""

__version__ = "1.0.0"
