"""``python -m repro`` — route to the CLI."""

import sys

from repro.cli import main

sys.exit(main())
