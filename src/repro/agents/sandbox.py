"""Restricted execution of generated code.

The semantic analyzer (Agent #2) must *run* candidate programs to catch real
errors with real tracebacks — that is what the multi-pass template feeds back
into the model.  The sandbox:

* whitelists imports (``repro.quantum`` and stdlib ``math`` only — everything
  a generated quantum program legitimately needs);
* blocks filesystem/OS access by exposing a minimal builtins surface;
* captures the exception type, message and a compact traceback string.

This is *robustness* sandboxing against accident-prone generated code, not a
security boundary against adversarial code.
"""

from __future__ import annotations

import builtins
import io
import traceback
from contextlib import redirect_stdout
from dataclasses import dataclass, field

from repro.errors import SandboxError

ALLOWED_IMPORT_PREFIXES = ("repro.quantum", "repro.errors", "math")

#: Ambient seed for unseeded ``backend.run`` calls inside generated programs.
#: Sandboxed execution is deterministic-by-default so (a) the multi-pass loop
#: replays identically and (b) repeated candidates hit the execution result
#: cache instead of re-simulating.
SANDBOX_RUN_SEED = 171_717

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "bin", "bool", "dict", "divmod", "enumerate",
    "filter", "float", "format", "frozenset", "getattr", "hasattr", "hash",
    "int", "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "min", "next", "pow", "print", "range", "repr", "reversed", "round",
    "set", "setattr", "sorted", "str", "sum", "tuple", "zip", "True",
    "False", "None", "ValueError", "TypeError", "KeyError", "IndexError",
    "AttributeError", "RuntimeError", "Exception", "ZeroDivisionError",
    "StopIteration", "NameError",
)


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    if not any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in ALLOWED_IMPORT_PREFIXES
    ):
        raise SandboxError(
            f"import of '{name}' is not allowed in the execution sandbox"
        )
    return builtins.__import__(name, globals, locals, fromlist, level)


@dataclass
class ExecutionResult:
    """Outcome of running one generated program."""

    ok: bool
    namespace: dict = field(default_factory=dict)
    stdout: str = ""
    exception_type: str | None = None
    exception_message: str | None = None
    trace: str = ""
    #: Circuit simulations the program triggered (via the shared
    #: ExecutionService) and how many of those were served from the result
    #: cache — generated programs call ``backend.run`` through the shim, so
    #: repeated identical candidates cost nothing to re-execute.
    simulations: int = 0
    sim_cache_hits: int = 0

    def artifact(self, name: str):
        """Fetch a variable the generated program defined (or None)."""
        return self.namespace.get(name)


def run_code(
    code: str,
    timeout_instructions: int = 10_000_000,
    run_seed: int | None = SANDBOX_RUN_SEED,
) -> ExecutionResult:
    """Compile and execute generated code in the sandbox.

    Returns a failed :class:`ExecutionResult` (never raises) for any error in
    the candidate program, including syntax errors — the trace string is what
    the repair loop consumes.  ``run_seed`` is the ambient seed applied to
    unseeded ``backend.run`` calls the program makes (``None`` restores true
    entropy).
    """
    from repro.quantum.execution import ambient_seed, default_service

    safe_builtins = {name: getattr(builtins, name) for name in _SAFE_BUILTIN_NAMES
                     if hasattr(builtins, name)}
    safe_builtins["True"] = True
    safe_builtins["False"] = False
    safe_builtins["None"] = None
    safe_builtins["__import__"] = _restricted_import
    namespace: dict = {"__builtins__": safe_builtins, "__name__": "__generated__"}
    buffer = io.StringIO()
    before = default_service().stats()
    try:
        compiled = compile(code, "<generated>", "exec")
    except SyntaxError as exc:
        trace = f"SyntaxError: {exc.msg} (line {exc.lineno})"
        return ExecutionResult(
            ok=False,
            exception_type="SyntaxError",
            exception_message=str(exc.msg),
            trace=trace,
        )
    try:
        with redirect_stdout(buffer), ambient_seed(run_seed):
            exec(compiled, namespace)  # noqa: S102 - the sandbox is the point
    except Exception as exc:  # noqa: BLE001 - everything must be captured
        tb_lines = traceback.format_exception_only(type(exc), exc)
        frame_lines = [
            line
            for line in traceback.format_exc().splitlines()
            if "<generated>" in line
        ]
        trace = "\n".join(frame_lines[-2:] + [line.rstrip() for line in tb_lines])
        return ExecutionResult(
            ok=False,
            namespace=_strip(namespace),
            stdout=buffer.getvalue(),
            exception_type=type(exc).__name__,
            exception_message=str(exc),
            trace=trace,
            **_sim_delta(before),
        )
    return ExecutionResult(
        ok=True,
        namespace=_strip(namespace),
        stdout=buffer.getvalue(),
        **_sim_delta(before),
    )


def _sim_delta(before: dict) -> dict:
    """Execution-service activity attributable to the sandboxed program."""
    from repro.quantum.execution import default_service

    after = default_service().stats()
    return {
        "simulations": int(after.get("simulations", 0) - before.get("simulations", 0)),
        "sim_cache_hits": int(
            after.get("cache_hits", 0) - before.get("cache_hits", 0)
        ),
    }


def _strip(namespace: dict) -> dict:
    return {
        k: v
        for k, v in namespace.items()
        if k not in ("__builtins__", "__name__")
    }
