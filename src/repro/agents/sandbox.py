"""Restricted execution of generated code.

The semantic analyzer (Agent #2) must *run* candidate programs to catch real
errors with real tracebacks — that is what the multi-pass template feeds back
into the model.  The sandbox:

* whitelists imports (``repro.quantum`` and stdlib ``math`` only — everything
  a generated quantum program legitimately needs);
* blocks filesystem/OS access by exposing a minimal builtins surface;
* captures the exception type, message and a compact traceback string.

This is *robustness* sandboxing against accident-prone generated code, not a
security boundary against adversarial code.
"""

from __future__ import annotations

import builtins
import io
import sys
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import SandboxError

ALLOWED_IMPORT_PREFIXES = ("repro.quantum", "repro.errors", "math")

#: Ambient seed for unseeded ``backend.run`` calls inside generated programs.
#: Sandboxed execution is deterministic-by-default so (a) the multi-pass loop
#: replays identically and (b) repeated candidates hit the execution result
#: cache instead of re-simulating.
SANDBOX_RUN_SEED = 171_717

_SAFE_BUILTIN_NAMES = (
    "abs", "all", "any", "bin", "bool", "dict", "divmod", "enumerate",
    "filter", "float", "format", "frozenset", "getattr", "hasattr", "hash",
    "int", "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "min", "next", "pow", "print", "range", "repr", "reversed", "round",
    "set", "setattr", "sorted", "str", "sum", "tuple", "zip", "True",
    "False", "None", "ValueError", "TypeError", "KeyError", "IndexError",
    "AttributeError", "RuntimeError", "Exception", "ZeroDivisionError",
    "StopIteration", "NameError",
)


class _SandboxStdout:
    """A ``sys.stdout`` proxy that redirects per *thread*, not per process.

    ``contextlib.redirect_stdout`` swaps the process-global ``sys.stdout``,
    so two sandboxed programs running on different threads steal each other's
    output — and a racing restore can leave ``sys.stdout`` pointing at a
    dead ``StringIO`` for the rest of the process.  This proxy is installed
    once and dispatches each write to the current thread's capture buffer,
    falling through to the real stream for threads that are not capturing.

    Everything except ``write``/``flush`` is delegated to the current target
    (deliberately not an ``io.TextIOBase`` subclass, whose own ``encoding``/
    ``fileno``/``isatty`` definitions would shadow the real stream's), so a
    non-capturing thread sees the genuine stdout behaviour.
    """

    def __init__(self, fallback) -> None:
        self._fallback = fallback

    @property
    def _target(self):
        buffer = getattr(_capture, "buffer", None)
        return self._fallback if buffer is None else buffer

    def write(self, text: str) -> int:
        return self._target.write(text)

    def flush(self) -> None:
        target = self._target
        if hasattr(target, "flush"):
            target.flush()

    def __getattr__(self, name):
        return getattr(self._target, name)


_capture = threading.local()
_install_lock = threading.Lock()


@contextmanager
def _capture_stdout(buffer: io.StringIO):
    """Capture this thread's stdout into ``buffer`` (other threads unaffected).

    Lazily wraps whatever ``sys.stdout`` currently is (so it composes with
    pytest's capture and prior redirects) and never unwraps — the proxy is
    transparent for non-capturing threads.
    """
    with _install_lock:
        if not isinstance(sys.stdout, _SandboxStdout):
            sys.stdout = _SandboxStdout(sys.stdout)
    previous = getattr(_capture, "buffer", None)
    _capture.buffer = buffer
    try:
        yield
    finally:
        _capture.buffer = previous


def _restricted_import(name, globals=None, locals=None, fromlist=(), level=0):
    if not any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in ALLOWED_IMPORT_PREFIXES
    ):
        raise SandboxError(
            f"import of '{name}' is not allowed in the execution sandbox"
        )
    return builtins.__import__(name, globals, locals, fromlist, level)


@dataclass
class ExecutionResult:
    """Outcome of running one generated program."""

    ok: bool
    namespace: dict = field(default_factory=dict)
    stdout: str = ""
    exception_type: str | None = None
    exception_message: str | None = None
    trace: str = ""
    #: Circuit simulations the program triggered (via the shared
    #: ExecutionService) and how many of those were served from the result
    #: cache — generated programs call ``backend.run`` through the shim, so
    #: repeated identical candidates cost nothing to re-execute.  Counted by
    #: an attributable stats scope, so the numbers are exact even while other
    #: threads drive the same service.
    simulations: int = 0
    sim_cache_hits: int = 0

    def artifact(self, name: str):
        """Fetch a variable the generated program defined (or None)."""
        return self.namespace.get(name)


def run_code(
    code: str,
    timeout_instructions: int = 10_000_000,
    run_seed: int | None = SANDBOX_RUN_SEED,
) -> ExecutionResult:
    """Compile and execute generated code in the sandbox.

    Returns a failed :class:`ExecutionResult` (never raises) for any error in
    the candidate program, including syntax errors — the trace string is what
    the repair loop consumes.  ``run_seed`` is the ambient seed applied to
    unseeded ``backend.run`` calls the program makes (``None`` restores true
    entropy).
    """
    from repro.quantum.execution import ambient_seed, stats_scope

    safe_builtins = {name: getattr(builtins, name) for name in _SAFE_BUILTIN_NAMES
                     if hasattr(builtins, name)}
    safe_builtins["True"] = True
    safe_builtins["False"] = False
    safe_builtins["None"] = None
    safe_builtins["__import__"] = _restricted_import
    namespace: dict = {"__builtins__": safe_builtins, "__name__": "__generated__"}
    buffer = io.StringIO()
    try:
        compiled = compile(code, "<generated>", "exec")
    except SyntaxError as exc:
        trace = f"SyntaxError: {exc.msg} (line {exc.lineno})"
        return ExecutionResult(
            ok=False,
            exception_type="SyntaxError",
            exception_message=str(exc.msg),
            trace=trace,
        )
    try:
        with _capture_stdout(buffer), ambient_seed(run_seed), \
                stats_scope("sandbox") as scope:
            exec(compiled, namespace)  # noqa: S102 - the sandbox is the point
    except Exception as exc:  # noqa: BLE001 - everything must be captured
        tb_lines = traceback.format_exception_only(type(exc), exc)
        frame_lines = [
            line
            for line in traceback.format_exc().splitlines()
            if "<generated>" in line
        ]
        trace = "\n".join(frame_lines[-2:] + [line.rstrip() for line in tb_lines])
        return ExecutionResult(
            ok=False,
            namespace=_strip(namespace),
            stdout=buffer.getvalue(),
            exception_type=type(exc).__name__,
            exception_message=str(exc),
            trace=trace,
            **_sim_counts(scope),
        )
    return ExecutionResult(
        ok=True,
        namespace=_strip(namespace),
        stdout=buffer.getvalue(),
        **_sim_counts(scope),
    )


def _sim_counts(scope) -> dict:
    """Execution-service activity attributable to the sandboxed program."""
    counts = scope.as_dict()
    return {
        "simulations": counts["simulations"],
        "sim_cache_hits": counts["cache_hits"],
    }


def _strip(namespace: dict) -> dict:
    return {
        k: v
        for k, v in namespace.items()
        if k not in ("__builtins__", "__name__")
    }
