"""Agent #2 — the semantic analyzer with multi-pass refinement.

Responsibilities (paper Sections III-A and IV-A):

* execute candidate code in the sandbox and classify the outcome
  (syntactic failure with trace / runs clean);
* when a reference behaviour is available, grade semantics by comparing
  measured distributions (or statevectors);
* drive the iterative multi-pass loop: prompt + code + trace -> repair ->
  re-execute, up to ``max_passes`` times, recording every pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import Agent, AgentMessage
from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.sandbox import ExecutionResult, run_code
from repro.llm.model import Completion
from repro.prompts.templates import render_multipass, render_semantic_feedback
from repro.quantum.analysis import analyze_circuit
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import Statevector
from repro.utils.stats import total_variation_distance

#: Max TVD between candidate and reference distributions to count as correct.
SEMANTIC_TVD_THRESHOLD = 0.10
#: Shots used when re-simulating candidate circuits for grading.
GRADING_SHOTS = 4096
GRADING_SEED = 20_25


@dataclass
class AnalysisReport:
    """Grading outcome for one candidate program."""

    syntactic_ok: bool
    semantic_ok: bool | None  # None when no reference was available
    execution: ExecutionResult
    tvd: float | None = None
    detail: str = ""
    #: The program was rejected by static analysis (``QA1xx``) — either the
    #: execution service's strict pre-flight raised ``ValidationError``, or
    #: the produced ``qc`` artifact carries analyzer errors.  Distinct from a
    #: runtime failure: the code is *ill-formed*, not wrong, and grading it
    #: burned zero simulations.
    static_error: bool = False

    @property
    def passed(self) -> bool:
        return self.syntactic_ok and (self.semantic_ok is not False)


@dataclass
class RefinementResult:
    """Outcome of the multi-pass loop."""

    final_code: str
    final_completion: Completion
    report: AnalysisReport
    passes_used: int
    pass_reports: list[AnalysisReport] = field(default_factory=list)
    repair_log: list[str] = field(default_factory=list)


class SemanticAnalyzerAgent(Agent):
    """Sandboxed execution, semantic grading, and the repair loop."""

    name = "semantic_analyzer"

    def __init__(
        self,
        tvd_threshold: float = SEMANTIC_TVD_THRESHOLD,
        shots: int = GRADING_SHOTS,
        fidelity_threshold: float = 0.99,
    ) -> None:
        self.tvd_threshold = tvd_threshold
        self.shots = shots
        self.fidelity_threshold = fidelity_threshold

    # -- grading ---------------------------------------------------------------

    def analyze(
        self,
        code: str,
        reference_code: str | None = None,
        checker=None,
    ) -> AnalysisReport:
        """Run the candidate; grade against a reference program if given.

        ``checker`` overrides distribution comparison with a custom
        predicate on the candidate namespace (used by I/O-style tasks).
        """
        execution = run_code(code)
        if not execution.ok:
            return AnalysisReport(
                syntactic_ok=False,
                semantic_ok=None,
                execution=execution,
                detail=execution.trace,
                # The service's strict pre-flight rejected the circuit before
                # any simulation: the program is statically ill-formed.
                static_error=execution.exception_type == "ValidationError",
            )
        static = self._static_reject(execution)
        if static is not None:
            return static
        if checker is not None:
            try:
                ok = bool(checker(execution.namespace))
            except Exception as exc:  # noqa: BLE001 - checker bugs = failure
                return AnalysisReport(
                    syntactic_ok=True,
                    semantic_ok=False,
                    execution=execution,
                    detail=f"checker raised: {exc}",
                )
            return AnalysisReport(
                syntactic_ok=True,
                semantic_ok=ok,
                execution=execution,
                detail="custom checker",
            )
        if reference_code is None:
            return AnalysisReport(
                syntactic_ok=True, semantic_ok=None, execution=execution
            )
        reference = run_code(reference_code)
        if not reference.ok:
            raise RuntimeError(
                f"reference program failed to execute: {reference.trace}"
            )
        return self._compare(execution, reference)

    def _compare(
        self, candidate: ExecutionResult, reference: ExecutionResult
    ) -> AnalysisReport:
        """Grade candidate behaviour against the reference program.

        Statevector tasks (reference produces a pure state, no measurement)
        are graded by fidelity — probability distributions are blind to
        relative phases, which is exactly what distinguishes e.g. a QFT with
        and without its bit-reversal swaps.  Sampling tasks are graded by
        total variation distance between output distributions.
        """
        ref_state = self._statevector(reference)
        if ref_state is not None:
            cand_state = self._statevector(candidate)
            if cand_state is None:
                return AnalysisReport(
                    syntactic_ok=True,
                    semantic_ok=False,
                    execution=candidate,
                    detail="task expects a statevector; candidate produced none",
                )
            if cand_state.num_qubits != ref_state.num_qubits:
                return AnalysisReport(
                    syntactic_ok=True,
                    semantic_ok=False,
                    execution=candidate,
                    detail=(
                        f"state has {cand_state.num_qubits} qubits, expected "
                        f"{ref_state.num_qubits}"
                    ),
                )
            fidelity = ref_state.fidelity(cand_state)
            return AnalysisReport(
                syntactic_ok=True,
                semantic_ok=fidelity >= self.fidelity_threshold,
                execution=candidate,
                tvd=1.0 - fidelity,
                detail=f"fidelity={fidelity:.4f} (threshold {self.fidelity_threshold})",
            )
        cand_dist = self._distribution(candidate)
        ref_dist = self._distribution(reference)
        if cand_dist is None or ref_dist is None:
            ok = cand_dist is not None or ref_dist is None
            return AnalysisReport(
                syntactic_ok=True,
                semantic_ok=ok and cand_dist == ref_dist,
                execution=candidate,
                detail="no comparable artifact (qc/state/counts) found",
            )
        tvd = total_variation_distance(cand_dist, ref_dist)
        return AnalysisReport(
            syntactic_ok=True,
            semantic_ok=tvd <= self.tvd_threshold,
            execution=candidate,
            tvd=tvd,
            detail=f"TVD={tvd:.4f} (threshold {self.tvd_threshold})",
        )

    def _static_reject(self, execution: ExecutionResult) -> AnalysisReport | None:
        """Statically reject an otherwise-clean run whose ``qc`` is defective.

        A generated program may build an ill-formed circuit without ever
        executing it (the sandbox only runs the code; grading simulates the
        artifact).  Analyzing the artifact catches ``QA1xx`` defects here and
        skips grading entirely — zero simulations — so the evalsuite can
        report ``static_error`` even with ``validate="off"`` services.
        """
        qc = execution.artifact("qc")
        if not isinstance(qc, QuantumCircuit):
            return None
        analysis = analyze_circuit(qc)
        if analysis.ok:
            return None
        rendered = "; ".join(d.render() for d in analysis.errors)
        return AnalysisReport(
            syntactic_ok=False,
            semantic_ok=None,
            execution=execution,
            detail=f"static analysis rejected the circuit: {rendered}",
            static_error=True,
        )

    def _statevector(self, execution: ExecutionResult) -> Statevector | None:
        """A pure-state artifact, when the program produced one."""
        state = execution.artifact("state")
        if isinstance(state, Statevector):
            return state
        qc = execution.artifact("qc")
        if isinstance(qc, QuantumCircuit) and not qc.has_measurements():
            try:
                return Statevector.from_circuit(qc)
            except Exception:  # noqa: BLE001 - unsimulable = no artifact
                return None
        return None

    def _distribution(self, execution: ExecutionResult) -> dict[str, float] | None:
        """Extract a comparable outcome distribution from a namespace.

        Preference order: re-simulate ``qc`` deterministically (immune to the
        candidate having used different shots), else ``state`` probabilities,
        else the program's own ``counts``.
        """
        qc = execution.artifact("qc")
        if isinstance(qc, QuantumCircuit):
            dist = self._simulate(qc)
            if dist is not None:
                return dist
        state = execution.artifact("state")
        if isinstance(state, Statevector):
            return state.probabilities_dict()
        counts = execution.artifact("counts")
        if isinstance(counts, dict) and counts:
            total = sum(counts.values())
            return {str(k): v / total for k, v in counts.items()}
        return None

    def _simulate(self, qc: QuantumCircuit) -> dict[str, float] | None:
        # Grading runs through the shared ExecutionService with a fixed seed:
        # re-grading an unchanged candidate (every multi-pass iteration) and
        # re-simulating the reference program (every eval sample) become
        # cache hits instead of fresh simulations.
        from repro.quantum.execution import execute

        try:
            if not qc.has_measurements():
                return Statevector.from_circuit(qc).probabilities_dict()
            result = execute(
                qc, backend="local_simulator", shots=self.shots, seed=GRADING_SEED
            )
            counts = result.get_counts()
        except Exception:  # noqa: BLE001 - unsimulable circuit = no artifact
            return None
        total = sum(counts.values())
        return {k: v / total for k, v in counts.items()}

    # -- the multi-pass loop --------------------------------------------------------

    def refine(
        self,
        codegen: CodeGenerationAgent,
        request: GenerationRequest,
        completion: Completion,
        reference_code: str | None = None,
        checker=None,
        max_passes: int = 3,
        semantic_feedback: bool = False,
    ) -> RefinementResult:
        """Iteratively repair a completion (paper Section IV-A).

        ``max_passes`` counts total inference passes including the first
        generation, matching the paper's "triple passes" = generate + 2
        repairs... the paper is ambiguous; here pass 1 is the initial
        generation and each subsequent pass is one repair attempt.
        """
        report = self.analyze(completion.code, reference_code, checker)
        pass_reports = [report]
        repair_log: list[str] = []
        passes = 1
        while passes < max_passes and not report.passed:
            if not report.syntactic_ok:
                # Statically-rejected artifacts have no traceback; feed the
                # analyzer's coded diagnostics to the repair pass instead.
                trace = report.execution.trace or report.detail
                rendered = render_multipass(
                    request.prompt_text, completion.code, trace
                )
                repair_log.append(rendered.text[:200])
                completion = codegen.repair(request, completion, trace)
            elif semantic_feedback and report.semantic_ok is False:
                rendered = render_semantic_feedback(
                    request.prompt_text, completion.code, report.detail
                )
                repair_log.append(rendered.text[:200])
                completion = codegen.repair(
                    request, completion, report.detail, semantic_feedback=True
                )
            else:
                break
            report = self.analyze(completion.code, reference_code, checker)
            pass_reports.append(report)
            passes += 1
        return RefinementResult(
            final_code=completion.code,
            final_completion=completion,
            report=report,
            passes_used=passes,
            pass_reports=pass_reports,
            repair_log=repair_log,
        )

    # -- message protocol --------------------------------------------------------------

    def handle(self, message: AgentMessage) -> AgentMessage:
        report = self.analyze(
            message.content,
            reference_code=message.metadata.get("reference_code"),
            checker=message.metadata.get("checker"),
        )
        return AgentMessage(
            sender=self.name,
            kind="analysis",
            content=report.detail or ("ok" if report.passed else "failed"),
            metadata={"report": report},
        )
