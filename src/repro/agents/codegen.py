"""Agent #1 — the code generation agent.

Wraps the (simulated) fine-tuned StarCoder with the inference-time machinery
of paper Section IV: prompt-style rendering (plain / CoT / SCoT via the
scaffold generator) and optional RAG augmentation.  Produces code plus full
provenance for the analyzers downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.base import Agent, AgentMessage
from repro.llm.model import Completion, SimulatedCodeLLM
from repro.prompts.generator import ScaffoldGenerator
from repro.prompts.templates import RenderedPrompt, render_plain
from repro.rag.retriever import Retriever
from repro.utils.rng import derive_rng


@dataclass
class GenerationRequest:
    """What the orchestrator hands the codegen agent."""

    prompt_text: str
    params: dict
    family_hint: str | None = None
    seed: int = 0
    attempt: int = 0


class CodeGenerationAgent(Agent):
    """Prompt -> (rendered prompt, RAG context) -> model -> completion."""

    name = "codegen"

    def __init__(
        self,
        model: SimulatedCodeLLM,
        retriever: Retriever | None = None,
        scaffolds: ScaffoldGenerator | None = None,
    ) -> None:
        self.model = model
        self.retriever = retriever
        self.scaffolds = scaffolds or ScaffoldGenerator()

    # -- main API ---------------------------------------------------------------

    def generate(self, request: GenerationRequest) -> tuple[Completion, RenderedPrompt]:
        """Produce one completion with provenance."""
        rng = derive_rng(request.seed, "codegen", request.prompt_text, request.attempt)
        rendered = self._render(request)
        retrieved = None
        if self.retriever is not None:
            retrieved = self.retriever.retrieve_context(request.prompt_text)
        completion = self.model.generate(
            request.prompt_text,
            rng,
            params=request.params,
            family_hint=request.family_hint,
            retrieved_docs=retrieved,
        )
        return completion, rendered

    def repair(
        self,
        request: GenerationRequest,
        completion: Completion,
        trace: str,
        semantic_feedback: bool = False,
    ) -> Completion:
        """One multi-pass repair attempt."""
        rng = derive_rng(
            request.seed, "repair", request.prompt_text, request.attempt, trace[:80]
        )
        return self.model.repair(
            completion,
            trace,
            rng,
            params=request.params,
            semantic_feedback=semantic_feedback,
        )

    def _render(self, request: GenerationRequest) -> RenderedPrompt:
        style = self.model.config.prompt_style
        if style == "plain":
            return render_plain(request.prompt_text)
        family = request.family_hint
        if family is None:
            family, _ = self.model.knowledge.match(request.prompt_text)
        if family is None:
            return render_plain(request.prompt_text)
        return self.scaffolds.render(request.prompt_text, family, style)

    # -- message protocol ----------------------------------------------------------

    def handle(self, message: AgentMessage) -> AgentMessage:
        request = GenerationRequest(
            prompt_text=message.content,
            params=message.metadata.get("params", {}),
            family_hint=message.metadata.get("family"),
            seed=message.metadata.get("seed", 0),
            attempt=message.metadata.get("attempt", 0),
        )
        completion, rendered = self.generate(request)
        return AgentMessage(
            sender=self.name,
            kind="code",
            content=completion.code,
            metadata={
                "completion": completion,
                "rendered_prompt": rendered.text,
                "style": rendered.style,
            },
        )
