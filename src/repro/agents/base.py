"""Agent protocol: message types shared by the multi-agent framework.

The orchestrator (Fig. 1 of the paper) moves :class:`AgentMessage` objects
between three agents; each agent consumes a message and returns a new one.
Keeping the protocol explicit makes the pipeline inspectable: every
experiment report can show the full message log of a generation episode.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass
class AgentMessage:
    """One step in an agent conversation."""

    sender: str
    kind: str  # 'prompt' | 'code' | 'analysis' | 'repair_request' | 'qec' ...
    content: str
    metadata: dict = field(default_factory=dict)

    def brief(self) -> str:
        head = self.content.strip().splitlines()[0] if self.content.strip() else ""
        return f"[{self.sender}/{self.kind}] {head[:80]}"


class Agent(abc.ABC):
    """Base class: every agent has a name and handles messages."""

    name: str = "agent"

    @abc.abstractmethod
    def handle(self, message: AgentMessage) -> AgentMessage:
        """Consume a message, return the response message."""


@dataclass
class EpisodeLog:
    """The transcript of one orchestrated generation episode."""

    messages: list[AgentMessage] = field(default_factory=list)

    def record(self, message: AgentMessage) -> AgentMessage:
        self.messages.append(message)
        return message

    def render(self) -> str:
        return "\n".join(m.brief() for m in self.messages)
