"""The orchestrator — Figure 1 of the paper, wired end to end.

``Orchestrator.run_episode`` takes a developer prompt and drives:

    codegen agent  ->  semantic analyzer (multi-pass)  ->  QEC agent

returning a :class:`QuantumProgramArtifact` with the final code, grading
report, optional QEC application, and the complete message transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import AgentMessage, EpisodeLog
from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.qec_agent import QECAgent, QECApplication
from repro.agents.semantic import (
    AnalysisReport,
    RefinementResult,
    SemanticAnalyzerAgent,
)
from repro.errors import TopologyError
from repro.llm.model import SimulatedCodeLLM, make_model
from repro.prompts.generator import ScaffoldGenerator
from repro.quantum.backend import Backend
from repro.quantum.execution import resolve_backend
from repro.rag.retriever import Retriever


@dataclass
class QuantumProgramArtifact:
    """The orchestrator's final product for one developer request."""

    prompt: str
    code: str
    report: AnalysisReport
    refinement: RefinementResult
    qec: QECApplication | None
    log: EpisodeLog = field(default_factory=EpisodeLog)

    @property
    def accepted(self) -> bool:
        return self.report.passed


class Orchestrator:
    """Wires the three agents behind one ``run_episode`` call."""

    def __init__(
        self,
        model: SimulatedCodeLLM | None = None,
        retriever: Retriever | None = None,
        qec_agent: QECAgent | None = None,
        max_passes: int = 3,
        semantic_feedback: bool = False,
    ) -> None:
        model = model or make_model(fine_tuned=True)
        if retriever is None and (model.config.rag_docs or model.config.rag_guides):
            datasets = tuple(
                name
                for name, enabled in (
                    ("docs", model.config.rag_docs),
                    ("guides", model.config.rag_guides),
                )
                if enabled
            )
            retriever = Retriever(datasets=datasets)
        self.codegen = CodeGenerationAgent(
            model, retriever=retriever, scaffolds=ScaffoldGenerator()
        )
        self.analyzer = SemanticAnalyzerAgent()
        self.qec_agent = qec_agent or QECAgent()
        self.max_passes = max_passes
        self.semantic_feedback = semantic_feedback

    def run_episode(
        self,
        prompt: str,
        params: dict | None = None,
        family_hint: str | None = None,
        reference_code: str | None = None,
        checker=None,
        seed: int = 0,
        target_backend: Backend | str | None = None,
        apply_qec: bool = False,
    ) -> QuantumProgramArtifact:
        """Full pipeline for one request.

        ``target_backend`` accepts a :class:`Backend` instance or a registry
        name/alias (``"fake_brisbane"``, ``"brisbane"``, ...).  ``apply_qec``
        requires a target with a coupling map and a noise model; QEC failures
        on unsupported topologies are recorded in the log, not raised (the
        developer still gets their program).
        """
        if isinstance(target_backend, str):
            target_backend = resolve_backend(target_backend)
        log = EpisodeLog()
        request = GenerationRequest(
            prompt_text=prompt, params=params or {}, family_hint=family_hint,
            seed=seed,
        )
        log.record(AgentMessage("developer", "prompt", prompt))

        completion, rendered = self.codegen.generate(request)
        log.record(
            AgentMessage(
                self.codegen.name,
                "code",
                completion.code,
                metadata={"style": rendered.style, "variant": completion.variant},
            )
        )

        refinement = self.analyzer.refine(
            self.codegen,
            request,
            completion,
            reference_code=reference_code,
            checker=checker,
            max_passes=self.max_passes,
            semantic_feedback=self.semantic_feedback,
        )
        log.record(
            AgentMessage(
                self.analyzer.name,
                "analysis",
                refinement.report.detail or ("pass" if refinement.report.passed else "fail"),
                metadata={"passes": refinement.passes_used},
            )
        )

        qec_application = None
        if apply_qec and target_backend is not None:
            try:
                qec_application = self.qec_agent.apply(target_backend)
                log.record(
                    AgentMessage(
                        self.qec_agent.name,
                        "qec",
                        f"suppression {qec_application.suppression_factor:.4f}",
                    )
                )
            except TopologyError as exc:
                log.record(AgentMessage(self.qec_agent.name, "qec", f"skipped: {exc}"))

        return QuantumProgramArtifact(
            prompt=prompt,
            code=refinement.final_code,
            report=refinement.report,
            refinement=refinement,
            qec=qec_application,
            log=log,
        )
