"""The multi-agent framework: codegen, semantic analyzer, QEC agent, orchestrator."""

from repro.agents.base import Agent, AgentMessage, EpisodeLog
from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.orchestrator import Orchestrator, QuantumProgramArtifact
from repro.agents.qec_agent import QECAgent, QECApplication
from repro.agents.sandbox import ExecutionResult, run_code
from repro.agents.semantic import (
    AnalysisReport,
    RefinementResult,
    SemanticAnalyzerAgent,
)

__all__ = [
    "Agent",
    "AgentMessage",
    "AnalysisReport",
    "CodeGenerationAgent",
    "EpisodeLog",
    "ExecutionResult",
    "GenerationRequest",
    "Orchestrator",
    "QECAgent",
    "QECApplication",
    "QuantumProgramArtifact",
    "RefinementResult",
    "SemanticAnalyzerAgent",
    "run_code",
]
