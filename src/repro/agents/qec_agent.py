"""Agent #3 — the QEC decoder generation agent.

Paper Section III-A / IV-B: after code generation, this agent consumes the
target device topology, generates a surface-code decoder for it, and attaches
error correction to the program run.  "This is applied after the code has
been generated and does not alter its semantics, only applying a fixed set of
operations on the physical qubits immediately before measurement."

Mechanically (mirroring the paper's own Figure-4 methodology, which could not
apply corrections on IBM hardware either and *simulated* the corrected run):

1. generate the decoder for the device topology (or raise
   :class:`~repro.errors.TopologyError` for non-lattice devices unless the
   simulated-lattice fallback is enabled);
2. measure the decoder's logical-error suppression factor on a memory
   experiment at the device's physical error rate;
3. re-run the circuit on the device noise model *scaled by that factor* —
   "corresponding to the new error rate after QEC".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agents.base import Agent, AgentMessage
from repro.errors import TopologyError
from repro.qec.decoder_gen import GeneratedDecoder, generate_decoder
from repro.qec.experiments import qec_suppression_factor
from repro.quantum.backend import Backend, NoisySimulator
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import default_service, resolve_backend


@dataclass
class QECApplication:
    """Everything the QEC agent produced for one program."""

    decoder: GeneratedDecoder
    suppression_factor: float
    physical_error_rate: float
    corrected_backend: Backend
    distance: int

    @property
    def lifetime_gain(self) -> float:
        """Average-qubit-lifetime extension factor (paper Section IV-B)."""
        return 1.0 / max(self.suppression_factor, 1e-9)


class QECAgent(Agent):
    """Generates decoders and produces QEC-corrected execution backends."""

    name = "qec"

    def __init__(
        self,
        distance: int = 3,
        decoder: str = "mwpm",
        rounds: int | None = None,
        shots: int = 200,
        seed: int = 7,
    ) -> None:
        self.distance = distance
        self.decoder_kind = decoder
        self.rounds = rounds
        self.shots = shots
        self.seed = seed

    # -- main API -----------------------------------------------------------------

    def apply(
        self,
        backend: Backend | str,
        allow_simulated_lattice: bool = True,
    ) -> QECApplication:
        """Generate a decoder for the backend's device and derive the
        QEC-corrected backend.

        ``backend`` may be a :class:`Backend` instance or a registry name
        (``"fake_brisbane"``, an alias, ...) resolved via
        :func:`repro.quantum.execution.get_backend`.

        Raises:
            TopologyError: when the device cannot host the surface code and
                the simulated-lattice fallback is disabled.
        """
        backend = resolve_backend(backend)
        if backend.coupling_map is None:
            raise TopologyError(
                f"backend '{backend.name}' has no coupling map; the QEC agent "
                "needs a physical device topology"
            )
        if backend.noise_model is None or backend.noise_model.is_trivial:
            raise TopologyError(
                f"backend '{backend.name}' is noiseless; QEC has nothing to "
                "correct"
            )
        generated = generate_decoder(
            backend.coupling_map,
            distance=self.distance,
            decoder=self.decoder_kind,
            allow_simulated_lattice=allow_simulated_lattice,
        )
        p_phys = self._physical_error_rate(backend)
        factor = qec_suppression_factor(
            generated.code,
            generated.decoder_x,
            p_data=p_phys,
            rounds=self.rounds,
            shots=self.shots,
            seed=self.seed,
        )
        corrected = NoisySimulator(
            noise_model=backend.noise_model.scaled(factor),
            coupling_map=backend.coupling_map,
            name=f"{backend.name}+qec(d={self.distance})",
            num_qubits=backend.num_qubits,
        )
        corrected.basis_gates = backend.basis_gates
        return QECApplication(
            decoder=generated,
            suppression_factor=factor,
            physical_error_rate=p_phys,
            corrected_backend=corrected,
            distance=self.distance,
        )

    def run_with_qec(
        self,
        circuit: QuantumCircuit,
        backend: Backend | str,
        shots: int = 1024,
        seed: int | None = None,
    ) -> tuple[dict[str, int], QECApplication]:
        """Convenience wrapper: apply QEC then run on the corrected backend."""
        application = self.apply(backend)
        job = default_service().submit(
            circuit, backend=application.corrected_backend, shots=shots, seed=seed
        )
        return job.result().get_counts(), application

    def _physical_error_rate(self, backend: Backend) -> float:
        """Representative physical rate: the 2-qubit gate depolarizing p."""
        model = backend.noise_model
        assert model is not None
        channel = model.channel_for("cx", (0, 1))
        if channel is not None:
            return channel.error_probability
        channel = model.channel_for("x", (0,))
        if channel is not None:
            return channel.error_probability
        readout = model.readout_for(0)
        if readout is not None:
            return max(readout.p1_given_0, readout.p0_given_1)
        raise TopologyError("could not infer a physical error rate from the model")

    # -- message protocol ---------------------------------------------------------------

    def handle(self, message: AgentMessage) -> AgentMessage:
        backend = message.metadata.get("backend")
        if backend is None:
            raise TopologyError("QEC agent message needs metadata['backend']")
        application = self.apply(backend)
        return AgentMessage(
            sender=self.name,
            kind="qec",
            content=(
                f"decoder for {application.decoder.device_name}: suppression "
                f"{application.suppression_factor:.4f}, lifetime x"
                f"{application.lifetime_gain:.1f}"
            ),
            metadata={"application": application},
        )
