"""The algorithm knowledge base of the simulated code LLM.

Each :class:`AlgorithmSpec` describes one task family the model can be asked
about: prompt-matching keywords, the difficulty tier it belongs to in the
paper's test suite (Section III-B: 47% basic / 24% intermediate / 29%
advanced), a Chain-of-Thought *outline* (the reasoning steps a CoT prompt
walks through) and a Structured-CoT *skeleton* (the program-shape pseudocode
of Li et al. [28]).

Whether the model "knows" a family — and therefore emits the correct
structure instead of plausible nonsense — is decided at generation time from
the model configuration (scale, fine-tuning, RAG, CoT) by
:mod:`repro.llm.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LLMError

TIERS = ("basic", "intermediate", "advanced")


@dataclass(frozen=True)
class AlgorithmSpec:
    """Static knowledge about one task family."""

    family: str
    tier: str
    keywords: tuple[str, ...]
    outline: tuple[str, ...]
    skeleton: tuple[str, ...]
    description: str

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise LLMError(f"unknown tier '{self.tier}' for family '{self.family}'")


_SPECS: list[AlgorithmSpec] = [
    # -- basic tier ---------------------------------------------------------
    AlgorithmSpec(
        family="superposition",
        tier="basic",
        keywords=("superposition", "hadamard", "single qubit", "equal probability"),
        outline=(
            "A Hadamard gate maps |0> to an equal superposition of |0> and |1>.",
            "Create a one-qubit circuit with one classical bit.",
            "Apply H to qubit 0, measure it, and run the circuit on a simulator.",
        ),
        skeleton=(
            "qc = QuantumCircuit(1, 1)",
            "qc.h(0)",
            "qc.measure(0, 0)",
            "counts = backend.run(qc).result().get_counts()",
        ),
        description="single-qubit superposition with measurement",
    ),
    AlgorithmSpec(
        family="bell",
        tier="basic",
        keywords=("bell", "entangle", "epr", "two qubits", "phi+"),
        outline=(
            "A Bell pair needs a Hadamard on one qubit followed by a CNOT.",
            "Measure both qubits; outcomes are perfectly correlated (00 or 11).",
        ),
        skeleton=(
            "qc = QuantumCircuit(2, 2)",
            "qc.h(0)",
            "qc.cx(0, 1)",
            "qc.measure([0, 1], [0, 1])",
            "counts = backend.run(qc).result().get_counts()",
        ),
        description="Bell-pair preparation and measurement",
    ),
    AlgorithmSpec(
        family="ghz",
        tier="basic",
        keywords=("ghz", "greenberger", "multi-qubit entangle", "cat state"),
        outline=(
            "A GHZ state generalises the Bell pair: H on the first qubit,",
            "then a chain of CNOTs copying the superposition down the register.",
            "All-zero and all-one outcomes each appear half the time.",
        ),
        skeleton=(
            "qc = QuantumCircuit(n, n)",
            "qc.h(0)",
            "for q in range(n - 1): qc.cx(q, q + 1)",
            "qc.measure(all, all)",
            "counts = backend.run(qc).result().get_counts()",
        ),
        description="n-qubit GHZ state",
    ),
    AlgorithmSpec(
        family="basis_prep",
        tier="basic",
        keywords=("basis state", "prepare", "bitstring", "computational basis"),
        outline=(
            "To prepare a computational basis state, apply X to every qubit",
            "whose target bit is 1, then measure all qubits.",
        ),
        skeleton=(
            "qc = QuantumCircuit(n, n)",
            "for q where bit is 1: qc.x(q)",
            "qc.measure(all, all)",
            "counts = backend.run(qc).result().get_counts()",
        ),
        description="prepare and verify a computational basis state",
    ),
    AlgorithmSpec(
        family="rotation",
        tier="basic",
        keywords=("rotation", "rotate", "ry", "angle", "bloch"),
        outline=(
            "RY(theta) rotates |0> so that P(1) = sin^2(theta/2).",
            "Apply the rotation, measure, and read the 1-probability.",
        ),
        skeleton=(
            "qc = QuantumCircuit(1, 1)",
            "qc.ry(theta, 0)",
            "qc.measure(0, 0)",
            "counts = backend.run(qc).result().get_counts()",
        ),
        description="parameterised single-qubit rotation",
    ),
    AlgorithmSpec(
        family="statevector",
        tier="basic",
        keywords=("statevector", "amplitudes", "state vector", "without measuring"),
        outline=(
            "Build the circuit without measurements,",
            "then compute Statevector.from_circuit to inspect amplitudes.",
        ),
        skeleton=(
            "qc = QuantumCircuit(n)",
            "apply gates",
            "state = Statevector.from_circuit(qc)",
        ),
        description="statevector inspection of a small circuit",
    ),
    AlgorithmSpec(
        family="device_run",
        tier="basic",
        keywords=("device", "hardware", "brisbane", "real quantum computer", "backend"),
        outline=(
            "Device backends enforce a coupling map and a native basis,",
            "so the circuit must be transpiled for the backend before running.",
            "Then submit with backend.run and fetch counts from the job result.",
        ),
        skeleton=(
            "backend = FakeBrisbane()",
            "qc = build circuit",
            "tqc = transpile(qc, backend=backend)",
            "counts = backend.run(tqc).result().get_counts()",
        ),
        description="run a circuit on a (fake) IBM device",
    ),
    AlgorithmSpec(
        family="qasm_io",
        tier="basic",
        keywords=("qasm", "openqasm", "serialize", "export"),
        outline=(
            "Serialise the circuit with circuit_to_qasm,",
            "then parse it back with qasm_to_circuit to verify the round trip.",
        ),
        skeleton=(
            "qc = build circuit",
            "text = circuit_to_qasm(qc)",
            "qc2 = qasm_to_circuit(text)",
        ),
        description="OpenQASM export / import round trip",
    ),
    # -- intermediate tier -----------------------------------------------------
    AlgorithmSpec(
        family="qft",
        tier="intermediate",
        keywords=("fourier", "qft", "phase gradient"),
        outline=(
            "The QFT applies, from the top qubit down, a Hadamard followed by",
            "controlled phase rotations pi/2^k from each lower qubit,",
            "and finally swaps to restore bit order.",
        ),
        skeleton=(
            "for t in reversed(range(n)):",
            "    qc.h(t)",
            "    for c in reversed(range(t)): qc.cp(pi / 2**(t-c), c, t)",
            "for q in range(n // 2): qc.swap(q, n-1-q)",
        ),
        description="quantum Fourier transform",
    ),
    AlgorithmSpec(
        family="deutsch_jozsa",
        tier="intermediate",
        keywords=("deutsch", "jozsa", "constant or balanced", "oracle"),
        outline=(
            "Prepare the ancilla in |-> (X then H) and the inputs in |+>.",
            "Apply the oracle; phase kickback marks balanced functions.",
            "Undo the input Hadamards and measure: all zeros means constant.",
        ),
        skeleton=(
            "qc = QuantumCircuit(n + 1, n)",
            "qc.x(n); for q in range(n + 1): qc.h(q)",
            "apply oracle",
            "for q in range(n): qc.h(q)",
            "qc.measure(inputs, bits)",
        ),
        description="Deutsch-Jozsa algorithm",
    ),
    AlgorithmSpec(
        family="bernstein_vazirani",
        tier="intermediate",
        keywords=("bernstein", "vazirani", "secret string", "hidden bitstring"),
        outline=(
            "Prepare the ancilla in |-> and inputs in |+>.",
            "The oracle is a CNOT from every secret-1 input qubit to the ancilla.",
            "Final Hadamards collapse the state onto the secret string.",
        ),
        skeleton=(
            "qc = QuantumCircuit(n + 1, n)",
            "qc.x(n); for q in range(n + 1): qc.h(q)",
            "for q where secret bit is 1: qc.cx(q, n)",
            "for q in range(n): qc.h(q)",
            "qc.measure(inputs, bits)",
        ),
        description="Bernstein-Vazirani secret recovery",
    ),
    AlgorithmSpec(
        family="grover",
        tier="intermediate",
        keywords=("grover", "search", "marked", "amplitude amplification"),
        outline=(
            "Start in the uniform superposition with Hadamards everywhere.",
            "Each Grover iteration applies the phase oracle for the marked",
            "state, then the diffuser (H, X, multi-controlled Z, X, H).",
            "About pi/4 * sqrt(N/M) iterations maximise the hit probability.",
        ),
        skeleton=(
            "for q in range(n): qc.h(q)",
            "repeat iterations times:",
            "    apply oracle(marked)",
            "    apply diffuser",
            "qc.measure(all, all)",
        ),
        description="Grover search",
    ),
    # -- advanced tier --------------------------------------------------------------
    AlgorithmSpec(
        family="teleportation",
        tier="advanced",
        keywords=("teleport", "alice", "bob", "bell measurement"),
        outline=(
            "Share a Bell pair between qubits 1 and 2.",
            "Bell-measure the message qubit 0 with qubit 1 into two bits.",
            "Apply X and Z on qubit 2 conditioned on those bits;",
            "qubit 2 now holds the original state.",
        ),
        skeleton=(
            "qc.u(theta, phi, lam, 0)  # message",
            "qc.h(1); qc.cx(1, 2)      # Bell pair",
            "qc.cx(0, 1); qc.h(0)",
            "qc.measure(0, 0); qc.measure(1, 1)",
            "x on 2 if bit 1; z on 2 if bit 0",
            "qc.measure(2, 2)",
        ),
        description="quantum teleportation with conditioned corrections",
    ),
    AlgorithmSpec(
        family="superdense",
        tier="advanced",
        keywords=("superdense", "dense coding", "two classical bits"),
        outline=(
            "Share a Bell pair; the sender encodes two bits by applying",
            "X for the high bit and Z for the low bit to their half.",
            "The receiver undoes the entanglement (CNOT, H) and measures",
            "both qubits to read the two bits.",
        ),
        skeleton=(
            "qc.h(0); qc.cx(0, 1)",
            "if high bit: qc.x(0)",
            "if low bit: qc.z(0)",
            "qc.cx(0, 1); qc.h(0)",
            "qc.measure([0, 1], [0, 1])",
        ),
        description="superdense coding",
    ),
    AlgorithmSpec(
        family="phase_estimation",
        tier="advanced",
        keywords=("phase estimation", "qpe", "eigenvalue", "estimate the phase"),
        outline=(
            "Prepare the eigenstate |1> on the target qubit.",
            "Put counting qubits in |+>; apply controlled-P(2 pi phase 2^k)",
            "from counting qubit k.",
            "Apply the inverse QFT on the counting register and measure;",
            "the result approximates phase * 2^n.",
        ),
        skeleton=(
            "qc.x(target)",
            "for q in range(n): qc.h(q)",
            "for q in range(n): qc.cp(2*pi*phase*2**q, q, target)",
            "apply inverse QFT on counting qubits",
            "qc.measure(counting, bits)",
        ),
        description="quantum phase estimation",
    ),
    AlgorithmSpec(
        family="quantum_walk",
        tier="advanced",
        keywords=("quantum walk", "walker", "cycle", "coin"),
        outline=(
            "A discrete-time walk on a 4-cycle uses 2 position qubits and a",
            "coin qubit.  Each step: Hadamard the coin, then increment the",
            "position when the coin is 1 and decrement it when the coin is 0,",
            "using controlled adders (CCX + CX).",
        ),
        skeleton=(
            "for each step:",
            "    qc.h(coin)",
            "    qc.ccx(coin, p0, p1); qc.cx(coin, p0)   # +1",
            "    qc.x(coin); qc.cx(coin, p0); qc.ccx(coin, p0, p1); qc.x(coin)  # -1",
            "qc.measure(position, bits)",
        ),
        description="discrete-time quantum walk on a cycle",
    ),
    AlgorithmSpec(
        family="annealing",
        tier="advanced",
        keywords=("anneal", "ising", "transverse field", "adiabatic"),
        outline=(
            "Start in the driver ground state |+...+> with Hadamards.",
            "Trotterise H(s) = (1-s) X-driver + s ZZ-problem:",
            "each slice applies RZZ couplings then RX fields, ramping s from",
            "0 to 1 across the schedule, then measure.",
        ),
        skeleton=(
            "for q in range(n): qc.h(q)",
            "for k in range(steps):",
            "    s = (k + 1) / steps",
            "    for q in range(n-1): qc.rzz(2*s*J*dt, q, q+1)",
            "    for q in range(n): qc.rx(2*(1-s)*h*dt, q)",
            "qc.measure(all, all)",
        ),
        description="Trotterised quantum annealing schedule",
    ),
]


class KnowledgeBase:
    """Lookup and prompt-matching over the algorithm specs."""

    def __init__(self, specs: list[AlgorithmSpec] | None = None) -> None:
        self._specs = {spec.family: spec for spec in (specs or _SPECS)}

    def families(self) -> list[str]:
        return sorted(self._specs)

    def get(self, family: str) -> AlgorithmSpec:
        spec = self._specs.get(family)
        if spec is None:
            raise LLMError(
                f"unknown task family '{family}'; known: {self.families()}"
            )
        return spec

    def by_tier(self, tier: str) -> list[AlgorithmSpec]:
        return [s for s in self._specs.values() if s.tier == tier]

    def match(self, prompt_text: str) -> tuple[str | None, float]:
        """Match a prompt to a family by keyword scoring.

        Returns (family, score); family is None when nothing matches.  The
        score is the fraction of the best family's keywords found in the
        prompt.
        """
        text = prompt_text.lower()
        best_family, best_score = None, 0.0
        for spec in self._specs.values():
            hits = sum(1 for kw in spec.keywords if kw in text)
            if hits == 0:
                continue
            # Weight by hit count, lightly normalised by keyword list length.
            score = hits + 0.1 * hits / len(spec.keywords)
            if score > best_score:
                best_family, best_score = spec.family, score
        return best_family, best_score


DEFAULT_KNOWLEDGE = KnowledgeBase()
