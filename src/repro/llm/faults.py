"""Fault modes and calibrated rates for the simulated code LLM.

This module is the **single calibration point** of the reproduction (see
DESIGN.md §5).  Everything else is mechanism: the model really emits the
faulty code text, the sandbox really raises, the repair loop really edits the
code.  The rates below set how often each error mode fires, conditioned on
the model configuration, and are calibrated so the *aggregate* accuracies
reproduce the paper's operating points:

================================  ===========================================
Paper number                      Where it comes from here
================================  ===========================================
Fig. 3 base pass@1  ~18%          KNOWLEDGE['3b', False] x SYNTAX_BASE x SEM
Fig. 3 fine-tuned   ~28%          KNOWLEDGE['3b', True] (+10% from training)
Fig. 3 RAG          ~32% (+4%)    DOCS_SUPPRESSION on legacy/deprecated only
Fig. 3 CoT          ~60% (+32%)   COT_KNOWLEDGE overrides, SEM_PARAMS down
Fig. 3 SCoT         ~68% (+40%)   SCOT_KNOWLEDGE, fewer syntax slips
§V-D multi-pass     ~34% @ 3      REPAIR_SUCCESS: low for legacy/deprecated
                                  (stale knowledge regenerates stale calls)
Table I (QHE)       17.9..46.5    the 'qhe' profile: syntax-heavy task mix
§V-C split          45.7/33.8,    1 - syntax_total vs full-product accuracy
                    46.4/41.4
================================  ===========================================

Rates are per-profile because the two benchmarks exercise different failure
surfaces: the paper's own suite is semantics-heavy (advanced algorithms),
Qiskit HumanEval is library-syntax-heavy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LLMError

# ---------------------------------------------------------------------------
# Model configuration
# ---------------------------------------------------------------------------

SCALES = ("3b", "7b", "20b")
PROMPT_STYLES = ("plain", "cot", "scot")
PROFILES = ("suite", "qhe")


@dataclass(frozen=True)
class ModelConfig:
    """Which model variant and inference-time techniques are active."""

    scale: str = "3b"
    fine_tuned: bool = False
    rag_docs: bool = False
    rag_guides: bool = False
    prompt_style: str = "plain"
    temperature: float = 0.2
    profile: str = "suite"

    def __post_init__(self) -> None:
        if self.scale not in SCALES:
            raise LLMError(f"unknown scale '{self.scale}'")
        if self.prompt_style not in PROMPT_STYLES:
            raise LLMError(f"unknown prompt style '{self.prompt_style}'")
        if self.profile not in PROFILES:
            raise LLMError(f"unknown profile '{self.profile}'")
        if self.temperature <= 0:
            raise LLMError("temperature must be positive")

    def label(self) -> str:
        parts = [self.scale.upper()]
        if self.fine_tuned:
            parts.append("QK")
        if self.rag_docs or self.rag_guides:
            parts.append("RAG")
        if self.prompt_style != "plain":
            parts.append(self.prompt_style.upper())
        return "-".join(parts)


# ---------------------------------------------------------------------------
# Knowledge rates: P(model knows the algorithm structure) per tier
# ---------------------------------------------------------------------------

KNOWLEDGE: dict[tuple[str, bool], dict[str, float]] = {
    ("3b", False): {"basic": 0.60, "intermediate": 0.28, "advanced": 0.05},
    ("3b", True): {"basic": 0.70, "intermediate": 0.36, "advanced": 0.10},
    ("7b", False): {"basic": 0.62, "intermediate": 0.30, "advanced": 0.07},
    ("7b", True): {"basic": 0.80, "intermediate": 0.45, "advanced": 0.12},
    ("20b", False): {"basic": 0.70, "intermediate": 0.38, "advanced": 0.10},
    ("20b", True): {"basic": 0.88, "intermediate": 0.60, "advanced": 0.25},
}

#: QHE tasks per tier are library-usage flavoured, i.e. much closer to the
#: fine-tuning corpus than the suite's algorithm-design tasks — so knowledge
#: rates are higher, especially for fine-tuned models.
KNOWLEDGE_QHE: dict[tuple[str, bool], dict[str, float]] = {
    ("3b", False): {"basic": 0.50, "intermediate": 0.30, "advanced": 0.10},
    ("3b", True): {"basic": 0.85, "intermediate": 0.60, "advanced": 0.25},
    ("7b", False): {"basic": 0.78, "intermediate": 0.48, "advanced": 0.15},
    ("7b", True): {"basic": 0.90, "intermediate": 0.70, "advanced": 0.35},
    ("20b", False): {"basic": 0.75, "intermediate": 0.50, "advanced": 0.20},
    ("20b", True): {"basic": 0.97, "intermediate": 0.85, "advanced": 0.55},
}

#: CoT reasoning scaffolds supply the algorithm structure directly; the model
#: only has to follow them (paper: "allowed us to more directly inform the
#: model's decision-making process").
COT_KNOWLEDGE = {
    "suite": {"basic": 0.94, "intermediate": 0.84, "advanced": 0.76},
    "qhe": {"basic": 0.98, "intermediate": 0.95, "advanced": 0.90},
}
SCOT_KNOWLEDGE = {
    "suite": {"basic": 0.98, "intermediate": 0.94, "advanced": 0.88},
    "qhe": {"basic": 0.98, "intermediate": 0.93, "advanced": 0.86},
}

#: Some generated CoT prompts are themselves wrong (paper Section V-E); a bad
#: scaffold forces a structurally wrong program.
COT_IMPERFECTION = 0.06
SCOT_IMPERFECTION = 0.03

#: Algorithm-guide retrieval adds little (paper: the guide dataset was
#: "rather limited").
GUIDES_KNOWLEDGE_BOOST = 0.02

# ---------------------------------------------------------------------------
# Syntactic fault rates per mode
# ---------------------------------------------------------------------------

SYNTAX_MODES = (
    "legacy_api",        # execute()/Aer/BasicAer usage
    "deprecated_method", # qc.cu1 / qc.u3 / qc.toffoli / qc.iden
    "hallucinated_api",  # qc.hadamard and friends
    "bad_index",         # out-of-range qubit
    "python_syntax",     # unbalanced parenthesis
    "missing_transpile", # device job without transpiling (device tasks only)
)

#: mode -> rate, per (profile, fine_tuned).  Only *applicable* modes count
#: toward a program's total exposure (``missing_transpile`` exists solely for
#: device-run tasks), so these rates are meaningful per-mode probabilities.
SYNTAX_RATES: dict[tuple[str, bool], dict[str, float]] = {
    ("suite", False): {
        "legacy_api": 0.21,
        "deprecated_method": 0.15,
        "hallucinated_api": 0.075,
        "bad_index": 0.045,
        "python_syntax": 0.045,
        "missing_transpile": 0.30,
    },
    ("suite", True): {
        "legacy_api": 0.104,
        "deprecated_method": 0.078,
        "hallucinated_api": 0.033,
        "bad_index": 0.020,
        "python_syntax": 0.020,
        "missing_transpile": 0.156,
    },
    # Qiskit HumanEval: library-syntax-heavy prompts, so the syntax failure
    # surface is much larger (paper: only ~46% of QHE generations even run);
    # note fine-tuning barely reduces it — the stale corpus *teaches* the
    # removed API (the paper's central data-quality complaint).
    ("qhe", False): {
        "legacy_api": 0.32,
        "deprecated_method": 0.22,
        "hallucinated_api": 0.13,
        "bad_index": 0.073,
        "python_syntax": 0.073,
        "missing_transpile": 0.38,
    },
    ("qhe", True): {
        "legacy_api": 0.34,
        "deprecated_method": 0.24,
        "hallucinated_api": 0.145,
        "bad_index": 0.073,
        "python_syntax": 0.073,
        "missing_transpile": 0.36,
    },
}

#: P(suppress a legacy/deprecated emission | relevant doc chunk retrieved).
#: The paper found documentation RAG only partially effective ("the
#: documentation available ... is not up to date").
DOCS_SUPPRESSION = {"suite": 0.30, "qhe": 0.25}

#: Structured prompt styles reduce careless syntax slips; the effect is much
#: stronger on QHE's short library-usage tasks (paper V-C: CoT slightly
#: improved QHE syntactic accuracy over RAG).
STYLE_SYNTAX_FACTOR = {
    ("suite", "plain"): 1.0,
    ("suite", "cot"): 1.0,
    ("suite", "scot"): 0.85,
    ("qhe", "plain"): 1.0,
    ("qhe", "cot"): 0.81,
    ("qhe", "scot"): 0.78,
}

#: Larger models slip less on syntax (Granite-20B's QHE score is mostly a
#: syntax-accuracy story).
SCALE_SYNTAX_FACTOR = {"3b": 1.0, "7b": 1.0, "20b": 0.62}

# ---------------------------------------------------------------------------
# Semantic fault rates (given the model knows the structure)
# ---------------------------------------------------------------------------

#: P(minor parameter slip) by prompt style.
SEM_PARAMS = {"plain": 0.22, "cot": 0.08, "scot": 0.05}
#: Additional structural-slip rate even when knowledge is present.
SEM_STRUCTURE = {"plain": 0.04, "cot": 0.02, "scot": 0.015}

#: QHE profile: semantically simpler tasks.
SEM_PARAMS_QHE = {"plain": 0.10, "cot": 0.03, "scot": 0.03}
SEM_STRUCTURE_QHE = {"plain": 0.03, "cot": 0.01, "scot": 0.01}

#: Sampling-temperature sensitivity: fault rates scale linearly around the
#: reference temperature 0.2 (clamped to [0.5, 2.0]).
TEMPERATURE_SLOPE = 0.8
REFERENCE_TEMPERATURE = 0.2

# ---------------------------------------------------------------------------
# Repair model (multi-pass inference, paper Section IV-A / V-D)
# ---------------------------------------------------------------------------

#: P(a repair attempt fixes the fault | informative trace).  Legacy and
#: deprecated-API repairs fail often because the model's stale knowledge
#: regenerates the same removed call — the paper's stated explanation for
#: multi-pass saturation.
REPAIR_SUCCESS = {
    "legacy_api": 0.30,
    "deprecated_method": 0.30,
    "hallucinated_api": 0.80,
    "bad_index": 0.70,
    "python_syntax": 0.85,
    "missing_transpile": 0.75,
}

#: P(a repair pass introduces a fresh syntax fault) — editing is not free.
REPAIR_REGRESSION = 0.05

#: P(a semantic-feedback repair fixes a wrong structure).  Low: without new
#: knowledge the model cannot invent the right algorithm (saturation).
SEM_REPAIR_SUCCESS = {"plain": 0.12, "cot": 0.25, "scot": 0.25}


# ---------------------------------------------------------------------------
# Rate resolution
# ---------------------------------------------------------------------------


@dataclass
class ResolvedRates:
    """All probabilities for one (config, tier, family) generation."""

    p_know: float
    syntax: dict[str, float]
    p_sem_structure: float
    p_sem_params: float
    p_scaffold_wrong: float

    def temperature_scaled(self, temperature: float) -> "ResolvedRates":
        factor = 1.0 + TEMPERATURE_SLOPE * (temperature - REFERENCE_TEMPERATURE)
        factor = float(np.clip(factor, 0.5, 2.0))
        return ResolvedRates(
            p_know=self.p_know,
            syntax={k: min(0.95, v * factor) for k, v in self.syntax.items()},
            p_sem_structure=min(0.95, self.p_sem_structure * factor),
            p_sem_params=min(0.95, self.p_sem_params * factor),
            p_scaffold_wrong=self.p_scaffold_wrong,
        )


def resolve_rates(config: ModelConfig, tier: str) -> ResolvedRates:
    """Combine the calibration tables for one generation."""
    table = KNOWLEDGE_QHE if config.profile == "qhe" else KNOWLEDGE
    know_table = table.get((config.scale, config.fine_tuned))
    if know_table is None:
        raise LLMError(f"no knowledge table for {config.scale}/{config.fine_tuned}")
    p_know = know_table[tier]
    scaffold_wrong = 0.0
    if config.prompt_style == "cot":
        p_know = max(p_know, COT_KNOWLEDGE[config.profile][tier])
        scaffold_wrong = COT_IMPERFECTION
    elif config.prompt_style == "scot":
        p_know = max(p_know, SCOT_KNOWLEDGE[config.profile][tier])
        scaffold_wrong = SCOT_IMPERFECTION
    if config.rag_guides:
        p_know = min(0.98, p_know + GUIDES_KNOWLEDGE_BOOST)

    syntax = dict(SYNTAX_RATES[(config.profile, config.fine_tuned)])
    style_factor = STYLE_SYNTAX_FACTOR[(config.profile, config.prompt_style)]
    scale_factor = SCALE_SYNTAX_FACTOR[config.scale]
    factor = style_factor * scale_factor
    if factor != 1.0:
        syntax = {k: v * factor for k, v in syntax.items()}

    if config.profile == "qhe":
        sem_params = SEM_PARAMS_QHE[config.prompt_style]
        sem_structure = SEM_STRUCTURE_QHE[config.prompt_style]
    else:
        sem_params = SEM_PARAMS[config.prompt_style]
        sem_structure = SEM_STRUCTURE[config.prompt_style]

    rates = ResolvedRates(
        p_know=p_know,
        syntax=syntax,
        p_sem_structure=sem_structure,
        p_sem_params=sem_params,
        p_scaffold_wrong=scaffold_wrong,
    )
    return rates.temperature_scaled(config.temperature)


# ---------------------------------------------------------------------------
# Fault injection: text transforms over generated code
# ---------------------------------------------------------------------------


@dataclass
class InjectionResult:
    code: str
    applied: bool
    detail: str = ""


def inject_legacy_api(code: str, rng: np.random.Generator) -> InjectionResult:
    """Rewrite the modern run idiom into the removed execute()/Aer API."""
    if "backend.run(" not in code or "LocalSimulator" not in code:
        return InjectionResult(code, False)
    new = code.replace(
        "from repro.quantum import QuantumCircuit, LocalSimulator",
        "from repro.quantum import QuantumCircuit, execute, Aer",
    )
    new = new.replace(
        "backend = LocalSimulator()",
        'backend = Aer.get_backend("qasm_simulator")',
    )
    new = re.sub(
        r"backend\.run\((\w+)([^)]*)\)\.result\(\)\.get_counts\(\)",
        r"execute(\1, backend\2).get_counts()",
        new,
    )
    return InjectionResult(new, new != code, "execute/Aer idiom")


_DEPRECATION_SWAPS = [
    ("qc.cp(", "qc.cu1("),
    ("qc.u(", "qc.u3("),
    ("qc.ccx(", "qc.toffoli("),
    ("qc.cx(", "qc.cnot("),
    ("qc.id(", "qc.iden("),
]


def inject_deprecated_method(code: str, rng: np.random.Generator) -> InjectionResult:
    applicable = [(a, b) for a, b in _DEPRECATION_SWAPS if a in code]
    if not applicable:
        return InjectionResult(code, False)
    old, new_call = applicable[int(rng.integers(len(applicable)))]
    return InjectionResult(
        code.replace(old, new_call, 1), True, f"{old} -> {new_call}"
    )


def inject_hallucinated_api(code: str, rng: np.random.Generator) -> InjectionResult:
    swaps = [("qc.h(", "qc.hadamard("), ("qc.measure(", "qc.measure_qubit(")]
    applicable = [(a, b) for a, b in swaps if a in code]
    if not applicable:
        return InjectionResult(code, False)
    old, new_call = applicable[int(rng.integers(len(applicable)))]
    return InjectionResult(code.replace(old, new_call, 1), True, f"{old} -> {new_call}")


def inject_bad_index(code: str, rng: np.random.Generator) -> InjectionResult:
    match = re.search(r"qc = QuantumCircuit\((\d+)", code)
    if match is None:
        return InjectionResult(code, False)
    lines = code.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("qc.measure"):
            lines.insert(i, "qc.x(99)")
            return InjectionResult("\n".join(lines) + "\n", True, "qc.x(99)")
    return InjectionResult(code, False)


def inject_python_syntax(code: str, rng: np.random.Generator) -> InjectionResult:
    lines = code.splitlines()
    candidates = [
        i for i, line in enumerate(lines) if line.rstrip().endswith("))")
    ]
    if not candidates:
        candidates = [
            i
            for i, line in enumerate(lines)
            if line.rstrip().endswith(")") and "(" in line
        ]
    if not candidates:
        return InjectionResult(code, False)
    idx = candidates[int(rng.integers(len(candidates)))]
    lines[idx] = lines[idx].rstrip()[:-1]
    return InjectionResult("\n".join(lines) + "\n", True, f"paren dropped line {idx+1}")


def inject_missing_transpile(code: str, rng: np.random.Generator) -> InjectionResult:
    if "transpile(qc, backend=backend)" not in code:
        return InjectionResult(code, False)
    new = code.replace("tqc = transpile(qc, backend=backend)", "tqc = qc")
    return InjectionResult(new, True, "transpile removed")


INJECTORS = {
    "legacy_api": inject_legacy_api,
    "deprecated_method": inject_deprecated_method,
    "hallucinated_api": inject_hallucinated_api,
    "bad_index": inject_bad_index,
    "python_syntax": inject_python_syntax,
    "missing_transpile": inject_missing_transpile,
}


#: Symbols each mode would introduce — used to check whether retrieved doc
#: chunks cover the migration (the mechanical RAG suppression trigger).
MODE_SYMBOLS = {
    "legacy_api": ("execute", "Aer"),
    "deprecated_method": ("cu1", "u3", "toffoli", "cnot", "iden"),
}

#: Current-API idioms whose presence in retrieved context also suppresses the
#: corresponding legacy emission: a model shown `backend.run(...)` in context
#: copies that instead of the stale `execute(...)` it learned.
MODE_CURRENT_HINTS = {
    "legacy_api": ("backend.run(", "LocalSimulator"),
    "deprecated_method": ("qc.cp(", "qc.u(", "qc.ccx(", "qc.cx(", "qc.id("),
}


# ---------------------------------------------------------------------------
# Repairs: trace -> code edit
# ---------------------------------------------------------------------------

_REPAIR_METHOD_MAP = {
    "cu1": "cp",
    "u1": "p",
    "u3": "u",
    "toffoli": "ccx",
    "cnot": "cx",
    "iden": "id",
    "fredkin": "cswap",
}


def repair_code(code: str, trace: str) -> tuple[str, str | None]:
    """Attempt a trace-driven repair; returns (new_code, repaired_mode).

    ``repaired_mode`` is None when the trace is not recognised — the caller
    then falls back to regeneration.
    """
    if "QuantumDeprecationError" in trace:
        method = re.search(r"'QuantumCircuit\.(\w+)' was removed", trace)
        if method and method.group(1) in _REPAIR_METHOD_MAP:
            old, new = method.group(1), _REPAIR_METHOD_MAP[method.group(1)]
            return code.replace(f"qc.{old}(", f"qc.{new}("), "deprecated_method"
        if "'execute'" in trace or "'Aer" in trace or "execute(" in code:
            new = code.replace(
                "from repro.quantum import QuantumCircuit, execute, Aer",
                "from repro.quantum import QuantumCircuit, LocalSimulator",
            )
            new = new.replace(
                'backend = Aer.get_backend("qasm_simulator")',
                "backend = LocalSimulator()",
            )
            new = re.sub(
                r"execute\((\w+), backend([^)]*)\)\.get_counts\(\)",
                r"backend.run(\1\2).result().get_counts()",
                new,
            )
            return new, "legacy_api"
        return code, None
    if "AttributeError" in trace:
        halluc = re.search(r"no attribute '(\w+)'", trace)
        if halluc:
            name = halluc.group(1)
            fixes = {"hadamard": "h", "measure_qubit": "measure"}
            if name in fixes:
                return code.replace(f"qc.{name}(", f"qc.{fixes[name]}("), "hallucinated_api"
        return code, None
    if "CircuitError" in trace and "out of range" in trace:
        lines = [l for l in code.splitlines() if "qc.x(99)" not in l]
        return "\n".join(lines) + "\n", "bad_index"
    if "SyntaxError" in trace:
        match = re.search(r"line (\d+)", trace)
        if match:
            lineno = int(match.group(1)) - 1
            lines = code.splitlines()
            if 0 <= lineno < len(lines):
                opens = lines[lineno].count("(") - lines[lineno].count(")")
                if opens > 0:
                    lines[lineno] = lines[lineno] + ")" * opens
                    return "\n".join(lines) + "\n", "python_syntax"
        return code, None
    if "BackendError" in trace and "transpile" in trace:
        new = code.replace("tqc = qc", "tqc = transpile(qc, backend=backend)")
        if "transpile" not in new.split("\n")[0] and "import" in new:
            new = new.replace(
                "from repro.quantum import QuantumCircuit, FakeBrisbane",
                "from repro.quantum import QuantumCircuit, FakeBrisbane, transpile",
            )
        return new, "missing_transpile"
    return code, None
