"""The fine-tuning data pipeline and training loop (paper Sections III-B, V-A).

Stages, matching the paper exactly:

1. **filter** — open licences only; repositories updated after February 2024;
   files containing a quantum-SDK import.
2. **notebook splitting** — ``.ipynb`` files become code/markdown *tiles*
   delimited by sentinel tokens.
3. **upsampling** — 3M tokens upsampled to ~9M with official sources given
   higher priority.
4. **chunking + FIM** — token chunks with Fill-in-the-Middle transformations
   applied at a configurable rate (the paper's optimum was 0.1).
5. **training** — 1500 steps, batch size 4, linear warm-up (100 steps) to
   3e-4 then cosine decay; each step consumes a batch of chunks into the
   n-gram LM.  The learning-rate schedule is recorded per step so reports can
   plot it; for a count-based LM the schedule does not alter the counts, but
   the *step budget* determines how much of the corpus is seen, which is the
   real data-scarcity lever the paper turns.

The output :class:`FineTuneReport` carries the knowledge signals the
simulated LLM consumes: corpus token count, legacy-API vocabulary share, and
per-algorithm coverage.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from datetime import date

import numpy as np

from repro.errors import DatasetError
from repro.llm.corpus import (
    FILTER_DATE,
    LEGACY_MARKERS,
    OPEN_LICENSES,
    CorpusFile,
    is_official,
)
from repro.llm.ngram import NgramModel
from repro.llm.tokenizer import (
    CODE_TILE,
    END_OF_TEXT,
    FIM_MIDDLE,
    FIM_PREFIX,
    FIM_SUFFIX,
    MARKDOWN_TILE,
    count_tokens,
    tokenize,
)
from repro.utils.rng import derive_rng

QUANTUM_IMPORT_MARKERS = ("from repro.quantum", "import repro.quantum")

#: Algorithm families whose presence in the corpus is tracked as coverage.
COVERAGE_KEYWORDS = {
    "bell": ("bell",),
    "ghz": ("ghz",),
    "qft": ("qft",),
    "grover": ("grover", "diffuser"),
    "teleportation": ("teleport",),
    "device_run": ("transpile", "FakeBrisbane"),
    "statevector": ("Statevector",),
}


@dataclass
class DatasetConfig:
    min_date: date = FILTER_DATE
    licenses: tuple[str, ...] = OPEN_LICENSES
    chunk_tokens: int = 128
    fim_rate: float = 0.1
    #: The paper upsampled 3M tokens to 9M; the bundled synthetic corpus is
    #: ~10k tokens, so the default target keeps the same 3x upsampling spirit
    #: at laptop scale.  Raise it to paper scale if you enjoy waiting.
    upsample_target_tokens: int = 60_000
    official_upsample_weight: int = 3


@dataclass
class TrainingConfig:
    steps: int = 1500
    batch_size: int = 4
    peak_lr: float = 3e-4
    warmup_steps: int = 100
    seed: int = 0


@dataclass
class FineTuneReport:
    """Everything downstream consumers need to know about the trained model."""

    files_scraped: int
    files_kept: int
    raw_tokens: int
    upsampled_tokens: int
    chunks: int
    fim_chunks: int
    steps_run: int
    lr_schedule: list[float] = field(default_factory=list)
    perplexity_before: float = 0.0
    perplexity_after: float = 0.0
    legacy_share: float = 0.0
    coverage: dict[str, bool] = field(default_factory=dict)

    def summary(self) -> str:
        kept = f"{self.files_kept}/{self.files_scraped}"
        return (
            f"fine-tune: kept {kept} files, {self.raw_tokens} tokens "
            f"(upsampled {self.upsampled_tokens}), {self.chunks} chunks "
            f"({self.fim_chunks} FIM), ppl {self.perplexity_before:.1f} -> "
            f"{self.perplexity_after:.1f}, legacy share {self.legacy_share:.4f}"
        )


# ---------------------------------------------------------------------------
# Stage 1: filtering
# ---------------------------------------------------------------------------


def filter_files(
    files: list[CorpusFile], config: DatasetConfig | None = None
) -> list[CorpusFile]:
    """Licence + date + quantum-import filter."""
    config = config or DatasetConfig()
    kept = []
    for file in files:
        if file.license not in config.licenses:
            continue
        if file.last_updated < config.min_date:
            continue
        if not any(marker in file.content for marker in QUANTUM_IMPORT_MARKERS):
            continue
        kept.append(file)
    return kept


# ---------------------------------------------------------------------------
# Stage 2: notebook splitting
# ---------------------------------------------------------------------------


def split_notebook(content: str) -> str:
    """Flatten an .ipynb JSON document into sentinel-delimited tiles."""
    try:
        nb = json.loads(content)
        cells = nb["cells"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise DatasetError(f"malformed notebook: {exc}") from exc
    tiles = []
    for cell in cells:
        source = "".join(cell.get("source", []))
        if not source.strip():
            continue
        sentinel = MARKDOWN_TILE if cell.get("cell_type") == "markdown" else CODE_TILE
        tiles.append(f"{sentinel}\n{source}")
    return "\n".join(tiles)


def extract_text(file: CorpusFile) -> str:
    """File content normalised to trainable text."""
    if file.is_notebook:
        return split_notebook(file.content)
    return file.content


# ---------------------------------------------------------------------------
# Stage 3: upsampling
# ---------------------------------------------------------------------------


def upsample(
    files: list[CorpusFile], config: DatasetConfig, rng: np.random.Generator
) -> list[str]:
    """Repeat documents (official sources weighted) up to the token target."""
    texts = [(extract_text(f), is_official(f)) for f in files]
    if not texts:
        raise DatasetError("no files survived filtering; cannot build dataset")
    weights = np.array(
        [config.official_upsample_weight if official else 1 for _, official in texts],
        dtype=float,
    )
    weights /= weights.sum()
    sizes = [count_tokens(t) for t, _ in texts]
    mean_size = max(1, int(np.mean(sizes)))
    draws = max(len(texts), config.upsample_target_tokens // mean_size)
    indices = rng.choice(len(texts), size=draws, p=weights)
    return [texts[i][0] for i in indices]


# ---------------------------------------------------------------------------
# Stage 4: chunking + FIM
# ---------------------------------------------------------------------------


def chunk_tokens(text: str, chunk_size: int) -> list[list[str]]:
    tokens = tokenize(text)
    return [tokens[i : i + chunk_size] for i in range(0, len(tokens), chunk_size)]


def apply_fim(tokens: list[str], rng: np.random.Generator) -> list[str]:
    """PSM-format Fill-in-the-Middle rearrangement of a chunk."""
    if len(tokens) < 6:
        return list(tokens)
    cut1, cut2 = sorted(rng.choice(range(1, len(tokens) - 1), size=2, replace=False))
    prefix, middle, suffix = tokens[:cut1], tokens[cut1:cut2], tokens[cut2:]
    return (
        [FIM_PREFIX] + prefix + [FIM_SUFFIX] + suffix + [FIM_MIDDLE] + middle
        + [END_OF_TEXT]
    )


def build_chunks(
    texts: list[str], config: DatasetConfig, rng: np.random.Generator
) -> tuple[list[list[str]], int]:
    """Chunk all texts; FIM-transform a ``fim_rate`` fraction."""
    chunks: list[list[str]] = []
    fim_count = 0
    for text in texts:
        for chunk in chunk_tokens(text, config.chunk_tokens):
            if rng.random() < config.fim_rate:
                chunk = apply_fim(chunk, rng)
                fim_count += 1
            chunks.append(chunk)
    return chunks, fim_count


# ---------------------------------------------------------------------------
# Stage 5: training
# ---------------------------------------------------------------------------


def lr_at_step(step: int, config: TrainingConfig) -> float:
    """Linear warm-up then cosine decay (paper Section V-A)."""
    if step < config.warmup_steps:
        return config.peak_lr * (step + 1) / config.warmup_steps
    remaining = (step - config.warmup_steps) / max(
        1, config.steps - config.warmup_steps
    )
    return config.peak_lr * 0.5 * (1.0 + math.cos(math.pi * remaining))


def fine_tune(
    files: list[CorpusFile],
    dataset_config: DatasetConfig | None = None,
    training_config: TrainingConfig | None = None,
    model: NgramModel | None = None,
    holdout: list[str] | None = None,
) -> tuple[NgramModel, FineTuneReport]:
    """Run the full pipeline; returns the trained LM and its report."""
    dataset_config = dataset_config or DatasetConfig()
    training_config = training_config or TrainingConfig()
    model = model or NgramModel(order=3)
    rng = derive_rng(training_config.seed, "finetune")

    kept = filter_files(files, dataset_config)
    texts = [extract_text(f) for f in kept]
    raw_tokens = sum(count_tokens(t) for t in texts)
    upsampled = upsample(kept, dataset_config, rng)
    chunks, fim_count = build_chunks(upsampled, dataset_config, rng)
    rng.shuffle(chunks)

    holdout = holdout or texts[: max(1, len(texts) // 10)]
    ppl_before = float(np.mean([model.perplexity(t) for t in holdout]))

    lr_schedule = []
    consumed = 0
    for step in range(training_config.steps):
        lr_schedule.append(lr_at_step(step, training_config))
        batch = chunks[consumed : consumed + training_config.batch_size]
        if not batch:
            break
        for chunk in batch:
            model.train([" ".join(chunk)])
        consumed += training_config.batch_size

    ppl_after = float(np.mean([model.perplexity(t) for t in holdout]))
    coverage = {
        family: any(
            any(kw.lower() in text.lower() for kw in keywords) for text in texts
        )
        for family, keywords in COVERAGE_KEYWORDS.items()
    }
    report = FineTuneReport(
        files_scraped=len(files),
        files_kept=len(kept),
        raw_tokens=raw_tokens,
        upsampled_tokens=sum(count_tokens(t) for t in upsampled),
        chunks=len(chunks),
        fim_chunks=fim_count,
        steps_run=min(training_config.steps, math.ceil(len(chunks) / training_config.batch_size)),
        lr_schedule=lr_schedule,
        perplexity_before=ppl_before,
        perplexity_after=ppl_after,
        legacy_share=model.vocabulary_share(LEGACY_MARKERS),
        coverage=coverage,
    )
    return model, report
