"""The simulated code-generation LLM.

``SimulatedCodeLLM.generate`` turns a natural-language prompt into Python
source targeting :mod:`repro.quantum`, through the mechanism described in
DESIGN.md: knowledge matching -> knowledge roll -> variant selection ->
syntactic fault injection (RAG-suppressed where retrieved docs cover the
symbol) -> code text.  ``repair`` implements the multi-pass capability: given
an error trace it edits the code like the paper's Section IV-A loop.

Every stochastic choice draws from the caller's RNG, so pipelines are
deterministic per seed, and every completion carries full provenance of what
happened — experiments aggregate provenance instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GenerationError
from repro.llm import faults as F
from repro.llm import synthesis
from repro.llm.knowledge import DEFAULT_KNOWLEDGE, KnowledgeBase


@dataclass
class Completion:
    """One model output plus provenance."""

    code: str
    family: str | None
    tier: str
    variant: str  # 'correct' | 'structure' | 'params' | 'nonsense'
    injected_faults: list[str] = field(default_factory=list)
    suppressed_faults: list[str] = field(default_factory=list)
    knowledge_hit: bool = False
    scaffold_wrong: bool = False
    retrieved_chunks: int = 0
    repaired_from: str | None = None

    @property
    def is_clean(self) -> bool:
        """True when no fault was injected and the structure is correct."""
        return self.variant == "correct" and not self.injected_faults


class SimulatedCodeLLM:
    """A deterministic, configurable stand-in for the fine-tuned StarCoder."""

    def __init__(
        self,
        config: F.ModelConfig,
        knowledge: KnowledgeBase | None = None,
    ) -> None:
        self.config = config
        self.knowledge = knowledge or DEFAULT_KNOWLEDGE

    # -- generation ---------------------------------------------------------

    def generate(
        self,
        prompt_text: str,
        rng: np.random.Generator,
        params: dict | None = None,
        family_hint: str | None = None,
        retrieved_docs: list[str] | None = None,
    ) -> Completion:
        """Generate code for a prompt.

        Args:
            prompt_text: the natural-language task (the model keyword-matches
                it against its knowledge base, like an LLM pattern-matching
                its training distribution).
            rng: source of all randomness.
            params: task parameters (qubit counts, secrets...) — in a real
                deployment these are parsed from the prompt; the bank passes
                them explicitly so grading is exact.
            family_hint: override prompt matching (used by ablations).
            retrieved_docs: RAG context; presence of migration notes
                suppresses the corresponding legacy emissions.
        """
        params = params or {}
        family = family_hint or self.knowledge.match(prompt_text)[0]
        if family is None:
            code = synthesis.synthesize_nonsense(params)
            return Completion(
                code=code, family=None, tier="advanced", variant="nonsense"
            )
        spec = self.knowledge.get(family)
        rates = F.resolve_rates(self.config, spec.tier)

        # 1. Knowledge roll: does the model know this algorithm's structure?
        knowledge_hit = rng.random() < rates.p_know
        scaffold_wrong = False
        if knowledge_hit and rates.p_scaffold_wrong > 0:
            # CoT/SCoT scaffolds are sometimes wrong themselves (paper V-E).
            scaffold_wrong = rng.random() < rates.p_scaffold_wrong

        # 2. Variant selection.
        if not knowledge_hit:
            variant = "nonsense"
        elif scaffold_wrong or rng.random() < rates.p_sem_structure:
            variant = "structure"
        elif rng.random() < rates.p_sem_params:
            variant = "params"
        else:
            variant = "correct"

        if variant == "nonsense":
            code = synthesis.synthesize_nonsense(params)
        else:
            code = synthesis.synthesize(family, params, variant)

        # 3. Syntactic fault injection (at most one per completion —
        # empirically LLM outputs rarely stack independent API errors).
        # Only modes with an applicable site in this program count toward
        # the total exposure: e.g. missing_transpile only threatens
        # device-run code, so simulator tasks are not charged its rate.
        injected: list[str] = []
        suppressed: list[str] = []
        mode = self._roll_syntax_mode(code, rates, rng)
        if mode is not None:
            if self._rag_suppresses(mode, retrieved_docs, rng):
                suppressed.append(mode)
            else:
                result = F.INJECTORS[mode](code, rng)
                if result.applied:
                    code = result.code
                    injected.append(mode)

        return Completion(
            code=code,
            family=family,
            tier=spec.tier,
            variant="structure" if variant == "structure" else variant,
            injected_faults=injected,
            suppressed_faults=suppressed,
            knowledge_hit=knowledge_hit,
            scaffold_wrong=scaffold_wrong,
            retrieved_chunks=len(retrieved_docs or []),
        )

    def _roll_syntax_mode(
        self, code: str, rates: F.ResolvedRates, rng: np.random.Generator
    ) -> str | None:
        """Pick at most one *applicable* syntax fault, proportional to rates.

        Applicability is decided by dry-running each injector on the correct
        code (injectors are pure text transforms); the roll's total
        probability is the sum of the applicable modes' rates.
        """
        probe = np.random.default_rng(0)  # applicability is rng-independent
        applicable = [
            mode
            for mode, rate in rates.syntax.items()
            if rate > 0 and F.INJECTORS[mode](code, probe).applied
        ]
        if not applicable:
            return None
        total = sum(rates.syntax[m] for m in applicable)
        if rng.random() >= min(total, 0.95):
            return None
        weights = np.array([rates.syntax[m] for m in applicable])
        return str(rng.choice(applicable, p=weights / weights.sum()))

    def _rag_suppresses(
        self, mode: str, retrieved_docs: list[str] | None, rng: np.random.Generator
    ) -> bool:
        if not self.config.rag_docs or not retrieved_docs:
            return False
        symbols = F.MODE_SYMBOLS.get(mode, ())
        hints = F.MODE_CURRENT_HINTS.get(mode, ())
        if not symbols and not hints:
            return False
        covered = any(
            any(term in doc for term in symbols + hints)
            for doc in retrieved_docs
        )
        if not covered:
            return False
        return rng.random() < F.DOCS_SUPPRESSION[self.config.profile]

    # -- multi-pass repair -------------------------------------------------------

    def repair(
        self,
        completion: Completion,
        trace: str,
        rng: np.random.Generator,
        params: dict | None = None,
        semantic_feedback: bool = False,
    ) -> Completion:
        """One repair pass: prompt + previous code + error trace -> new code.

        Mirrors the paper's multi-pass template (Section IV-A): the model
        focuses on "fixing a small, singular error, rather than regenerating
        the entire program".
        """
        params = params or {}
        if semantic_feedback:
            return self._repair_semantic(completion, rng, params)
        new_code, mode = F.repair_code(completion.code, trace)
        success_rate = F.REPAIR_SUCCESS.get(mode or "", 0.0)
        if mode is None or rng.random() >= success_rate:
            # Repair failed: the model re-emits essentially the same code
            # (stale knowledge reproduces the stale call).
            return Completion(
                code=completion.code,
                family=completion.family,
                tier=completion.tier,
                variant=completion.variant,
                injected_faults=list(completion.injected_faults),
                knowledge_hit=completion.knowledge_hit,
                scaffold_wrong=completion.scaffold_wrong,
                repaired_from=None,
            )
        remaining = [f for f in completion.injected_faults if f != mode]
        # Editing can regress: occasionally a fresh syntax slip sneaks in.
        if rng.random() < F.REPAIR_REGRESSION:
            result = F.inject_python_syntax(new_code, rng)
            if result.applied:
                new_code = result.code
                remaining.append("python_syntax")
        return Completion(
            code=new_code,
            family=completion.family,
            tier=completion.tier,
            variant=completion.variant,
            injected_faults=remaining,
            knowledge_hit=completion.knowledge_hit,
            scaffold_wrong=completion.scaffold_wrong,
            repaired_from=mode,
        )

    def _repair_semantic(
        self, completion: Completion, rng: np.random.Generator, params: dict
    ) -> Completion:
        """Semantic feedback ("wrong output distribution") repair attempt."""
        success = F.SEM_REPAIR_SUCCESS[self.config.prompt_style]
        if completion.family is None or rng.random() >= success:
            return completion
        code = synthesis.synthesize(completion.family, params, "correct")
        return Completion(
            code=code,
            family=completion.family,
            tier=completion.tier,
            variant="correct",
            injected_faults=[],
            knowledge_hit=True,
            scaffold_wrong=False,
            repaired_from="semantic",
        )


def make_model(
    scale: str = "3b",
    fine_tuned: bool = False,
    rag_docs: bool = False,
    rag_guides: bool = False,
    prompt_style: str = "plain",
    temperature: float = 0.2,
    profile: str = "suite",
) -> SimulatedCodeLLM:
    """Convenience factory mirroring the paper's model variants."""
    config = F.ModelConfig(
        scale=scale,
        fine_tuned=fine_tuned,
        rag_docs=rag_docs,
        rag_guides=rag_guides,
        prompt_style=prompt_style,
        temperature=temperature,
        profile=profile,
    )
    return SimulatedCodeLLM(config)


# Guard against typos in calibration tables at import time.
for _key, _table in F.KNOWLEDGE.items():
    for _tier, _p in _table.items():
        if not 0.0 <= _p <= 1.0:
            raise GenerationError(f"bad knowledge rate {_key}/{_tier}: {_p}")
