"""A synthetic "scraped GitHub" corpus for the fine-tuning pipeline.

The paper (Section III-B) scrapes open-source repositories, filters by licence
and last-update date (after February 2024), keeps files containing a Qiskit
import, splits notebooks into code/markdown tiles, and lands on a ~3M-token
corpus that is *still* partly stale.  This module reproduces that data
distribution synthetically and deterministically:

* files carry a repo, licence, last-update date and kind (``py``/``ipynb``);
* a tunable fraction of files use the **legacy** API (``execute``, ``Aer``,
  ``qc.cu1``...) — stale code that survives even the date filter, exactly the
  failure the paper reports;
* non-quantum files and non-open licences are present so the filters have
  real work to do;
* notebooks are JSON with alternating markdown/code cells.

Nothing here is scraped at run time; the corpus ships with the library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.utils.rng import derive_rng

OPEN_LICENSES = ("mit", "apache-2.0", "bsd-3-clause")
CLOSED_LICENSES = ("proprietary", "no-license")


@dataclass(frozen=True)
class CorpusFile:
    """One scraped file."""

    path: str
    repo: str
    license: str
    last_updated: date
    kind: str  # 'py' | 'ipynb'
    content: str

    @property
    def is_notebook(self) -> bool:
        return self.kind == "ipynb"


# ---------------------------------------------------------------------------
# Snippet templates.  {n}, {shots}, {theta} etc. are filled per file.
# ---------------------------------------------------------------------------

MODERN_SNIPPETS = [
    '''\
from repro.quantum import QuantumCircuit, LocalSimulator

def bell_counts(shots={shots}):
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    backend = LocalSimulator()
    job = backend.run(qc, shots=shots)
    return job.result().get_counts()
''',
    '''\
from repro.quantum import QuantumCircuit, LocalSimulator

def ghz(n={n}):
    qc = QuantumCircuit(n, n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    qc.measure(list(range(n)), list(range(n)))
    return LocalSimulator().run(qc, shots={shots}).result().get_counts()
''',
    '''\
import math
from repro.quantum import QuantumCircuit

def qft(n={n}):
    qc = QuantumCircuit(n)
    for t in range(n - 1, -1, -1):
        qc.h(t)
        for c in range(t - 1, -1, -1):
            qc.cp(math.pi / 2 ** (t - c), c, t)
    for q in range(n // 2):
        qc.swap(q, n - 1 - q)
    return qc
''',
    '''\
from repro.quantum import QuantumCircuit, FakeBrisbane, transpile

def run_on_device(qc):
    backend = FakeBrisbane()
    tqc = transpile(qc, backend=backend)
    job = backend.run(tqc, shots={shots})
    return job.result().get_counts()
''',
    '''\
from repro.quantum import QuantumCircuit, Statevector

def phase_kickback(theta={theta}):
    qc = QuantumCircuit(2)
    qc.h(0)
    qc.x(1)
    qc.cp(theta, 0, 1)
    return Statevector.from_circuit(qc)
''',
    '''\
from repro.quantum import QuantumCircuit, LocalSimulator

def grover_two_qubit(marked="11"):
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.h(1)
    qc.cz(0, 1)
    qc.h(0)
    qc.h(1)
    qc.x(0)
    qc.x(1)
    qc.cz(0, 1)
    qc.x(0)
    qc.x(1)
    qc.h(0)
    qc.h(1)
    qc.measure([0, 1], [0, 1])
    return LocalSimulator().run(qc, shots={shots}).result().get_counts()
''',
    '''\
from repro.quantum import QuantumCircuit

def teleport_circuit():
    qc = QuantumCircuit(3, 3)
    qc.u({theta}, 0.5, 0.0, 0)
    qc.h(1)
    qc.cx(1, 2)
    qc.cx(0, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.measure(1, 1)
    qc.append("x", [2], condition=(1, 1))
    qc.append("z", [2], condition=(0, 1))
    qc.measure(2, 2)
    return qc
''',
]

LEGACY_SNIPPETS = [
    '''\
from repro.quantum import QuantumCircuit, execute, Aer

def bell_counts(shots={shots}):
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cnot(0, 1)
    qc.measure([0, 1], [0, 1])
    backend = Aer.get_backend("qasm_simulator")
    result = execute(qc, backend, shots=shots)
    return result.get_counts()
''',
    '''\
import math
from repro.quantum import QuantumCircuit

def qft(n={n}):
    qc = QuantumCircuit(n)
    for t in range(n - 1, -1, -1):
        qc.h(t)
        for c in range(t - 1, -1, -1):
            qc.cu1(math.pi / 2 ** (t - c), c, t)
    return qc
''',
    '''\
from repro.quantum import QuantumCircuit, execute, BasicAer

def run(qc, shots={shots}):
    backend = BasicAer.get_backend("statevector_simulator")
    return execute(qc, backend, shots=shots).get_statevector()
''',
    '''\
from repro.quantum import QuantumCircuit

def toffoli_demo():
    qc = QuantumCircuit(3)
    qc.x(0)
    qc.x(1)
    qc.toffoli(0, 1, 2)
    qc.iden(0)
    return qc
''',
    '''\
from repro.quantum import QuantumCircuit

def rotate(theta={theta}):
    qc = QuantumCircuit(1)
    qc.u3(theta, 0.1, 0.2, 0)
    qc.u1(0.3, 0)
    return qc
''',
]

NON_QUANTUM_SNIPPETS = [
    '''\
import json

def load_config(path):
    with open(path) as handle:
        return json.load(handle)
''',
    '''\
def fibonacci(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a
''',
    '''\
import os

def list_python_files(root):
    out = []
    for base, _dirs, files in os.walk(root):
        out.extend(os.path.join(base, f) for f in files if f.endswith(".py"))
    return out
''',
]

MARKDOWN_CELLS = [
    "# Building a Bell state\nEntanglement in two gates: Hadamard then CNOT.",
    "## Quantum Fourier transform\nThe QFT maps computational basis states to "
    "phase gradients; it is the engine inside Shor's algorithm.",
    "### Running on hardware\nAlways transpile for the device coupling map "
    "before submitting a job.",
    "## Grover search\nAmplitude amplification boosts marked states using an "
    "oracle and a diffuser.",
    "### Noise\nReal devices suffer depolarizing noise and readout error; "
    "expect histograms to spread.",
]

#: Legacy symbols the n-gram vocabulary share is measured against.
LEGACY_MARKERS = ("execute", "Aer", "BasicAer", "cu1", "u3", "u1", "toffoli", "iden", "cnot")

#: The date filter boundary from the paper (repos updated after Feb 2024).
FILTER_DATE = date(2024, 2, 1)


def _fill(template: str, rng: np.random.Generator) -> str:
    return template.format(
        n=int(rng.integers(3, 7)),
        shots=int(rng.choice([256, 512, 1024, 2048])),
        theta=round(float(rng.uniform(0.1, 3.0)), 3),
    )


def _make_notebook(cells: list[tuple[str, str]]) -> str:
    """Assemble a minimal .ipynb JSON document."""
    nb_cells = []
    for kind, source in cells:
        nb_cells.append(
            {
                "cell_type": "markdown" if kind == "markdown" else "code",
                "metadata": {},
                "source": source.splitlines(keepends=True),
                **({"outputs": [], "execution_count": None} if kind == "code" else {}),
            }
        )
    return json.dumps({"cells": nb_cells, "nbformat": 4, "nbformat_minor": 5})


def build_corpus(
    num_files: int = 160,
    legacy_fraction: float = 0.35,
    stale_fraction: float = 0.25,
    non_quantum_fraction: float = 0.15,
    closed_license_fraction: float = 0.10,
    notebook_fraction: float = 0.25,
    seed: int = 2024,
) -> list[CorpusFile]:
    """Generate the synthetic scraped corpus.

    ``legacy_fraction`` of quantum files use the removed v0 API even when
    recent — the paper's key observation that "even filtering by a date this
    recent still resulted in out-of-date code".
    """
    files: list[CorpusFile] = []
    for idx in range(num_files):
        rng = derive_rng(seed, "corpus", idx)
        closed = rng.random() < closed_license_fraction
        license_name = (
            str(rng.choice(CLOSED_LICENSES))
            if closed
            else str(rng.choice(OPEN_LICENSES))
        )
        stale = rng.random() < stale_fraction
        if stale:
            updated = FILTER_DATE - timedelta(days=int(rng.integers(30, 700)))
        else:
            updated = FILTER_DATE + timedelta(days=int(rng.integers(10, 300)))
        non_quantum = rng.random() < non_quantum_fraction
        legacy = rng.random() < legacy_fraction or stale  # stale repos are legacy
        if non_quantum:
            body = _fill(str(rng.choice(NON_QUANTUM_SNIPPETS)), rng)
        elif legacy:
            body = _fill(str(rng.choice(LEGACY_SNIPPETS)), rng)
        else:
            body = _fill(str(rng.choice(MODERN_SNIPPETS)), rng)
        repo = f"github.com/qdev-{idx % 23:02d}/repo"
        official = idx % 11 == 0
        if official:
            repo = f"github.com/qiskit-community/examples-{idx % 5}"
        is_notebook = rng.random() < notebook_fraction
        if is_notebook:
            md = str(rng.choice(MARKDOWN_CELLS))
            content = _make_notebook([("markdown", md), ("code", body)])
            path = f"{repo}/notebooks/example_{idx:03d}.ipynb"
            kind = "ipynb"
        else:
            content = body
            path = f"{repo}/src/example_{idx:03d}.py"
            kind = "py"
        files.append(
            CorpusFile(
                path=path,
                repo=repo,
                license=license_name,
                last_updated=updated,
                kind=kind,
                content=content,
            )
        )
    return files


def is_official(file: CorpusFile) -> bool:
    """Official community repos get upsampling priority (paper Section III-B)."""
    return "qiskit-community" in file.repo
