"""Template-based code synthesis: the generative half of the simulated LLM.

For every knowledge-base family this module can emit *runnable* Python against
the :mod:`repro.quantum` public API, in three variants:

* ``correct`` — the canonical solution (also used as the grading reference);
* ``structure`` — a typical LLM structural mistake (missing uncompute layer,
  wrong oracle wiring, zero Grover iterations...), which runs fine but is
  semantically wrong — the paper's "syntactically correct but nonsensical
  code";
* ``params`` — a subtler parameter slip (wrong angle, reversed bitstring).

Syntactic fault modes (legacy API calls, hallucinated methods, bad indices)
are *not* generated here; they are text transforms applied afterwards by
:mod:`repro.llm.faults`, because that is where their rates are modelled.

Generated code defines ``qc`` (the circuit) and, when the task involves
execution, ``counts``; statevector tasks define ``state``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import GenerationError

VARIANTS = ("correct", "structure", "params")

Emitter = Callable[[dict, str], str]
_EMITTERS: dict[str, Emitter] = {}


def register(family: str):
    def wrap(fn: Emitter) -> Emitter:
        _EMITTERS[family] = fn
        return fn

    return wrap


def families() -> list[str]:
    return sorted(_EMITTERS)


def synthesize(family: str, params: dict, variant: str = "correct") -> str:
    """Emit code for a task family; raises for unknown families/variants."""
    if variant not in VARIANTS:
        raise GenerationError(f"unknown synthesis variant '{variant}'")
    emitter = _EMITTERS.get(family)
    if emitter is None:
        raise GenerationError(
            f"no synthesis template for family '{family}'; known: {families()}"
        )
    return emitter(params, variant)


def synthesize_nonsense(params: dict) -> str:
    """Plausible-looking filler for prompts the model does not understand.

    Syntactically valid, runs cleanly, and is essentially never the right
    answer — mirroring the paper's observation about models lacking
    algorithmic knowledge.
    """
    n = int(params.get("n", 3))
    n = max(1, min(n, 6))
    lines = [
        "from repro.quantum import QuantumCircuit, LocalSimulator",
        "",
        f"qc = QuantumCircuit({n}, {n})",
    ]
    for q in range(n):
        lines.append(f"qc.h({q})")
    lines.append(f"qc.measure(list(range({n})), list(range({n})))")
    lines.append("backend = LocalSimulator()")
    lines.append("counts = backend.run(qc, shots=1024).result().get_counts()")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Basic tier
# ---------------------------------------------------------------------------


@register("superposition")
def _superposition(params: dict, variant: str) -> str:
    gate = "qc.h(0)" if variant != "structure" else "qc.x(0)"
    measure = "qc.measure(0, 0)"
    if variant == "params":
        # Measuring into the wrong (nonexistent-but-valid-0) pattern: use a
        # biased ry instead of H.
        gate = "qc.ry(1.0, 0)"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(1, 1)
{gate}
{measure}
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("bell")
def _bell(params: dict, variant: str) -> str:
    body = ["qc.h(0)", "qc.cx(0, 1)"]
    if variant == "structure":
        body = ["qc.h(0)", "qc.h(1)"]  # forgot the entangler
    elif variant == "params":
        body = ["qc.h(0)", "qc.cx(0, 1)", "qc.x(0)"]  # stray flip
    lines = "\n".join(body)
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(2, 2)
{lines}
qc.measure([0, 1], [0, 1])
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("ghz")
def _ghz(params: dict, variant: str) -> str:
    n = int(params.get("n", 3))
    if variant == "structure":
        chain = f"for q in range({n}):\n    qc.h(q)"  # H-everything misconception
    elif variant == "params":
        chain = (
            f"qc.h(0)\nfor q in range({n - 2}):\n    qc.cx(q, q + 1)"
        )  # chain stops early
    else:
        chain = f"qc.h(0)\nfor q in range({n - 1}):\n    qc.cx(q, q + 1)"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n}, {n})
{chain}
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("basis_prep")
def _basis_prep(params: dict, variant: str) -> str:
    bits = str(params.get("bits", "110"))
    n = len(bits)
    if variant in ("structure", "params"):
        bits = bits[::-1]  # endianness slip, the classic
        if bits == str(params.get("bits", "110")):
            # Palindromes make the reversal a no-op; flip a bit instead.
            bits = ("0" if bits[0] == "1" else "1") + bits[1:]
    flips = "\n".join(
        f"qc.x({q})" for q, bit in enumerate(reversed(bits)) if bit == "1"
    )
    flips = flips or "pass"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n}, {n})
{flips}
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=1024).result().get_counts()
"""


@register("rotation")
def _rotation(params: dict, variant: str) -> str:
    theta = float(params.get("theta", 1.2))
    if variant == "params":
        theta = theta + 0.8  # half-angle convention confusion
    gate = f"qc.ry({theta!r}, 0)"
    if variant == "structure":
        gate = f"qc.rz({theta!r}, 0)"  # phase rotation is invisible in Z basis
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(1, 1)
{gate}
qc.measure(0, 0)
backend = LocalSimulator()
counts = backend.run(qc, shots=4096).result().get_counts()
"""


@register("statevector")
def _statevector(params: dict, variant: str) -> str:
    label = str(params.get("label", "01"))
    n = len(label)
    flips = "\n".join(
        f"qc.x({q})" for q, bit in enumerate(reversed(label)) if bit == "1"
    )
    flips = flips or "pass"
    if variant in ("structure", "params"):
        # Inverted bit test: prepares the complement state (always wrong).
        flips = "\n".join(
            f"qc.x({q})" for q, bit in enumerate(reversed(label)) if bit == "0"
        ) or "pass"
    return f"""\
from repro.quantum import QuantumCircuit, Statevector

qc = QuantumCircuit({n})
{flips}
state = Statevector.from_circuit(qc)
probabilities = state.probabilities_dict()
"""


@register("device_run")
def _device_run(params: dict, variant: str) -> str:
    n = int(params.get("n", 3))
    transpile_line = "tqc = transpile(qc, backend=backend)"
    run_target = "tqc"
    if variant == "structure":
        # Forgot to transpile: device backends reject uncoupled/unbased ops.
        transpile_line = "tqc = qc"
    body = f"qc.h(0)\nfor q in range({n - 1}):\n    qc.cx(q, q + 1)"
    if variant == "params":
        body = f"for q in range({n}):\n    qc.h(q)"  # entanglement lost
    return f"""\
from repro.quantum import QuantumCircuit, FakeBrisbane, transpile

backend = FakeBrisbane()
qc = QuantumCircuit({n}, {n})
{body}
qc.measure(list(range({n})), list(range({n})))
{transpile_line}
counts = backend.run({run_target}, shots=1024, seed=11).result().get_counts()
"""


@register("qasm_io")
def _qasm_io(params: dict, variant: str) -> str:
    build = "qc.h(0)\nqc.cx(0, 1)\nqc.measure([0, 1], [0, 1])"
    if variant == "structure":
        # Exports the circuit before building it: round-trips an empty shell.
        return """\
from repro.quantum import QuantumCircuit, circuit_to_qasm, qasm_to_circuit

qc = QuantumCircuit(2, 2)
qasm_text = circuit_to_qasm(qc)
qc.h(0)
qc.cx(0, 1)
qc.measure([0, 1], [0, 1])
qc2 = qasm_to_circuit(qasm_text)
"""
    if variant == "params":
        build = "qc.h(0)\nqc.cx(1, 0)\nqc.measure([0, 1], [0, 1])"  # flipped CNOT
    return f"""\
from repro.quantum import QuantumCircuit, circuit_to_qasm, qasm_to_circuit

qc = QuantumCircuit(2, 2)
{build}
qasm_text = circuit_to_qasm(qc)
qc2 = qasm_to_circuit(qasm_text)
"""


# ---------------------------------------------------------------------------
# Intermediate tier
# ---------------------------------------------------------------------------


@register("qft")
def _qft(params: dict, variant: str) -> str:
    n = int(params.get("n", 3))
    # The QFT is applied to a nontrivial basis state (|0...01> by default):
    # on |0...0> every QFT variant produces the same uniform state, which
    # would make grading blind (and the task trivial).
    input_qubit = int(params.get("input_qubit", 0))
    angle = "math.pi / 2 ** (t - c)"
    if variant == "params":
        angle = "-math.pi / 2 ** (t - c)"  # rotation sign flipped
    swaps = (
        f"for q in range({n} // 2):\n    qc.swap(q, {n} - 1 - q)"
    )
    if variant == "structure":
        swaps = "pass  # (bit-reversal swaps omitted)"
    return f"""\
import math
from repro.quantum import QuantumCircuit, Statevector

qc = QuantumCircuit({n})
qc.x({input_qubit})  # input basis state
for t in range({n} - 1, -1, -1):
    qc.h(t)
    for c in range(t - 1, -1, -1):
        qc.cp({angle}, c, t)
{swaps}
state = Statevector.from_circuit(qc)
"""


@register("deutsch_jozsa")
def _deutsch_jozsa(params: dict, variant: str) -> str:
    n = int(params.get("n", 3))
    kind = str(params.get("kind", "constant0"))
    if kind == "constant0":
        oracle = "pass  # constant-0 oracle: identity"
    elif kind == "constant1":
        oracle = f"qc.x({n})"
    else:
        oracle = f"for q in range({n}):\n    qc.cx(q, {n})"
    ancilla_init = f"qc.x({n})"
    final_h = f"for q in range({n}):\n    qc.h(q)"
    if variant == "structure":
        if kind == "balanced":
            ancilla_init = "pass  # (ancilla never flipped to |->)"
        else:
            final_h = "pass  # (final uncompute Hadamards omitted)"
    if variant == "params":
        final_h = f"for q in range({n} - 1):\n    qc.h(q)"  # missed one qubit
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n} + 1, {n})
{ancilla_init}
for q in range({n} + 1):
    qc.h(q)
{oracle}
{final_h}
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("bernstein_vazirani")
def _bernstein_vazirani(params: dict, variant: str) -> str:
    secret = str(params.get("secret", "101"))
    n = len(secret)
    if variant == "params":
        # One oracle wire mis-read: the last secret bit is flipped.
        flipped = "0" if secret[-1] == "1" else "1"
        secret = secret[:-1] + flipped
    oracle_lines = [
        f"qc.cx({q}, {n})"
        for q, bit in enumerate(reversed(secret))
        if bit == "1"
    ]
    oracle = "\n".join(oracle_lines) or "pass"
    if variant == "structure":
        oracle = "pass  # (oracle omitted entirely)"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n} + 1, {n})
qc.x({n})
for q in range({n} + 1):
    qc.h(q)
{oracle}
for q in range({n}):
    qc.h(q)
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=1024).result().get_counts()
"""


@register("grover")
def _grover(params: dict, variant: str) -> str:
    marked = str(params.get("marked", "11"))
    n = len(marked)
    if n not in (2, 3):
        raise GenerationError("grover template supports 2 or 3 qubits")
    n_states = 2**n
    iterations = max(1, int(round(math.pi / (4 * math.asin(math.sqrt(1 / n_states))) - 0.5)))
    if variant == "params":
        iterations += 2  # overshoots the rotation
    zeros = [q for q in range(n) if marked[n - 1 - q] == "0"]
    x_wrap = "\n    ".join(f"qc.x({q})" for q in zeros) or "pass"
    cz = "qc.cz(0, 1)" if n == 2 else "qc.ccz(0, 1, 2)"
    diffuser_flip = "\n    ".join(f"qc.x({q})" for q in range(n))
    oracle_block = f"""\
    {x_wrap}
    {cz}
    {x_wrap}"""
    if variant == "structure":
        oracle_block = "    pass  # (oracle omitted: nothing is ever marked)"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n}, {n})
for q in range({n}):
    qc.h(q)
for _ in range({iterations}):
{oracle_block}
    for q in range({n}):
        qc.h(q)
    {diffuser_flip}
    {cz}
    {diffuser_flip}
    for q in range({n}):
        qc.h(q)
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


# ---------------------------------------------------------------------------
# Advanced tier
# ---------------------------------------------------------------------------


@register("teleportation")
def _teleportation(params: dict, variant: str) -> str:
    theta = float(params.get("theta", 1.0))
    phi = float(params.get("phi", 0.5))
    corrections = """\
qc.append("x", [2], condition=(1, 1))
qc.append("z", [2], condition=(0, 1))"""
    if variant == "structure":
        corrections = "# (conditioned corrections omitted)"
    elif variant == "params":
        corrections = """\
qc.append("x", [2], condition=(0, 1))
qc.append("z", [2], condition=(1, 1))"""  # swapped condition bits
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(3, 3)
qc.u({theta!r}, {phi!r}, 0.0, 0)
qc.h(1)
qc.cx(1, 2)
qc.cx(0, 1)
qc.h(0)
qc.measure(0, 0)
qc.measure(1, 1)
{corrections}
qc.measure(2, 2)
backend = LocalSimulator()
counts = backend.run(qc, shots=4096).result().get_counts()
"""


@register("superdense")
def _superdense(params: dict, variant: str) -> str:
    bits = str(params.get("bits", "10"))
    encode = []
    if bits[0] == "1":
        encode.append("qc.x(0)")
    if bits[1] == "1":
        encode.append("qc.z(0)")
    if variant == "params":
        # Inverted test on the X-encoded bit: always wrong for every message.
        encode = []
        if bits[0] == "0":
            encode.append("qc.x(0)")
        if bits[1] == "1":
            encode.append("qc.z(0)")
    encode_block = "\n".join(encode) or "pass"
    decode = "qc.cx(0, 1)\nqc.h(0)"
    if variant == "structure":
        decode = "# (decoding omitted: receiver measures the raw pair)"
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(2, 2)
qc.h(0)
qc.cx(0, 1)
{encode_block}
{decode}
qc.measure([0, 1], [0, 1])
backend = LocalSimulator()
counts = backend.run(qc, shots=1024).result().get_counts()
"""


@register("phase_estimation")
def _phase_estimation(params: dict, variant: str) -> str:
    phase = float(params.get("phase", 0.25))
    n = int(params.get("n", 3))
    iqft = f"""\
for q in range({n} // 2):
    qc.swap(q, {n} - 1 - q)
for t in range({n}):
    for c in range(t):
        qc.cp(-math.pi / 2 ** (t - c), c, t)
    qc.h(t)"""
    if variant == "structure":
        iqft = "# (inverse QFT omitted before measurement)"
    phase_expr = f"2 * math.pi * {phase!r} * 2 ** q"
    if variant == "params":
        phase_expr = f"math.pi * {phase!r} * 2 ** q"  # missing factor of two
    return f"""\
import math
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit({n} + 1, {n})
qc.x({n})
for q in range({n}):
    qc.h(q)
for q in range({n}):
    qc.cp({phase_expr}, q, {n})
{iqft}
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("quantum_walk")
def _quantum_walk(params: dict, variant: str) -> str:
    steps = int(params.get("steps", 3))
    if variant == "params":
        steps += 1  # off-by-one step count
    coin = "qc.h(2)"
    if variant == "structure":
        coin = "# (coin flip omitted: the walk becomes a classical shift)"
    decrement = """\
    qc.x(2)
    qc.cx(2, 0)
    qc.ccx(2, 0, 1)
    qc.x(2)"""
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

qc = QuantumCircuit(3, 2)
for _ in range({steps}):
    {coin}
    qc.ccx(2, 0, 1)
    qc.cx(2, 0)
{decrement}
qc.measure([0, 1], [0, 1])
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""


@register("annealing")
def _annealing(params: dict, variant: str) -> str:
    n = int(params.get("n", 3))
    steps = int(params.get("steps", 4))
    zz_line = "qc.rzz(2 * s * dt, q, q + 1)"
    if variant == "structure":
        zz_line = "pass  # (problem Hamiltonian never applied)"
    rx_angle = "2 * (1 - s) * dt"
    if variant == "params":
        rx_angle = "2 * s * dt"  # schedule inverted
    return f"""\
from repro.quantum import QuantumCircuit, LocalSimulator

total_time = 2.0
steps = {steps}
dt = total_time / steps
qc = QuantumCircuit({n}, {n})
for q in range({n}):
    qc.h(q)
for k in range(steps):
    s = (k + 1) / steps
    for q in range({n} - 1):
        {zz_line}
    for q in range({n}):
        qc.rx({rx_angle}, q)
qc.measure(list(range({n})), list(range({n})))
backend = LocalSimulator()
counts = backend.run(qc, shots=2048).result().get_counts()
"""
