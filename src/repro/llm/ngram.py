"""A backoff n-gram language model over code tokens.

This is the *trainable* artifact of the fine-tuning pipeline: training on the
filtered corpus measurably lowers its perplexity on held-out quantum code, and
its vocabulary statistics (how often current-API vs legacy-API symbols occur)
feed the fault-rate model of :mod:`repro.llm.faults` — stale corpora teach the
model stale APIs, which is exactly the paper's central data-quality complaint.

Smoothing is stupid-backoff (Brants et al.): cheap, robust for small corpora,
and adequate because the LM's role is comparative (before/after fine-tuning),
not generative quality.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import LLMError
from repro.llm.tokenizer import tokenize

_BOS = "<s>"
_UNK = "<unk>"


class NgramModel:
    """Order-n stupid-backoff language model."""

    def __init__(self, order: int = 3, backoff: float = 0.4) -> None:
        if order < 1:
            raise LLMError(f"n-gram order must be >= 1, got {order}")
        self.order = order
        self.backoff = backoff
        # counts[k] maps a context tuple of length k to a Counter of next tokens.
        self._counts: list[dict[tuple[str, ...], Counter]] = [
            {} for _ in range(order)
        ]
        self._total_tokens = 0
        self.vocabulary: Counter = Counter()

    # -- training ---------------------------------------------------------------

    def train(self, texts: Iterable[str]) -> int:
        """Accumulate counts from an iterable of documents; returns token count."""
        added = 0
        for text in texts:
            tokens = [_BOS] * (self.order - 1) + tokenize(text)
            added += len(tokens)
            self.vocabulary.update(tokens)
            for i in range(self.order - 1, len(tokens)):
                token = tokens[i]
                for k in range(self.order):
                    context = tuple(tokens[i - k : i])
                    table = self._counts[k].setdefault(context, Counter())
                    table[token] += 1
        self._total_tokens += added
        return added

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    def vocabulary_share(self, symbols: Sequence[str]) -> float:
        """Fraction of training tokens drawn from ``symbols``.

        Used to quantify how *legacy-flavoured* the corpus was: a model
        trained on stale repositories has a high share of removed symbols.
        """
        if self._total_tokens == 0:
            return 0.0
        hits = sum(self.vocabulary.get(s, 0) for s in symbols)
        return hits / self._total_tokens

    # -- scoring ------------------------------------------------------------------

    def _score(self, context: tuple[str, ...], token: str) -> float:
        """Stupid-backoff score (not a normalised probability)."""
        for k in range(min(len(context), self.order - 1), -1, -1):
            ctx = context[len(context) - k :]
            table = self._counts[k].get(ctx)
            if table and token in table:
                total = sum(table.values())
                return (self.backoff ** (self.order - 1 - k)) * table[token] / total
        # Unseen token: uniform floor over an open vocabulary.
        return 1e-7

    def logprob(self, text: str) -> float:
        """Total (stupid-backoff) log-probability of a document."""
        tokens = [_BOS] * (self.order - 1) + tokenize(text)
        total = 0.0
        for i in range(self.order - 1, len(tokens)):
            context = tuple(tokens[max(0, i - self.order + 1) : i])
            total += math.log(self._score(context, tokens[i]))
        return total

    def perplexity(self, text: str) -> float:
        """exp(-logprob / tokens) — lower is better-fit."""
        tokens = tokenize(text)
        if not tokens:
            raise LLMError("cannot compute perplexity of empty text")
        return math.exp(-self.logprob(text) / len(tokens))

    # -- sampling ------------------------------------------------------------------

    def sample(
        self,
        rng: np.random.Generator,
        max_tokens: int = 50,
        prefix: str = "",
        temperature: float = 1.0,
    ) -> list[str]:
        """Sample a token sequence (used for diagnostics and corpus fuzzing)."""
        if temperature <= 0:
            raise LLMError("temperature must be positive")
        tokens = [_BOS] * (self.order - 1) + (tokenize(prefix) if prefix else [])
        out: list[str] = []
        for _ in range(max_tokens):
            context = tuple(tokens[-(self.order - 1) :]) if self.order > 1 else ()
            table = None
            for k in range(len(context), -1, -1):
                table = self._counts[k].get(context[len(context) - k :])
                if table:
                    break
            if not table:
                break
            choices = list(table.keys())
            weights = np.array([table[c] for c in choices], dtype=float)
            weights = weights ** (1.0 / temperature)
            weights /= weights.sum()
            token = str(rng.choice(choices, p=weights))
            out.append(token)
            tokens.append(token)
        return out
