"""The simulated code LLM: corpus, fine-tuning, knowledge, generation, repair."""

from repro.llm.corpus import CorpusFile, build_corpus
from repro.llm.faults import ModelConfig, resolve_rates
from repro.llm.finetune import (
    DatasetConfig,
    FineTuneReport,
    TrainingConfig,
    filter_files,
    fine_tune,
)
from repro.llm.knowledge import DEFAULT_KNOWLEDGE, AlgorithmSpec, KnowledgeBase
from repro.llm.model import Completion, SimulatedCodeLLM, make_model
from repro.llm.ngram import NgramModel
from repro.llm.synthesis import synthesize, synthesize_nonsense
from repro.llm.tokenizer import count_tokens, detokenize, tokenize

__all__ = [
    "AlgorithmSpec",
    "Completion",
    "CorpusFile",
    "DEFAULT_KNOWLEDGE",
    "DatasetConfig",
    "FineTuneReport",
    "KnowledgeBase",
    "ModelConfig",
    "NgramModel",
    "SimulatedCodeLLM",
    "TrainingConfig",
    "build_corpus",
    "count_tokens",
    "detokenize",
    "filter_files",
    "fine_tune",
    "make_model",
    "resolve_rates",
    "synthesize",
    "synthesize_nonsense",
    "tokenize",
]
