"""A regex code tokenizer.

Used by the n-gram language model (training + perplexity), the dataset
chunker (chunk sizes are measured in tokens, as in the paper's 3M-token
corpus accounting), and the TF-IDF embedder.

The vocabulary is open: tokens are the strings themselves.  Sentinel tokens
for notebook tiles and FIM transforms (paper Sections III-B and V-A) are
defined here so every consumer agrees on them.
"""

from __future__ import annotations

import re

from repro.errors import TokenizationError

# Sentinels, mirroring the Qiskit Code Assistant data pipeline [7] and the
# FIM transform of Bavarian et al. [34].
CODE_TILE = "<code>"
MARKDOWN_TILE = "<markdown>"
FIM_PREFIX = "<fim_prefix>"
FIM_SUFFIX = "<fim_suffix>"
FIM_MIDDLE = "<fim_middle>"
END_OF_TEXT = "<|endoftext|>"

SENTINELS = (
    CODE_TILE,
    MARKDOWN_TILE,
    FIM_PREFIX,
    FIM_SUFFIX,
    FIM_MIDDLE,
    END_OF_TEXT,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<sentinel><\|endoftext\|>|<fim_(?:prefix|suffix|middle)>|<code>|<markdown>)
  | (?P<string>(?:'[^'\n]*')|(?:"[^"\n]*"))
  | (?P<comment>\#[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<newline>\n)
  | (?P<op>[-+*/=<>!&|^%~@]+|[()\[\]{}.,:;])
  | (?P<space>[ \t]+)
    """,
    re.VERBOSE,
)


def tokenize(text: str, keep_whitespace: bool = False) -> list[str]:
    """Split source text into tokens.

    Whitespace tokens are dropped by default (newlines are kept — they carry
    statement structure that the LM should learn).
    """
    if not isinstance(text, str):
        raise TokenizationError(f"expected str, got {type(text).__name__}")
    tokens: list[str] = []
    pos = 0
    for match in _TOKEN_RE.finditer(text):
        if match.start() != pos:
            # Unmatched span (unicode punctuation etc.) becomes one token.
            tokens.append(text[pos : match.start()].strip() or "<unk>")
        pos = match.end()
        kind = match.lastgroup
        if kind == "space" and not keep_whitespace:
            continue
        tokens.append(match.group())
    if pos < len(text):
        tail = text[pos:].strip()
        if tail:
            tokens.append(tail)
    return tokens


def count_tokens(text: str) -> int:
    """Token count used for corpus statistics and chunk budgeting."""
    return len(tokenize(text))


def detokenize(tokens: list[str]) -> str:
    """Best-effort inverse of :func:`tokenize` (for LM sample display only)."""
    out: list[str] = []
    for tok in tokens:
        if tok == "\n":
            out.append("\n")
        elif tok in ".,:;)]}":
            out.append(tok)
        elif out and out[-1].endswith(("(", "[", "{", ".", "\n")):
            out.append(tok)
        else:
            out.append((" " if out else "") + tok)
    return "".join(out)
