"""Peephole optimization passes over instruction lists.

Kept intentionally simple: cancel adjacent self-inverse pairs, merge adjacent
rotations about the same axis, and drop identity rotations.  Each pass is a
pure function ``list[Instruction] -> list[Instruction]`` so passes compose and
test in isolation.
"""

from __future__ import annotations

import math

from repro.quantum import gates as _gates
from repro.quantum.circuit import Instruction
from repro.quantum.parameters import is_symbolic

_ATOL = 1e-10
_MERGEABLE = {"rx", "ry", "rz", "p"}


def _has_symbolic(inst: Instruction) -> bool:
    return any(is_symbolic(p) for p in inst.params)


def _commutes_past(pending: Instruction, inst: Instruction) -> bool:
    """Conservative check: ops on disjoint wires commute."""
    if pending.condition is not None or inst.condition is not None:
        return False
    shared_q = set(pending.qubits) & set(inst.qubits)
    shared_c = set(pending.clbits) & set(inst.clbits)
    return not shared_q and not shared_c


def cancel_adjacent_inverses(instructions: list[Instruction]) -> list[Instruction]:
    """Remove pairs like ``h q0 ; h q0`` and ``s q0 ; sdg q0``.

    A pair cancels when the two instructions are adjacent on every wire they
    touch (instructions on disjoint wires in between are skipped over).
    Iterates to a fixed point so cascading cancellations are found.
    """
    changed = True
    current = list(instructions)
    while changed:
        changed = False
        out: list[Instruction] = []
        for inst in current:
            if inst.name == "barrier" or not inst.is_unitary:
                out.append(inst)
                continue
            # Look backwards for the most recent op sharing a wire.
            partner_idx = None
            for j in range(len(out) - 1, -1, -1):
                prev = out[j]
                if _commutes_past(prev, inst):
                    continue
                partner_idx = j
                break
            if partner_idx is not None and _is_inverse_pair(out[partner_idx], inst):
                del out[partner_idx]
                changed = True
                continue
            out.append(inst)
        current = out
    return current


def _is_inverse_pair(a: Instruction, b: Instruction) -> bool:
    if a.qubits != b.qubits or a.name == "barrier" or b.name == "barrier":
        return False
    if not a.is_unitary or not b.is_unitary:
        return False
    if a.condition is not None or b.condition is not None:
        return False
    spec_a = _gates.get_spec(a.name)
    if spec_a.self_inverse and a.name == b.name and a.params == b.params:
        return True
    if spec_a.hermitian_pair == b.name and a.params == b.params:
        return True
    if a.name == b.name and a.name in _MERGEABLE:
        # Symbolic angles have no numeric sum to test; the equality-based
        # branches above remain sound for them (identical symbols compare
        # equal), but numeric wrapping must not run on a symbol.
        if _has_symbolic(a) or _has_symbolic(b):
            return False
        return abs(_wrap(a.params[0] + b.params[0])) < _ATOL
    return False


def _wrap(angle: float) -> float:
    wrapped = math.fmod(angle + math.pi, 2 * math.pi)
    if wrapped <= 0:
        wrapped += 2 * math.pi
    return wrapped - math.pi


def merge_rotations(instructions: list[Instruction]) -> list[Instruction]:
    """Fuse adjacent same-axis rotations on the same qubit; drop zero angles."""
    out: list[Instruction] = []
    for inst in instructions:
        # Symbolic rotations pass through untouched: merging would replace
        # the exact bind-time float ops with wrapped arithmetic and break
        # bind/transpile commutation bit-for-bit.
        symbolic = _has_symbolic(inst)
        partner = (
            _find_merge_partner(out, inst)
            if inst.name in _MERGEABLE
            and not symbolic
            and inst.condition is None
            and out
            else None
        )
        if partner is not None and not _has_symbolic(out[partner]):
            j = partner
            merged_angle = _wrap(out[j].params[0] + inst.params[0])
            if abs(merged_angle) < _ATOL:
                del out[j]
            else:
                out[j] = Instruction(
                    inst.name, inst.qubits, inst.clbits, (merged_angle,)
                )
            continue
        if (
            inst.name in _MERGEABLE
            and not symbolic
            and abs(_wrap(inst.params[0])) < _ATOL
        ):
            continue  # identity rotation
        out.append(inst)
    return out


def _find_merge_partner(out: list[Instruction], inst: Instruction) -> int | None:
    for j in range(len(out) - 1, -1, -1):
        prev = out[j]
        if _commutes_past(prev, inst):
            continue
        if (
            prev.name == inst.name
            and prev.qubits == inst.qubits
            and prev.condition is None
        ):
            return j
        return None
    return None


def drop_barriers(instructions: list[Instruction]) -> list[Instruction]:
    """Remove barrier directives (sampling no-ops; see ``DropBarriers``)."""
    return [i for i in instructions if i.name != "barrier"]


def optimize(instructions: list[Instruction], level: int = 1) -> list[Instruction]:
    """Run the pass stack for the given optimization level (0 disables)."""
    if level <= 0:
        return list(instructions)
    current = merge_rotations(instructions)
    current = cancel_adjacent_inverses(current)
    if level >= 2:
        current = merge_rotations(current)
        current = cancel_adjacent_inverses(current)
    return current
