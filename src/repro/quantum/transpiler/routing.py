"""Layout selection and SWAP routing against a coupling map.

The router is a greedy shortest-path inserter: for each two-qubit gate whose
operands are not adjacent on the device, it walks the logical qubit along the
shortest physical path (inserting SWAPs and permuting the layout) until the
pair is coupled.  This is the classic "basic swap" strategy — not optimal, but
deterministic and easy to reason about, which matters more here because routed
circuits feed noise experiments where gate count changes the error budget.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.errors import TranspilerError
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.topology import CouplingMap


class Layout:
    """Bidirectional logical<->physical qubit mapping."""

    def __init__(self, logical_to_physical: dict[int, int]) -> None:
        self._l2p = dict(logical_to_physical)
        self._p2l = {p: l for l, p in self._l2p.items()}
        if len(self._p2l) != len(self._l2p):
            raise TranspilerError(f"layout is not injective: {logical_to_physical}")

    @classmethod
    def trivial(cls, num_qubits: int) -> "Layout":
        return cls({i: i for i in range(num_qubits)})

    @classmethod
    def from_sequence(cls, physical: Sequence[int]) -> "Layout":
        return cls({l: p for l, p in enumerate(physical)})

    def physical(self, logical: int) -> int:
        return self._l2p[logical]

    def logical(self, physical: int) -> int | None:
        return self._p2l.get(physical)

    def swap_physical(self, p1: int, p2: int) -> None:
        """Update the mapping after a SWAP on physical qubits p1, p2."""
        l1, l2 = self._p2l.get(p1), self._p2l.get(p2)
        if l1 is not None:
            self._l2p[l1] = p2
        if l2 is not None:
            self._l2p[l2] = p1
        self._p2l = {p: l for l, p in self._l2p.items()}

    def to_dict(self) -> dict[int, int]:
        return dict(self._l2p)

    def copy(self) -> "Layout":
        return Layout(self._l2p)


def dense_layout(circuit: QuantumCircuit, cmap: CouplingMap) -> Layout:
    """Pick physical qubits by BFS from the highest-degree device qubit.

    Keeps interacting logical qubits physically close without solving the
    full placement problem.
    """
    n = circuit.num_qubits
    if n > cmap.num_qubits:
        raise TranspilerError(
            f"circuit needs {n} qubits, device has {cmap.num_qubits}"
        )
    graph = cmap.graph
    start = max(graph.degree, key=lambda kv: kv[1])[0]
    order = [start] + [v for _, v in nx.bfs_edges(graph, start)]
    chosen = order[:n]
    if len(chosen) < n:
        raise TranspilerError("device graph is disconnected; cannot place circuit")
    # Assign the most-active logical qubits to the best-connected physical ones.
    activity = [0] * n
    for inst in circuit:
        if len(inst.qubits) >= 2:
            for q in inst.qubits:
                activity[q] += 1
    logical_order = sorted(range(n), key=lambda q: -activity[q])
    mapping = {l: p for l, p in zip(logical_order, chosen)}
    return Layout(mapping)


def route(
    instructions: list[Instruction],
    layout: Layout,
    cmap: CouplingMap,
) -> tuple[list[Instruction], Layout]:
    """Insert SWAPs so every 2-qubit gate acts on coupled physical qubits.

    Input instructions are on *logical* qubits; output instructions are on
    *physical* qubits.  Returns the routed list and the final layout.

    Raises:
        TranspilerError: for gates wider than 2 qubits (decompose first).
    """
    routed: list[Instruction] = []
    layout = layout.copy()
    for inst in instructions:
        if inst.name == "barrier":
            routed.append(
                Instruction("barrier", tuple(layout.physical(q) for q in inst.qubits))
            )
            continue
        if len(inst.qubits) > 2:
            raise TranspilerError(
                f"route() requires <= 2-qubit gates, got '{inst.name}' on "
                f"{len(inst.qubits)} qubits; run decomposition first"
            )
        if len(inst.qubits) == 2:
            a_log, b_log = inst.qubits
            a_phys, b_phys = layout.physical(a_log), layout.physical(b_log)
            if not cmap.are_coupled(a_phys, b_phys):
                path = cmap.shortest_path(a_phys, b_phys)
                # Walk qubit a along the path until adjacent to b.
                for step in path[1:-1]:
                    routed.append(Instruction("swap", (a_phys, step)))
                    layout.swap_physical(a_phys, step)
                    a_phys = step
        routed.append(
            Instruction(
                inst.name,
                tuple(layout.physical(q) for q in inst.qubits),
                inst.clbits,
                inst.params,
                inst.condition,
            )
        )
    return routed, layout
