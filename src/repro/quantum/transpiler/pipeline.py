"""The top-level :func:`transpile` entry point.

Pipeline: decompose -> layout -> route -> decompose residual swaps -> optimize.
The output circuit lives on *physical* qubit indices (width = device size when
a coupling map is involved); the chosen layout is recorded in
``circuit.metadata['layout']``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import TranspilerError
from repro.quantum.analysis import circuit_facts, structural_errors
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler.decompose import decompose_to_basis
from repro.quantum.transpiler.passes import optimize
from repro.quantum.transpiler.routing import Layout, dense_layout, route

#: Hardware-style default basis (matches the fake IBM backends).
DEFAULT_BASIS = ("id", "rz", "sx", "x", "cx")


def transpile(
    circuit: QuantumCircuit,
    backend=None,
    coupling_map: CouplingMap | None = None,
    basis_gates: Sequence[str] | None = None,
    initial_layout: Sequence[int] | None = None,
    optimization_level: int = 1,
) -> QuantumCircuit:
    """Lower a circuit to a device's basis and connectivity.

    Args:
        circuit: the logical circuit.
        backend: optional backend; supplies coupling map and basis gates.
        coupling_map: overrides the backend's coupling map.
        basis_gates: overrides the backend's basis gates.
        initial_layout: explicit logical->physical placement (list where entry
            ``i`` is the physical qubit for logical qubit ``i``).
        optimization_level: 0 disables peephole optimization; 1 (default) and
            2 enable increasingly repeated passes.

    Returns:
        A new circuit on physical qubits.  ``metadata['layout']`` maps logical
        to physical indices; ``metadata['final_layout']`` gives the mapping
        after routing SWAPs.
    """
    # Layout and routing assume every instruction references declared wires;
    # the analyzer's structural facts gate that up front (the builder API
    # cannot produce such circuits, but QASM import of generated code can
    # deliver e.g. a conditional on a clbit nothing writes).
    facts = circuit_facts(circuit)
    if facts.structurally_defective:
        first = structural_errors(facts)[0]
        raise TranspilerError(
            f"circuit is structurally defective: [{first.code}] {first.message}"
        )
    if backend is not None:
        if coupling_map is None:
            coupling_map = backend.coupling_map
        if basis_gates is None:
            basis_gates = backend.basis_gates
    basis = tuple(basis_gates) if basis_gates is not None else DEFAULT_BASIS

    instructions = decompose_to_basis(circuit.instructions, basis)

    if coupling_map is None:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits, name=f"{circuit.name}_t"
        )
        out._instructions = optimize(instructions, optimization_level)
        out.metadata = dict(circuit.metadata)
        out.metadata["layout"] = {i: i for i in range(circuit.num_qubits)}
        return out

    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits, coupling map has "
            f"{coupling_map.num_qubits}"
        )
    if initial_layout is not None:
        if len(initial_layout) != circuit.num_qubits:
            raise TranspilerError(
                f"initial_layout has {len(initial_layout)} entries for a "
                f"{circuit.num_qubits}-qubit circuit"
            )
        for phys in initial_layout:
            if not 0 <= phys < coupling_map.num_qubits:
                raise TranspilerError(
                    f"initial_layout entry {phys} is outside the device "
                    f"(0..{coupling_map.num_qubits - 1})"
                )
        layout = Layout.from_sequence(list(initial_layout))
    else:
        layout = dense_layout(circuit, coupling_map)

    routed, final_layout = route(instructions, layout, coupling_map)
    # Routing introduces swap gates between coupled qubits; lower them too.
    routed = decompose_to_basis(routed, basis)
    routed = optimize(routed, optimization_level)

    out = QuantumCircuit(
        coupling_map.num_qubits, circuit.num_clbits, name=f"{circuit.name}_t"
    )
    out._instructions = routed
    out.metadata = dict(circuit.metadata)
    out.metadata["layout"] = layout.to_dict()
    out.metadata["final_layout"] = final_layout.to_dict()
    return out
