"""The top-level :func:`transpile` entry point.

Pipeline: decompose -> layout -> route -> decompose residual swaps -> peephole
passes, each a named pass in a :class:`~repro.quantum.transpiler.passmanager.
PassManager`.  The output circuit lives on *physical* qubit indices (width =
device size when a coupling map is involved); the chosen layout is recorded in
``circuit.metadata['layout']`` and ``metadata['final_layout']``.

Transpilation is a content-addressed pipeline stage: :func:`transpile`
delegates to :meth:`ExecutionService.transpile`, which keys the result by
``(circuit fingerprint, coupling fingerprint, basis fingerprint, layout,
optimization level)`` and shares the service's memory/disk/remote cache
tiers, so a logical circuit is transpiled once per fleet, ever.  The uncached
core lives in :func:`transpile_core`.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from contextlib import contextmanager

from repro.errors import TranspilerError
from repro.quantum.analysis import circuit_facts, structural_errors
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler.passmanager import build_pass_manager

#: Hardware-style default basis (matches the fake IBM backends).
DEFAULT_BASIS = ("id", "rz", "sx", "x", "cx")

_ambient = threading.local()


@contextmanager
def ambient_optimization_level(level: int | None):
    """Set the default optimization level for transpiles in this block.

    ``transpile()`` calls that do not pass an explicit ``optimization_level``
    resolve to the innermost ambient level; ``None`` makes the context a
    no-op.  The state is thread-local (mirroring ``ambient_seed``), so an
    evalsuite arm can pin a level around generated code it cannot edit.
    """
    if level is None:
        yield
        return
    previous = getattr(_ambient, "level", None)
    _ambient.level = int(level)
    try:
        yield
    finally:
        _ambient.level = previous


def resolve_optimization_level(level: int | None = None) -> int:
    """Explicit level, else the ambient level, else the default of 1."""
    if level is not None:
        return int(level)
    ambient = getattr(_ambient, "level", None)
    return 1 if ambient is None else int(ambient)


def resolve_lowering(
    backend,
    coupling_map: CouplingMap | None,
    basis_gates: Sequence[str] | None,
) -> tuple[CouplingMap | None, tuple[str, ...]]:
    """The effective (coupling map, basis) for a target.

    Explicit arguments win over the backend's properties; with neither, the
    coupling map is unconstrained and the basis falls back to
    :data:`DEFAULT_BASIS`.
    """
    if backend is not None:
        if coupling_map is None:
            coupling_map = backend.coupling_map
        if basis_gates is None:
            basis_gates = backend.basis_gates
    basis = tuple(basis_gates) if basis_gates is not None else DEFAULT_BASIS
    return coupling_map, basis


def validate_structure(circuit: QuantumCircuit) -> None:
    """Reject structurally defective circuits before layout/routing.

    Layout and routing assume every instruction references declared wires;
    the analyzer's structural facts gate that up front (the builder API
    cannot produce such circuits, but QASM import of generated code can
    deliver e.g. a conditional on a clbit nothing writes).
    """
    facts = circuit_facts(circuit)
    if facts.structurally_defective:
        first = structural_errors(facts)[0]
        raise TranspilerError(
            f"circuit is structurally defective: [{first.code}] {first.message}"
        )


def transpile_core(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap | None,
    basis: Sequence[str],
    initial_layout: Sequence[int] | None,
    optimization_level: int,
) -> QuantumCircuit:
    """Uncached transpilation: validate, build the pass stack, run it."""
    validate_structure(circuit)
    manager = build_pass_manager(
        coupling_map=coupling_map,
        basis=basis,
        initial_layout=initial_layout,
        optimization_level=optimization_level,
    )
    return manager.run(circuit)


def transpile(
    circuit: QuantumCircuit,
    backend=None,
    coupling_map: CouplingMap | None = None,
    basis_gates: Sequence[str] | None = None,
    initial_layout: Sequence[int] | None = None,
    optimization_level: int | None = None,
) -> QuantumCircuit:
    """Lower a circuit to a device's basis and connectivity.

    Args:
        circuit: the logical circuit.
        backend: optional backend; supplies coupling map and basis gates.
        coupling_map: overrides the backend's coupling map.
        basis_gates: overrides the backend's basis gates.
        initial_layout: explicit logical->physical placement (list where entry
            ``i`` is the physical qubit for logical qubit ``i``).
        optimization_level: 0 disables peephole optimization; 1 and 2 enable
            increasingly repeated passes.  ``None`` (the default) resolves to
            the ambient level set by :func:`ambient_optimization_level`, or 1.

    Returns:
        A new circuit on physical qubits.  ``metadata['layout']`` maps logical
        to physical indices; ``metadata['final_layout']`` gives the mapping
        after routing SWAPs (the identity when no coupling map constrains
        placement).

    Results are content-addressed in the default execution service's cache
    (memory -> disk -> remote), so repeated transpiles of the same logical
    circuit against the same target are served without re-running the passes.
    """
    # Imported lazily: execution.service imports this module's helpers.
    from repro.quantum.execution.service import default_service

    return default_service().transpile(
        circuit,
        backend=backend,
        coupling_map=coupling_map,
        basis_gates=basis_gates,
        initial_layout=initial_layout,
        optimization_level=optimization_level,
    )
