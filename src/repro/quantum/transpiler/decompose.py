"""Gate decomposition: rewrite arbitrary gates into a target basis.

Two layers:

* :func:`expand_instruction` — structural identities that rewrite multi-qubit
  gates into {1-qubit gates, cx} (e.g. ``swap -> 3 cx``, the 6-cx Toffoli).
* :func:`one_qubit_to_basis` — numeric ZYZ extraction of (theta, phi, lambda)
  from any single-qubit unitary, then either a single ``u`` gate or the
  hardware sequence ``rz(phi+pi) sx rz(theta+pi) sx rz(lam)``.

All identities are verified numerically in the test suite against the gate
matrices, so a wrong rule cannot survive.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.errors import TranspilerError
from repro.quantum import gates as _gates
from repro.quantum.circuit import Instruction
from repro.quantum.parameters import is_symbolic

_PI = math.pi
_ATOL = 1e-9


def zyz_angles(matrix: np.ndarray) -> tuple[float, float, float]:
    """Extract U(theta, phi, lam) angles from a 2x2 unitary, up to phase.

    Returns (theta, phi, lam) such that ``u_matrix(theta, phi, lam)`` equals
    ``matrix`` up to a global phase.
    """
    if matrix.shape != (2, 2):
        raise TranspilerError(f"zyz_angles needs a 2x2 matrix, got {matrix.shape}")
    # Remove global phase by making the matrix special-unitary.
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    su = matrix / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    # In SU(2), su = [[e^{-i(p+l)/2} cos, -e^{-i(p-l)/2} sin],
    #                 [e^{+i(p-l)/2} sin,  e^{+i(p+l)/2} cos]]
    # with cos(t/2), sin(t/2) >= 0 for t in [0, pi], so a single entry's
    # phase *is* half the angle sum/difference.  (Differencing the phases
    # of opposite corners — the old formulation — loses a 2*pi whenever an
    # entry's phase lands exactly on the -pi/+pi branch cut, e.g. the real
    # negative cosine of ry(t) for t > pi, which shifted both phi and lam
    # by pi: a different unitary, not a global phase.)
    if abs(su[1, 0]) <= _ATOL:
        # theta == 0: only phi+lam is defined; fold it all into lam.
        phi = 0.0
        lam = 2.0 * cmath.phase(su[1, 1])
    elif abs(su[0, 0]) <= _ATOL:
        # theta == pi: only phi-lam is defined; fold into phi.
        lam = 0.0
        phi = 2.0 * cmath.phase(su[1, 0])
    else:
        phi_plus_lam = 2.0 * cmath.phase(su[1, 1])
        phi_minus_lam = 2.0 * cmath.phase(su[1, 0])
        phi = (phi_plus_lam + phi_minus_lam) / 2.0
        lam = (phi_plus_lam - phi_minus_lam) / 2.0
    return theta, phi, lam


def one_qubit_to_basis(
    matrix: np.ndarray, qubit: int, basis: tuple[str, ...]
) -> list[Instruction]:
    """Rewrite a single-qubit unitary into instructions from ``basis``."""
    theta, phi, lam = zyz_angles(matrix)
    if "u" in basis:
        if abs(theta) < _ATOL and abs(phi) < _ATOL and abs(lam) < _ATOL:
            return []
        return [Instruction("u", (qubit,), params=(theta, phi, lam))]
    if "rz" in basis and "sx" in basis:
        return _u_to_zsx(theta, phi, lam, qubit)
    raise TranspilerError(
        f"cannot express a 1-qubit unitary in basis {basis}; "
        "need 'u' or ('rz' and 'sx')"
    )


def _wrap_angle(angle: float) -> float:
    """Wrap to (-pi, pi]."""
    wrapped = math.fmod(angle + _PI, 2 * _PI)
    if wrapped <= 0:
        wrapped += 2 * _PI
    return wrapped - _PI


def _u_to_zsx(theta: float, phi: float, lam: float, qubit: int) -> list[Instruction]:
    """U(theta, phi, lam) = RZ(phi+pi) SX RZ(theta+pi) SX RZ(lam), up to phase.

    Degenerate angles collapse to shorter sequences (pure RZ when theta = 0).
    """
    def rz(angle: float) -> Instruction | None:
        angle = _wrap_angle(angle)
        if abs(angle) < _ATOL:
            return None
        return Instruction("rz", (qubit,), params=(angle,))

    theta_w = _wrap_angle(theta)
    if abs(theta_w) < _ATOL:
        only = rz(phi + lam)
        return [only] if only else []
    seq: list[Instruction | None] = [
        rz(lam),
        Instruction("sx", (qubit,)),
        rz(theta + _PI),
        Instruction("sx", (qubit,)),
        rz(phi + _PI),
    ]
    return [inst for inst in seq if inst is not None]


# ---------------------------------------------------------------------------
# Structural expansions: name -> builder(params, qubits) -> list[Instruction]
# ---------------------------------------------------------------------------


def _i(name: str, qubits: tuple[int, ...], *params: float) -> Instruction:
    return Instruction(name, qubits, params=tuple(params))


def _expand_swap(params, qs):
    a, b = qs
    return [_i("cx", (a, b)), _i("cx", (b, a)), _i("cx", (a, b))]


def _expand_cz(params, qs):
    a, b = qs
    return [_i("h", (b,)), _i("cx", (a, b)), _i("h", (b,))]


def _expand_cy(params, qs):
    a, b = qs
    return [_i("sdg", (b,)), _i("cx", (a, b)), _i("s", (b,))]


def _expand_ch(params, qs):
    a, b = qs
    return [
        _i("s", (b,)),
        _i("h", (b,)),
        _i("t", (b,)),
        _i("cx", (a, b)),
        _i("tdg", (b,)),
        _i("h", (b,)),
        _i("sdg", (b,)),
    ]


def _expand_crz(params, qs):
    (theta,) = params
    a, b = qs
    return [
        _i("rz", (b,), theta / 2),
        _i("cx", (a, b)),
        _i("rz", (b,), -theta / 2),
        _i("cx", (a, b)),
    ]


def _expand_cry(params, qs):
    (theta,) = params
    a, b = qs
    return [
        _i("ry", (b,), theta / 2),
        _i("cx", (a, b)),
        _i("ry", (b,), -theta / 2),
        _i("cx", (a, b)),
    ]


def _expand_crx(params, qs):
    (theta,) = params
    a, b = qs
    return [_i("h", (b,))] + _expand_crz(params, qs) + [_i("h", (b,))]


def _expand_cp(params, qs):
    (lam,) = params
    a, b = qs
    return [
        _i("p", (a,), lam / 2),
        _i("cx", (a, b)),
        _i("p", (b,), -lam / 2),
        _i("cx", (a, b)),
        _i("p", (b,), lam / 2),
    ]


def _expand_csx(params, qs):
    a, b = qs
    return [_i("p", (a,), _PI / 4)] + _expand_crx((_PI / 2,), qs)


def _expand_csxdg(params, qs):
    a, b = qs
    return [_i("p", (a,), -_PI / 4)] + _expand_crx((-_PI / 2,), qs)


def _expand_rzz(params, qs):
    (theta,) = params
    a, b = qs
    return [_i("cx", (a, b)), _i("rz", (b,), theta), _i("cx", (a, b))]


def _expand_rxx(params, qs):
    a, b = qs
    return (
        [_i("h", (a,)), _i("h", (b,))]
        + _expand_rzz(params, qs)
        + [_i("h", (a,)), _i("h", (b,))]
    )


def _expand_ryy(params, qs):
    a, b = qs
    return (
        [_i("rx", (a,), _PI / 2), _i("rx", (b,), _PI / 2)]
        + _expand_rzz(params, qs)
        + [_i("rx", (a,), -_PI / 2), _i("rx", (b,), -_PI / 2)]
    )


def _expand_iswap(params, qs):
    a, b = qs
    return [
        _i("s", (a,)),
        _i("s", (b,)),
        _i("h", (a,)),
        _i("cx", (a, b)),
        _i("cx", (b, a)),
        _i("h", (b,)),
    ]


def _expand_ccx(params, qs):
    a, b, c = qs
    return [
        _i("h", (c,)),
        _i("cx", (b, c)),
        _i("tdg", (c,)),
        _i("cx", (a, c)),
        _i("t", (c,)),
        _i("cx", (b, c)),
        _i("tdg", (c,)),
        _i("cx", (a, c)),
        _i("t", (b,)),
        _i("t", (c,)),
        _i("h", (c,)),
        _i("cx", (a, b)),
        _i("t", (a,)),
        _i("tdg", (b,)),
        _i("cx", (a, b)),
    ]


def _expand_ccz(params, qs):
    a, b, c = qs
    return [_i("h", (c,))] + _expand_ccx(params, qs) + [_i("h", (c,))]


def _expand_cswap(params, qs):
    a, b, c = qs
    return [_i("cx", (c, b))] + _expand_ccx(params, (a, b, c)) + [_i("cx", (c, b))]


_EXPANSIONS = {
    "swap": _expand_swap,
    "cz": _expand_cz,
    "cy": _expand_cy,
    "ch": _expand_ch,
    "crx": _expand_crx,
    "cry": _expand_cry,
    "crz": _expand_crz,
    "cp": _expand_cp,
    "csx": _expand_csx,
    "csxdg": _expand_csxdg,
    "rxx": _expand_rxx,
    "ryy": _expand_ryy,
    "rzz": _expand_rzz,
    "iswap": _expand_iswap,
    "ccx": _expand_ccx,
    "ccz": _expand_ccz,
    "cswap": _expand_cswap,
}


def expand_instruction(inst: Instruction) -> list[Instruction]:
    """One structural rewrite step; returns [inst] when no rule applies."""
    rule = _EXPANSIONS.get(inst.name)
    if rule is None:
        return [inst]
    return rule(inst.params, inst.qubits)


def decompose_to_basis(
    instructions: list[Instruction], basis: tuple[str, ...]
) -> list[Instruction]:
    """Rewrite a full instruction list into the target basis.

    Multi-qubit gates are structurally expanded until only basis gates and
    1-qubit gates remain; non-basis 1-qubit runs are re-synthesised via ZYZ.
    """
    basis = tuple(b.lower() for b in basis)
    if "cx" not in basis:
        raise TranspilerError(f"target basis {basis} must contain 'cx'")
    out: list[Instruction] = []
    for inst in instructions:
        out.extend(_decompose_one(inst, basis))
    return out


def _decompose_one(inst: Instruction, basis: tuple[str, ...]) -> list[Instruction]:
    if inst.name in ("measure", "reset", "barrier"):
        return [inst]
    if inst.name in basis:
        return [inst]
    if len(inst.qubits) == 1:
        if any(is_symbolic(p) for p in inst.params):
            # ZYZ extraction is numeric; a symbolic angle has no matrix yet.
            # The service's bound-template fast path catches this and falls
            # back to transpiling each bound point concretely.
            raise TranspilerError(
                f"cannot resynthesise 1-qubit gate '{inst.name}' with "
                f"symbolic parameter(s) into basis {basis}; bind the circuit "
                "or include the gate in the basis"
            )
        return one_qubit_to_basis(inst.matrix(), inst.qubits[0], basis)
    expanded = expand_instruction(inst)
    if len(expanded) == 1 and expanded[0].name == inst.name:
        raise TranspilerError(
            f"no decomposition rule for gate '{inst.name}' into basis {basis}"
        )
    result: list[Instruction] = []
    for sub in expanded:
        result.extend(_decompose_one(sub, basis))
    return result
