"""Transpiler: basis decomposition, layout, SWAP routing, peephole passes."""

from repro.quantum.transpiler.decompose import (
    decompose_to_basis,
    one_qubit_to_basis,
    zyz_angles,
)
from repro.quantum.transpiler.passes import (
    cancel_adjacent_inverses,
    drop_barriers,
    merge_rotations,
    optimize,
)
from repro.quantum.transpiler.passmanager import (
    CancelInverses,
    DecomposeToBasis,
    DenseLayout,
    DropBarriers,
    MergeRotations,
    PassManager,
    PassRecord,
    Route,
    TranspilerPass,
    build_pass_manager,
)
from repro.quantum.transpiler.pipeline import (
    DEFAULT_BASIS,
    ambient_optimization_level,
    resolve_lowering,
    resolve_optimization_level,
    transpile,
    transpile_core,
)
from repro.quantum.transpiler.routing import Layout, dense_layout, route

__all__ = [
    "DEFAULT_BASIS",
    "CancelInverses",
    "DecomposeToBasis",
    "DenseLayout",
    "DropBarriers",
    "Layout",
    "MergeRotations",
    "PassManager",
    "PassRecord",
    "Route",
    "TranspilerPass",
    "ambient_optimization_level",
    "build_pass_manager",
    "cancel_adjacent_inverses",
    "decompose_to_basis",
    "dense_layout",
    "drop_barriers",
    "merge_rotations",
    "one_qubit_to_basis",
    "optimize",
    "resolve_lowering",
    "resolve_optimization_level",
    "route",
    "transpile",
    "transpile_core",
    "zyz_angles",
]
