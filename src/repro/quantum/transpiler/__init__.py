"""Transpiler: basis decomposition, layout, SWAP routing, peephole passes."""

from repro.quantum.transpiler.decompose import (
    decompose_to_basis,
    one_qubit_to_basis,
    zyz_angles,
)
from repro.quantum.transpiler.passes import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize,
)
from repro.quantum.transpiler.pipeline import DEFAULT_BASIS, transpile
from repro.quantum.transpiler.routing import Layout, dense_layout, route

__all__ = [
    "DEFAULT_BASIS",
    "Layout",
    "cancel_adjacent_inverses",
    "decompose_to_basis",
    "dense_layout",
    "merge_rotations",
    "one_qubit_to_basis",
    "optimize",
    "route",
    "transpile",
    "zyz_angles",
]
