"""An introspectable pass manager over the transpiler's pure passes.

The monolithic ``transpile()`` body is recast as a linear stack of named
passes (in the style of qiskit-terra's ``transpiler/passmanager.py``): each
pass is a small object with a ``name`` and a ``run(instructions, properties)``
method that transforms the instruction stream while reading/writing a shared
*property set* (coupling map, basis, chosen layout, final layout).  The
manager times every pass and records instruction-count deltas, which is what
``repro transpile --explain`` and the report appendix surface.

The stack built by :func:`build_pass_manager` is behavior-identical to the
historical ``transpile()`` for barrier-free circuits at every optimization
level; the one sanctioned difference is :class:`DropBarriers`, which removes
barrier directives at level >= 1 (barriers draw nothing in the samplers, so
counts are unchanged — see ``tests/quantum/test_transpile_parity.py``).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import TranspilerError
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler.decompose import decompose_to_basis
from repro.quantum.transpiler.passes import (
    cancel_adjacent_inverses,
    drop_barriers,
    merge_rotations,
)
from repro.quantum.transpiler.routing import Layout, dense_layout, route


@dataclass(frozen=True)
class PassRecord:
    """One pass's contribution to a transpilation: time and size delta."""

    name: str
    seconds: float
    instructions_in: int
    instructions_out: int

    @property
    def delta(self) -> int:
        return self.instructions_out - self.instructions_in


class TranspilerPass:
    """Base class: a named transform over the instruction stream.

    ``properties`` is the shared property set; the keys every pass may read
    are ``circuit`` (the *source* circuit), ``coupling_map``, ``basis``,
    ``initial_layout``, ``layout`` and ``final_layout`` (both
    :class:`~repro.quantum.transpiler.routing.Layout` or ``None``).
    """

    name = "pass"

    def run(
        self, instructions: list[Instruction], properties: dict
    ) -> list[Instruction]:
        raise NotImplementedError


class DecomposeToBasis(TranspilerPass):
    """Lower every instruction to the target basis gate set."""

    name = "DecomposeToBasis"

    def run(self, instructions, properties):
        return decompose_to_basis(instructions, properties["basis"])


class DenseLayout(TranspilerPass):
    """Choose (or validate) the logical->physical placement.

    Width and explicit-layout validation live here so the error order matches
    the historical monolithic pipeline exactly: width first, then layout
    length, then layout range.
    """

    name = "DenseLayout"

    def run(self, instructions, properties):
        circuit: QuantumCircuit = properties["circuit"]
        coupling_map: CouplingMap = properties["coupling_map"]
        initial_layout = properties.get("initial_layout")
        if circuit.num_qubits > coupling_map.num_qubits:
            raise TranspilerError(
                f"circuit needs {circuit.num_qubits} qubits, coupling map has "
                f"{coupling_map.num_qubits}"
            )
        if initial_layout is not None:
            if len(initial_layout) != circuit.num_qubits:
                raise TranspilerError(
                    f"initial_layout has {len(initial_layout)} entries for a "
                    f"{circuit.num_qubits}-qubit circuit"
                )
            for phys in initial_layout:
                if not 0 <= phys < coupling_map.num_qubits:
                    raise TranspilerError(
                        f"initial_layout entry {phys} is outside the device "
                        f"(0..{coupling_map.num_qubits - 1})"
                    )
            properties["layout"] = Layout.from_sequence(list(initial_layout))
        else:
            properties["layout"] = dense_layout(circuit, coupling_map)
        return instructions


class Route(TranspilerPass):
    """Insert SWAPs so every 2-qubit gate sits on a coupled edge."""

    name = "Route"

    def run(self, instructions, properties):
        routed, final_layout = route(
            instructions, properties["layout"], properties["coupling_map"]
        )
        properties["final_layout"] = final_layout
        return routed


class MergeRotations(TranspilerPass):
    """Fuse adjacent same-axis rotations; drop identity rotations."""

    name = "MergeRotations"

    def run(self, instructions, properties):
        return merge_rotations(instructions)


class CancelInverses(TranspilerPass):
    """Cancel adjacent self-inverse pairs (``h h``, ``s sdg``, ...)."""

    name = "CancelInverses"

    def run(self, instructions, properties):
        return cancel_adjacent_inverses(instructions)


class DropBarriers(TranspilerPass):
    """Remove barrier directives: they are sampling no-ops downstream.

    Both the serial simulator and the vectorised batch engine draw nothing
    for a barrier, so removing them cannot change counts; doing it before
    the peephole passes lets merges/cancellations see across what used to be
    barrier boundaries.
    """

    name = "DropBarriers"

    def run(self, instructions, properties):
        return drop_barriers(instructions)


class PassManager:
    """Run a fixed pass stack over a circuit, recording per-pass telemetry.

    After :meth:`run`, ``records`` holds one :class:`PassRecord` per pass (in
    execution order) and ``property_set`` the final shared properties.
    """

    def __init__(
        self,
        passes: Sequence[TranspilerPass],
        coupling_map: CouplingMap | None = None,
        basis: Sequence[str] = (),
        initial_layout: Sequence[int] | None = None,
    ) -> None:
        self.passes = list(passes)
        self.coupling_map = coupling_map
        self.basis = tuple(basis)
        self.initial_layout = (
            list(initial_layout) if initial_layout is not None else None
        )
        self.records: list[PassRecord] = []
        self.property_set: dict = {}

    def run(self, circuit: QuantumCircuit) -> QuantumCircuit:
        """Transpile one circuit, refreshing ``records``/``property_set``."""
        properties: dict = {
            "circuit": circuit,
            "coupling_map": self.coupling_map,
            "basis": self.basis,
            "initial_layout": self.initial_layout,
            "layout": None,
            "final_layout": None,
        }
        instructions = list(circuit.instructions)
        records: list[PassRecord] = []
        for stage in self.passes:
            before = len(instructions)
            start = time.perf_counter()
            instructions = stage.run(instructions, properties)
            records.append(
                PassRecord(
                    stage.name,
                    time.perf_counter() - start,
                    before,
                    len(instructions),
                )
            )
        self.records = records
        self.property_set = properties

        if self.coupling_map is not None:
            num_qubits = self.coupling_map.num_qubits
        else:
            num_qubits = circuit.num_qubits
        out = QuantumCircuit(
            num_qubits, circuit.num_clbits, name=f"{circuit.name}_t"
        )
        out._instructions = instructions
        out.metadata = dict(circuit.metadata)
        layout = properties["layout"]
        final_layout = properties["final_layout"]
        if layout is None:
            # No layout pass ran (no coupling constraint): both placements are
            # the identity, and both keys are always present for consumers.
            identity = {i: i for i in range(circuit.num_qubits)}
            out.metadata["layout"] = dict(identity)
            out.metadata["final_layout"] = dict(identity)
        else:
            out.metadata["layout"] = layout.to_dict()
            out.metadata["final_layout"] = final_layout.to_dict()
        return out


def build_pass_manager(
    coupling_map: CouplingMap | None = None,
    basis: Sequence[str] = (),
    initial_layout: Sequence[int] | None = None,
    optimization_level: int = 1,
) -> PassManager:
    """The default pass stack for a target, mirroring the historical pipeline.

    Level 0: lowering only (decompose, and layout/route when a coupling map
    constrains connectivity).  Level 1 adds ``DropBarriers`` plus one
    merge/cancel peephole round; level 2 repeats the peephole round.
    """
    passes: list[TranspilerPass] = [DecomposeToBasis()]
    if coupling_map is not None:
        # Routing SWAPs land outside the basis; decompose the residue too.
        passes += [DenseLayout(), Route(), DecomposeToBasis()]
    if optimization_level >= 1:
        passes += [DropBarriers(), MergeRotations(), CancelInverses()]
    if optimization_level >= 2:
        passes += [MergeRotations(), CancelInverses()]
    return PassManager(
        passes,
        coupling_map=coupling_map,
        basis=basis,
        initial_layout=initial_layout,
    )
