"""``repro.quantum.analysis`` — single-walk static circuit analysis.

One pass over a :class:`~repro.quantum.circuit.QuantumCircuit` produces two
artifacts that the rest of the stack shares instead of re-deriving:

* :class:`CircuitFacts` — width, depth, gate histogram, conditional usage,
  measurement coverage, qubit/clbit dataflow (touched/measured/written/read
  sets), trajectory eligibility and the gate-structure fingerprint.  The
  simulator's path choice, the batchsim planner's group classification and
  the transpiler's pre-checks all read these facts, so a routing decision can
  never disagree with the analyzer.
* a :class:`Diagnostic` stream with stable codes — ``QA1xx`` errors (the
  circuit cannot execute meaningfully), ``QA2xx`` warnings (suspicious but
  runnable), ``QA3xx`` info — each carrying a severity, the offending
  instruction index and a one-line explanation.  The
  :class:`~repro.quantum.execution.service.ExecutionService` pre-flight
  stage (``validate="warn"|"strict"``), the evalsuite's ``static_error``
  grading and the ``repro lint`` CLI all consume the same stream.

This package deliberately imports only the circuit/gate layer (never the
simulator or the execution service), so every higher layer may depend on it
without cycles.
"""

from repro.quantum.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    ERROR,
    INFO,
    WARNING,
    CircuitAnalysis,
    Diagnostic,
    analyze_circuit,
    structural_errors,
    unbound_parameter_errors,
)
from repro.quantum.analysis.facts import (
    CircuitFacts,
    circuit_facts,
    structure_fingerprint,
)

__all__ = [
    "CircuitAnalysis",
    "CircuitFacts",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "ERROR",
    "INFO",
    "WARNING",
    "analyze_circuit",
    "circuit_facts",
    "structural_errors",
    "structure_fingerprint",
    "unbound_parameter_errors",
]
