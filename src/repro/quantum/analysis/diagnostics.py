"""Coded diagnostics over :class:`~repro.quantum.analysis.facts.CircuitFacts`.

Severity bands (stable codes — tooling and tests key on them):

* ``QA1xx`` **errors** — the circuit cannot execute with defined semantics;
  the simulator refuses these and the service's ``validate="strict"``
  pre-flight rejects them before any cache or pool traffic:
  ``QA101`` gate on an out-of-range qubit, ``QA102`` conditional on a
  never-written (or out-of-range) clbit, ``QA103`` measurement into an
  out-of-range clbit, ``QA104`` non-unitary (or unregistered) gate matrix,
  ``QA105`` unbound symbolic parameter reaching execution.  ``QA105`` is an
  *execution-boundary* error: templates are legitimate programs for lint and
  analysis (``analyze_circuit`` does not emit it), but the
  ``ExecutionService`` pre-flight raises it in every validate mode — see
  :func:`unbound_parameter_errors`.
* ``QA2xx`` **warnings** — runnable but suspicious: ``QA201`` unused
  qubits, ``QA202`` gate after measurement on a measured qubit, ``QA203``
  unreachable conditional (tests a nonzero value before any write), and
  ``QA204`` circuit too wide for dense simulation on the configured
  executor.
* ``QA3xx`` **info** — ``QA301`` depth/width statistics.
"""

from __future__ import annotations

import numpy as np

from repro.quantum import gates as _gates
from repro.quantum.analysis.facts import CircuitFacts, circuit_facts
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.parameters import is_symbolic, iter_parameters

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Code -> (severity, one-line description).  The README's diagnostic table
#: and ``repro lint``'s legend render from this mapping.
DIAGNOSTIC_CODES: dict[str, tuple[str, str]] = {
    "QA101": (ERROR, "gate references a qubit outside the declared registers"),
    "QA102": (ERROR, "conditional reads a clbit no measurement ever writes"),
    "QA103": (ERROR, "measurement writes a clbit outside the declared registers"),
    "QA104": (ERROR, "gate matrix is non-unitary or unregistered"),
    "QA105": (ERROR, "unbound symbolic parameter reaches execution"),
    "QA201": (WARNING, "declared qubit is never used"),
    "QA202": (WARNING, "gate applied to a qubit after it was measured"),
    "QA203": (WARNING, "conditional tests a nonzero value before any write"),
    "QA204": (WARNING, "circuit too wide for dense simulation"),
    "QA301": (INFO, "circuit depth/width statistics"),
}

#: Tolerance for the unitarity check, matched to the simulator's norm guard
#: (:data:`repro.quantum.simulator.NORM_ATOL`): a matrix passing this check
#: cannot corrupt the state norm past what sampling accepts.
UNITARY_ATOL = 1e-9


class Diagnostic:
    """One analyzer finding: stable code, severity, location, explanation."""

    __slots__ = ("code", "severity", "index", "message")

    def __init__(
        self, code: str, index: int | None, message: str
    ) -> None:
        self.code = code
        self.severity = DIAGNOSTIC_CODES[code][0]
        self.index = index
        self.message = message

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self) -> str:
        """The one-line form ``repro lint`` prints."""
        where = f"@{self.index}" if self.index is not None else "@-"
        return f"{self.code} {self.severity:7s} {where:>5s}  {self.message}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Diagnostic):
            return NotImplemented
        return (self.code, self.index, self.message) == (
            other.code, other.index, other.message
        )

    def __hash__(self) -> int:
        return hash((self.code, self.index, self.message))

    def __repr__(self) -> str:
        return f"Diagnostic({self.code}, index={self.index}, {self.message!r})"


class CircuitAnalysis:
    """The analyzer's full output: facts plus the diagnostic stream."""

    __slots__ = ("facts", "diagnostics")

    def __init__(
        self, facts: CircuitFacts, diagnostics: list[Diagnostic]
    ) -> None:
        self.facts = facts
        self.diagnostics = list(diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """No ``QA1xx`` error (warnings and info do not fail a circuit)."""
        return not self.errors


def structural_errors(facts: CircuitFacts) -> list[Diagnostic]:
    """The cheap ``QA1xx`` subset derivable from facts alone (no matrices).

    This is what the simulator's own pre-check uses: every structural error
    here makes :func:`repro.quantum.simulator.simulate_counts` raise, which
    keeps the analyzer and the engine in exact agreement about what is
    executable.  ``QA104`` needs gate matrices and is deliberately excluded
    (the engines catch non-unitary matrices through their norm guards).
    """
    out: list[Diagnostic] = []
    for index, qubit in facts.bad_qubit_refs:
        out.append(
            Diagnostic(
                "QA101",
                index,
                f"qubit {qubit} out of range for a "
                f"{facts.num_qubits}-qubit circuit",
            )
        )
    for read in facts.never_written_reads:
        if not 0 <= read.clbit < facts.num_clbits:
            detail = (
                f"clbit {read.clbit} out of range for "
                f"{facts.num_clbits} clbit(s)"
            )
        else:
            detail = f"clbit {read.clbit} is never written by any measurement"
        out.append(
            Diagnostic(
                "QA102",
                read.index,
                f"condition ({read.clbit}, {read.value}) is undefined: {detail}",
            )
        )
    for index, clbit in facts.bad_clbit_writes:
        out.append(
            Diagnostic(
                "QA103",
                index,
                f"measurement into clbit {clbit} out of range for "
                f"{facts.num_clbits} clbit(s)",
            )
        )
    return out


def unbound_parameter_errors(circuit: QuantumCircuit) -> list[Diagnostic]:
    """``QA105``: one diagnostic per instruction carrying an unbound symbol.

    Deliberately *not* part of :func:`analyze_circuit`: a parameterized
    template is a legitimate program for lint/analysis purposes, and only
    becomes an error at the execution boundary.  The ``ExecutionService``
    pre-flight calls this in **every** validate mode (including ``"off"``) —
    executing a symbol is meaningless, not merely suspicious.
    """
    out: list[Diagnostic] = []
    for index, inst in enumerate(circuit):
        names = sorted({p.name for p in iter_parameters(inst.params)})
        if names:
            out.append(
                Diagnostic(
                    "QA105",
                    index,
                    f"gate '{inst.name}' has unbound parameter(s) "
                    f"{', '.join(names)}; call circuit.bind({{...}}) before "
                    "execution",
                )
            )
    return out


def _unitarity_errors(circuit: QuantumCircuit) -> list[Diagnostic]:
    """``QA104``: flag instructions whose matrix is missing or non-unitary.

    Gate specs are a mutable registry (custom registrations may supply
    arbitrary builders), so the matrix of each distinct ``(name, params)``
    pair is checked once against ``U @ U† = I``.
    """
    out: list[Diagnostic] = []
    checked: dict[tuple, bool] = {}
    for index, inst in enumerate(circuit):
        if inst.name in _gates.NON_UNITARY:
            continue
        if any(is_symbolic(p) for p in inst.params):
            # A template gate has no matrix yet; unitarity is judged on the
            # bound instances, and unboundness itself is QA105, not QA104.
            continue
        key = (inst.name, inst.params)
        verdict = checked.get(key)
        if verdict is None:
            try:
                matrix = np.asarray(_gates.gate_matrix(inst.name, inst.params))
                identity = np.eye(matrix.shape[0])
                verdict = matrix.shape[0] == matrix.shape[1] and np.allclose(
                    matrix @ matrix.conj().T, identity, atol=UNITARY_ATOL
                )
            except Exception:  # noqa: BLE001 - unknown gate = no unitary
                verdict = False
            checked[key] = verdict
        if not verdict:
            out.append(
                Diagnostic(
                    "QA104",
                    index,
                    f"gate '{inst.name}' has no unitary matrix for params "
                    f"{inst.params}",
                )
            )
    return out


#: How many unused qubit indices the aggregated QA201 message spells out.
_MAX_UNUSED_LISTED = 8


def analyze_circuit(
    circuit: QuantumCircuit,
    facts: CircuitFacts | None = None,
    max_qubits: int | None = None,
) -> CircuitAnalysis:
    """Run the full analyzer: facts (fingerprinted) plus every diagnostic.

    ``facts`` may be supplied by a caller that already walked the circuit;
    ``max_qubits`` enables the ``QA204`` over-wide warning against a
    configured executor/backend cap (e.g.
    :data:`repro.quantum.simulator.MAX_DENSE_QUBITS` or a backend's
    ``max_active_qubits``).
    """
    if facts is None:
        facts = circuit_facts(circuit, fingerprint=True)
    diagnostics: list[Diagnostic] = list(structural_errors(facts))
    diagnostics.extend(_unitarity_errors(circuit))

    unused = facts.unused_qubits
    if unused:
        listed = ", ".join(str(q) for q in unused[:_MAX_UNUSED_LISTED])
        more = len(unused) - _MAX_UNUSED_LISTED
        diagnostics.append(
            Diagnostic(
                "QA201",
                None,
                f"{len(unused)} declared qubit(s) never used: {listed}"
                + (f" (+{more} more)" if more > 0 else ""),
            )
        )
    for index, qubit in facts.gates_after_measure:
        diagnostics.append(
            Diagnostic(
                "QA202",
                index,
                f"operation on qubit {qubit} after it was measured "
                "(disqualifies the fast sampling path)",
            )
        )
    never_written = {read.index for read in facts.never_written_reads}
    for read in facts.conditional_reads:
        if read.index in never_written or read.written_before:
            continue
        if read.value != 0:
            diagnostics.append(
                Diagnostic(
                    "QA203",
                    read.index,
                    f"condition ({read.clbit}, {read.value}) tested before "
                    "the clbit is written; the bit is still 0 so the "
                    "instruction never fires",
                )
            )
    if max_qubits is not None and len(facts.touched_qubits) > max_qubits:
        diagnostics.append(
            Diagnostic(
                "QA204",
                None,
                f"circuit touches {len(facts.touched_qubits)} qubits; dense "
                f"simulation on the configured executor is capped at "
                f"{max_qubits}",
            )
        )
    diagnostics.append(
        Diagnostic(
            "QA301",
            None,
            f"width {facts.num_qubits}q/{facts.num_clbits}c "
            f"(touched {len(facts.touched_qubits)}), depth {facts.depth}, "
            f"size {facts.size}, conditionals {facts.num_conditionals}, "
            f"fingerprint {facts.structure_fingerprint or '-'}",
        )
    )
    return CircuitAnalysis(facts, diagnostics)
