"""The :class:`CircuitFacts` record and its single-walk extractor.

:func:`circuit_facts` walks the instruction list exactly once and records
everything the downstream consumers ask about a circuit — the serial
simulator's path choice, the batchsim planner's group classification, the
pre-flight validator's dataflow checks and the lint CLI's statistics all read
the same record.  The walk never builds gate matrices and never touches the
simulator, so it is cheap enough to sit on the execution hot path and safe to
import from every layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.parameters import iter_parameters
from repro.utils.rng import stable_hash


def structure_fingerprint(circuit: QuantumCircuit) -> str:
    """Hash of the gate *structure*: everything the full circuit fingerprint
    covers except parameters, so two sweep points of one ansatz group
    together while arbitrary-angle rotations stay distinct per unit.

    Computed **once per structure**: circuits produced by
    :meth:`QuantumCircuit.bind` share their template's fingerprint (the
    structure is the template's by construction), and the template itself
    memoises the digest keyed on its instruction count, so an N-point sweep
    hashes the structure a single time.  Mutating a circuit after binding
    changes its instruction count, which invalidates both fast paths.
    """
    provenance = getattr(circuit, "_bound_from", None)
    if provenance is not None and provenance.matches(circuit):
        return structure_fingerprint(provenance.template)
    size = len(circuit._instructions)
    memo = getattr(circuit, "_structure_fp_memo", None)
    if memo is not None and memo[0] == size:
        return memo[1]
    payload = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits, inst.condition)
            for inst in circuit
        ),
    )
    fp = f"{stable_hash('structure', payload):016x}"
    circuit._structure_fp_memo = (size, fp)
    return fp


@dataclass(frozen=True)
class ConditionalRead:
    """One classically-conditioned instruction, as seen during the walk."""

    index: int  #: instruction index in the circuit
    clbit: int  #: classical bit the condition reads
    value: int  #: value the condition tests for
    written_before: bool  #: had any measure written the clbit by this point?


@dataclass(frozen=True)
class CircuitFacts:
    """Everything one walk of the instruction stream can know statically.

    Dataflow sets use the circuit's *own* index space (the declared
    registers), not any device's.  Structural-defect records (out-of-range
    references, dangling conditionals) are kept as raw ``(index, bit)``
    tuples here; :mod:`repro.quantum.analysis.diagnostics` turns them into
    coded :class:`~repro.quantum.analysis.diagnostics.Diagnostic` objects.
    """

    num_qubits: int
    num_clbits: int
    num_instructions: int
    size: int  #: non-barrier instruction count (mirrors ``circuit.size()``)
    depth: int
    gate_counts: dict[str, int] = field(default_factory=dict)
    touched_qubits: frozenset[int] = frozenset()
    measured_qubits: frozenset[int] = frozenset()
    written_clbits: frozenset[int] = frozenset()  #: targets of measure
    read_clbits: frozenset[int] = frozenset()  #: read by conditions
    num_conditionals: int = 0
    has_reset: bool = False
    has_measurements: bool = False
    #: ``(instruction index, qubit)`` for gate/measure/reset qubit references
    #: outside ``0..num_qubits-1`` (only reachable by bypassing the builder).
    bad_qubit_refs: tuple[tuple[int, int], ...] = ()
    #: ``(instruction index, clbit)`` for measure targets outside the
    #: declared classical registers.
    bad_clbit_writes: tuple[tuple[int, int], ...] = ()
    #: Every conditioned instruction, with write-ordering information.
    conditional_reads: tuple[ConditionalRead, ...] = ()
    #: ``(instruction index, qubit)`` for non-measure operations touching an
    #: already-measured qubit (what disqualifies the fast sampling path).
    gates_after_measure: tuple[tuple[int, int], ...] = ()
    #: Unbound symbolic parameter names in first-appearance order — the
    #: circuit's *parameter signature*.  Empty for concrete circuits.
    parameters: tuple[str, ...] = ()
    #: Gate-structure hash; ``None`` unless requested (it costs a second
    #: pass over the instruction tuples plus a BLAKE2b digest).
    structure_fingerprint: str | None = None

    # -- derived views ----------------------------------------------------------

    @property
    def unused_qubits(self) -> tuple[int, ...]:
        """Declared qubits no instruction touches (sorted)."""
        return tuple(
            q for q in range(self.num_qubits) if q not in self.touched_qubits
        )

    @property
    def never_written_reads(self) -> tuple[ConditionalRead, ...]:
        """Conditionals whose clbit no measure in the whole circuit writes."""
        return tuple(
            read
            for read in self.conditional_reads
            if not 0 <= read.clbit < self.num_clbits
            or read.clbit not in self.written_clbits
        )

    @property
    def structurally_defective(self) -> bool:
        """True when the circuit cannot execute with defined semantics."""
        return bool(
            self.bad_qubit_refs
            or self.bad_clbit_writes
            or self.never_written_reads
        )

    @property
    def is_parameterized(self) -> bool:
        """Whether any instruction carries an unbound symbol."""
        return bool(self.parameters)

    @property
    def trajectory_eligible(self) -> bool:
        """Whether the per-shot noise-draw schedule is state-independent.

        Mirrors :func:`repro.quantum.simulator.trajectory_draw_plan`
        returning a plan: only conditional instructions make the draw
        schedule depend on measured bits.
        """
        return self.num_conditionals == 0

    def is_fast_path(self, noise: NoiseModel | None) -> bool:
        """Whether sampling the final state reproduces per-shot semantics.

        The structural half (no conditionals, no reset, no gate on a
        measured qubit) is invariant under qubit relabelling, so facts of a
        circuit and of its compacted form answer identically.
        """
        if noise is not None and not noise.is_trivial:
            # Readout-only noise could in principle use the fast path, but
            # flipping bits per shot costs the same as the trajectory loop,
            # so only the fully-ideal case takes it.
            return False
        return not (
            self.num_conditionals
            or self.has_reset
            or self.gates_after_measure
        )


def circuit_facts(
    circuit: QuantumCircuit, fingerprint: bool = False
) -> CircuitFacts:
    """Extract :class:`CircuitFacts` in one pass over the instructions.

    ``fingerprint=True`` additionally fills
    :attr:`CircuitFacts.structure_fingerprint` (skipped by default: the
    digest is pure overhead for the simulator's path choice).
    """
    num_qubits = circuit.num_qubits
    num_clbits = circuit.num_clbits
    gate_counts: dict[str, int] = {}
    touched: set[int] = set()
    measured: set[int] = set()
    written: set[int] = set()
    read: set[int] = set()
    bad_qubit_refs: list[tuple[int, int]] = []
    bad_clbit_writes: list[tuple[int, int]] = []
    conditional_reads: list[ConditionalRead] = []
    gates_after_measure: list[tuple[int, int]] = []
    num_conditionals = 0
    has_reset = False
    has_measurements = False
    parameters: dict[str, None] = {}  # insertion-ordered name set
    size = 0
    depth = 0
    level: dict[tuple[str, int], int] = {}
    for index, inst in enumerate(circuit):
        name = inst.name
        gate_counts[name] = gate_counts.get(name, 0) + 1
        for q in inst.qubits:
            touched.add(q)
            if not 0 <= q < num_qubits:
                bad_qubit_refs.append((index, q))
        if inst.condition is not None:
            num_conditionals += 1
            clbit, value = inst.condition
            read.add(clbit)
            conditional_reads.append(
                ConditionalRead(index, clbit, value, clbit in written)
            )
        for param in iter_parameters(inst.params):
            parameters.setdefault(param.name)
        if name == "barrier":
            continue
        size += 1
        # Wire-level depth, identical to ``QuantumCircuit.depth()``.
        wires = [("q", q) for q in inst.qubits]
        wires += [("c", c) for c in inst.clbits]
        if inst.condition is not None:
            wires.append(("c", inst.condition[0]))
        current = max((level.get(w, 0) for w in wires), default=0) + 1
        for w in wires:
            level[w] = current
        depth = max(depth, current)
        if name == "measure":
            has_measurements = True
            measured.add(inst.qubits[0])
            clbit = inst.clbits[0]
            written.add(clbit)
            if not 0 <= clbit < num_clbits:
                bad_clbit_writes.append((index, clbit))
            continue
        if name == "reset":
            has_reset = True
        for q in inst.qubits:
            if q in measured:
                gates_after_measure.append((index, q))
    return CircuitFacts(
        num_qubits=num_qubits,
        num_clbits=num_clbits,
        num_instructions=len(circuit),
        size=size,
        depth=depth,
        gate_counts=dict(sorted(gate_counts.items())),
        touched_qubits=frozenset(touched),
        measured_qubits=frozenset(measured),
        written_clbits=frozenset(written),
        read_clbits=frozenset(read),
        num_conditionals=num_conditionals,
        has_reset=has_reset,
        has_measurements=has_measurements,
        bad_qubit_refs=tuple(bad_qubit_refs),
        bad_clbit_writes=tuple(bad_clbit_writes),
        conditional_reads=tuple(conditional_reads),
        gates_after_measure=tuple(gates_after_measure),
        parameters=tuple(parameters),
        structure_fingerprint=(
            structure_fingerprint(circuit) if fingerprint else None
        ),
    )
