"""Reference implementations of the quantum algorithms in the paper's test
suite (Section III-B): basic circuits, the well-known intermediate algorithms
(Deutsch–Jozsa, Bernstein–Vazirani, Grover, QFT), and the advanced topics
(teleportation, quantum walk, annealing-style evolution, phase estimation).

These circuits serve two roles: they are the *reference answers* the
evaluation suite grades generated code against, and they are the templates the
simulated LLM's knowledge base synthesises from.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CircuitError
from repro.quantum.circuit import QuantumCircuit


def bell_pair(measure: bool = False) -> QuantumCircuit:
    """The |Phi+> Bell state on two qubits."""
    qc = QuantumCircuit(2, 2 if measure else 0, name="bell")
    qc.h(0)
    qc.cx(0, 1)
    if measure:
        qc.measure([0, 1], [0, 1])
    return qc


def ghz_state(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """The n-qubit GHZ state (|0...0> + |1...1>)/sqrt(2)."""
    if num_qubits < 2:
        raise CircuitError("GHZ state needs at least 2 qubits")
    qc = QuantumCircuit(num_qubits, num_qubits if measure else 0, name="ghz")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    if measure:
        qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def qft(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Quantum Fourier transform.

    Convention matches Qiskit: qubit ``n-1`` is the most significant, and with
    ``do_swaps`` the output bit order equals the input order.
    """
    if num_qubits < 1:
        raise CircuitError("QFT needs at least 1 qubit")
    qc = QuantumCircuit(num_qubits, name=f"qft-{num_qubits}")
    for target in range(num_qubits - 1, -1, -1):
        qc.h(target)
        for control in range(target - 1, -1, -1):
            angle = math.pi / (2 ** (target - control))
            qc.cp(angle, control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            qc.swap(q, num_qubits - 1 - q)
    return qc


def inverse_qft(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Inverse quantum Fourier transform."""
    inv = qft(num_qubits, do_swaps).inverse()
    inv.name = f"iqft-{num_qubits}"
    return inv


def dj_oracle(num_qubits: int, kind: str, pattern: int | None = None) -> QuantumCircuit:
    """A Deutsch–Jozsa oracle on ``num_qubits`` inputs plus one ancilla.

    Args:
        kind: ``'constant0'`` (f=0), ``'constant1'`` (f=1) or ``'balanced'``.
        pattern: for balanced oracles, a nonzero bitmask b with
            f(x) = parity(x & b); defaults to all-ones.
    """
    oracle = QuantumCircuit(num_qubits + 1, name=f"dj-oracle-{kind}")
    if kind == "constant0":
        return oracle
    if kind == "constant1":
        oracle.x(num_qubits)
        return oracle
    if kind == "balanced":
        mask = pattern if pattern is not None else (1 << num_qubits) - 1
        if not 0 < mask < (1 << num_qubits):
            raise CircuitError(f"balanced oracle pattern {mask} out of range")
        for q in range(num_qubits):
            if (mask >> q) & 1:
                oracle.cx(q, num_qubits)
        return oracle
    raise CircuitError(f"unknown Deutsch-Jozsa oracle kind '{kind}'")


def deutsch_jozsa(
    num_qubits: int, kind: str = "balanced", pattern: int | None = None
) -> QuantumCircuit:
    """Full Deutsch–Jozsa circuit; measuring all zeros means f is constant."""
    qc = QuantumCircuit(num_qubits + 1, num_qubits, name=f"dj-{kind}")
    qc.x(num_qubits)
    for q in range(num_qubits + 1):
        qc.h(q)
    qc.compose(dj_oracle(num_qubits, kind, pattern))
    for q in range(num_qubits):
        qc.h(q)
    qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def bernstein_vazirani(secret: str) -> QuantumCircuit:
    """Bernstein–Vazirani: recover the secret string in one query.

    ``secret`` is a bitstring whose leftmost character is the highest-indexed
    qubit (Qiskit convention); the measured result equals ``secret``.
    """
    n = len(secret)
    if n == 0 or any(c not in "01" for c in secret):
        raise CircuitError(f"invalid secret bitstring '{secret}'")
    qc = QuantumCircuit(n + 1, n, name="bv")
    qc.x(n)
    for q in range(n + 1):
        qc.h(q)
    for q, bit in enumerate(reversed(secret)):
        if bit == "1":
            qc.cx(q, n)
    for q in range(n):
        qc.h(q)
    qc.measure(list(range(n)), list(range(n)))
    return qc


def _phase_flip_on(qc: QuantumCircuit, bitstring: str) -> None:
    """Apply a phase of -1 to one computational basis state (n = 1..3)."""
    n = qc.num_qubits
    zeros = [q for q in range(n) if bitstring[n - 1 - q] == "0"]
    for q in zeros:
        qc.x(q)
    if n == 1:
        qc.z(0)
    elif n == 2:
        qc.cz(0, 1)
    elif n == 3:
        qc.ccz(0, 1, 2)
    else:
        raise CircuitError("phase flip oracle supports 1..3 qubits")
    for q in zeros:
        qc.x(q)


def grover_oracle(num_qubits: int, marked: list[str]) -> QuantumCircuit:
    """Phase oracle flipping the sign of each marked basis state."""
    if not 1 <= num_qubits <= 3:
        raise CircuitError("grover_oracle supports 1..3 qubits")
    oracle = QuantumCircuit(num_qubits, name="grover-oracle")
    for state in marked:
        if len(state) != num_qubits or any(c not in "01" for c in state):
            raise CircuitError(f"invalid marked state '{state}'")
        _phase_flip_on(oracle, state)
    return oracle


def grover_diffuser(num_qubits: int) -> QuantumCircuit:
    """Inversion about the mean."""
    qc = QuantumCircuit(num_qubits, name="grover-diffuser")
    for q in range(num_qubits):
        qc.h(q)
    _phase_flip_on(qc, "0" * num_qubits)
    for q in range(num_qubits):
        qc.h(q)
    return qc


def grover(
    num_qubits: int, marked: list[str], iterations: int | None = None
) -> QuantumCircuit:
    """Grover search over ``num_qubits`` qubits for the marked states."""
    if not marked:
        raise CircuitError("grover needs at least one marked state")
    if iterations is None:
        n_states = 2**num_qubits
        angle = math.asin(math.sqrt(len(set(marked)) / n_states))
        iterations = max(1, int(round(math.pi / (4 * angle) - 0.5)))
    qc = QuantumCircuit(num_qubits, num_qubits, name="grover")
    for q in range(num_qubits):
        qc.h(q)
    oracle = grover_oracle(num_qubits, marked)
    diffuser = grover_diffuser(num_qubits)
    for _ in range(iterations):
        qc.compose(oracle)
        qc.compose(diffuser)
    qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def teleportation(
    theta: float = 1.0, phi: float = 0.5, lam: float = 0.0
) -> QuantumCircuit:
    """Quantum teleportation of the state U(theta, phi, lam)|0>.

    Qubit 0 holds the message, qubits 1-2 share a Bell pair; classical bits
    0-1 carry the Bell measurement and conditioned corrections restore the
    state on qubit 2, which is measured into classical bit 2.
    """
    qc = QuantumCircuit(3, 3, name="teleport")
    qc.u(theta, phi, lam, 0)
    qc.h(1)
    qc.cx(1, 2)
    qc.cx(0, 1)
    qc.h(0)
    qc.measure(0, 0)
    qc.measure(1, 1)
    qc.append("x", [2], condition=(1, 1))
    qc.append("z", [2], condition=(0, 1))
    qc.measure(2, 2)
    return qc


def superdense_coding(bits: str) -> QuantumCircuit:
    """Superdense coding of two classical bits over one Bell pair.

    ``bits`` is two characters, most significant first; the measurement
    result reproduces ``bits``.
    """
    if len(bits) != 2 or any(c not in "01" for c in bits):
        raise CircuitError(f"superdense coding needs 2 bits, got '{bits}'")
    qc = QuantumCircuit(2, 2, name="superdense")
    qc.h(0)
    qc.cx(0, 1)
    # Encoding on qubit 0: after Bell decoding, the X flip lands in clbit 1
    # (the displayed high bit) and the Z phase in clbit 0 (the low bit).
    if bits[0] == "1":
        qc.x(0)
    if bits[1] == "1":
        qc.z(0)
    qc.cx(0, 1)
    qc.h(0)
    qc.measure([0, 1], [0, 1])
    return qc


def phase_estimation(phase: float, num_counting: int = 3) -> QuantumCircuit:
    """Estimate ``phase`` of the eigenvalue e^{2 pi i phase} of a P gate.

    The target qubit is prepared in |1> (the P-gate eigenstate); counting
    qubits are measured and the most likely outcome is
    ``round(phase * 2**num_counting)``.
    """
    if num_counting < 1:
        raise CircuitError("phase estimation needs >= 1 counting qubit")
    n = num_counting
    qc = QuantumCircuit(n + 1, n, name="qpe")
    qc.x(n)
    for q in range(n):
        qc.h(q)
    for q in range(n):
        qc.cp(2 * math.pi * phase * (2**q), q, n)
    iqft = inverse_qft(n)
    qc.compose(iqft, qubits=list(range(n)))
    qc.measure(list(range(n)), list(range(n)))
    return qc


def quantum_walk_cycle(steps: int, measure: bool = True) -> QuantumCircuit:
    """Discrete-time quantum walk on a 4-cycle.

    Qubits 0-1 are the position register, qubit 2 the coin.  Each step
    applies a Hadamard coin flip, then a coin-controlled increment/decrement
    of the position modulo 4.
    """
    if steps < 1:
        raise CircuitError("quantum walk needs >= 1 step")
    qc = QuantumCircuit(3, 2 if measure else 0, name=f"qwalk-{steps}")
    coin, p0, p1 = 2, 0, 1
    for _ in range(steps):
        qc.h(coin)
        # coin = 1: position += 1 (mod 4)
        qc.ccx(coin, p0, p1)
        qc.cx(coin, p0)
        # coin = 0: position -= 1 (mod 4)
        qc.x(coin)
        qc.cx(coin, p0)
        qc.ccx(coin, p0, p1)
        qc.x(coin)
    if measure:
        qc.measure([p0, p1], [0, 1])
    return qc


def tfim_annealing(
    num_qubits: int,
    steps: int = 5,
    total_time: float = 2.0,
    coupling: float = 1.0,
    field: float = 1.0,
) -> QuantumCircuit:
    """Trotterized quantum-annealing schedule for a transverse-field Ising chain.

    Interpolates H(s) = (1-s) * field * sum X_i + s * coupling * sum Z_i Z_{i+1}
    over ``steps`` first-order Trotter slices, starting from the ground state
    of the driver (|+...+>).  This is the circuit-model analogue of quantum
    annealing referenced by the paper's advanced test tier.
    """
    if num_qubits < 2:
        raise CircuitError("annealing chain needs >= 2 qubits")
    if steps < 1:
        raise CircuitError("annealing needs >= 1 Trotter step")
    dt = total_time / steps
    qc = QuantumCircuit(num_qubits, num_qubits, name="tfim-anneal")
    for q in range(num_qubits):
        qc.h(q)
    for k in range(steps):
        s = (k + 1) / steps
        for q in range(num_qubits - 1):
            qc.rzz(2 * s * coupling * dt, q, q + 1)
        for q in range(num_qubits):
            qc.rx(2 * (1 - s) * field * dt, q)
    qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def random_circuit(
    num_qubits: int, depth: int, seed: int = 0, measure: bool = False
) -> QuantumCircuit:
    """A random circuit for fuzzing the simulator and transpiler."""
    if num_qubits < 1 or depth < 1:
        raise CircuitError("random circuit needs >= 1 qubit and depth")
    rng = np.random.default_rng(seed)
    one_q = ["h", "x", "y", "z", "s", "t", "sx"]
    qc = QuantumCircuit(num_qubits, num_qubits if measure else 0, name="random")
    for _ in range(depth):
        for q in range(num_qubits):
            choice = rng.random()
            if choice < 0.5:
                qc.append(str(rng.choice(one_q)), [q])
            elif choice < 0.7:
                qc.append(
                    str(rng.choice(["rx", "ry", "rz"])),
                    [q],
                    params=[float(rng.uniform(0, 2 * math.pi))],
                )
            elif num_qubits >= 2:
                partner = int(rng.integers(num_qubits))
                if partner != q:
                    qc.append(str(rng.choice(["cx", "cz"])), [q, partner])
    if measure:
        qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


# The parameterized (variational) workload family — QAOA and the
# hardware-efficient ansatz — lives in :mod:`repro.quantum.variational`;
# re-exported here so this module stays the one-stop catalogue of reference
# circuits.  Unlike the builders above these return unbound templates: call
# ``.bind({...})`` (or hand them to ``repro.quantum.variational.minimize``)
# before execution.
from repro.quantum.variational.ansatz import (  # noqa: E402
    hardware_efficient_ansatz,
    qaoa_ansatz,
)
