"""Noise channels and noise models for Monte-Carlo trajectory simulation.

The noisy simulator runs one trajectory per shot: after each gate, the noise
model may inject a Pauli (or damping) operation on the touched qubits, and each
measurement may flip its recorded bit.  This is the standard stochastic
unravelling of Pauli channels and is exactly how the paper's Figure-4
experiment treats device noise (per-gate depolarizing + readout error for IBM
Brisbane, then a reduced effective rate after QEC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PauliNoise:
    """A stochastic Pauli channel on one qubit.

    Attributes map Pauli label -> probability; the identity fires with the
    remaining probability mass.
    """

    p_x: float = 0.0
    p_y: float = 0.0
    p_z: float = 0.0

    def __post_init__(self) -> None:
        total = self.p_x + self.p_y + self.p_z
        if min(self.p_x, self.p_y, self.p_z) < 0 or total > 1.0 + 1e-12:
            raise ValueError(f"invalid Pauli channel probabilities {self}")

    @classmethod
    def depolarizing(cls, p: float) -> "PauliNoise":
        """Single-qubit depolarizing channel with error probability ``p``."""
        return cls(p / 3, p / 3, p / 3)

    @classmethod
    def bit_flip(cls, p: float) -> "PauliNoise":
        return cls(p_x=p)

    @classmethod
    def phase_flip(cls, p: float) -> "PauliNoise":
        return cls(p_z=p)

    @classmethod
    def bit_phase_flip(cls, p: float) -> "PauliNoise":
        return cls(p_y=p)

    @property
    def error_probability(self) -> float:
        return self.p_x + self.p_y + self.p_z

    def sample(self, rng: np.random.Generator) -> str | None:
        """Draw one Pauli ('x'|'y'|'z') or None for identity."""
        r = rng.random()
        if r < self.p_x:
            return "x"
        if r < self.p_x + self.p_y:
            return "y"
        if r < self.p_x + self.p_y + self.p_z:
            return "z"
        return None

    def scaled(self, factor: float) -> "PauliNoise":
        """Return the channel with all error probabilities multiplied."""
        return PauliNoise(self.p_x * factor, self.p_y * factor, self.p_z * factor)


@dataclass(frozen=True)
class ReadoutError:
    """Classical readout confusion: P(read 1|state 0) and P(read 0|state 1)."""

    p1_given_0: float = 0.0
    p0_given_1: float = 0.0

    @classmethod
    def symmetric(cls, p: float) -> "ReadoutError":
        return cls(p, p)

    def apply(self, bit: int, rng: np.random.Generator) -> int:
        flip_p = self.p1_given_0 if bit == 0 else self.p0_given_1
        if rng.random() < flip_p:
            return 1 - bit
        return bit


@dataclass
class NoiseModel:
    """Maps instruction names (and optionally qubits) to error channels.

    Channel lookup order for a gate on qubits ``qs``:

    1. a channel registered for ``(name, qs)`` exactly,
    2. a channel registered for ``name`` on all qubits,
    3. no noise.

    Two-or-more-qubit gates apply the sampled channel *independently per
    touched qubit*, the standard approximation for trajectory simulators.
    """

    _all_qubit: dict[str, PauliNoise] = field(default_factory=dict)
    _local: dict[tuple[str, tuple[int, ...]], PauliNoise] = field(default_factory=dict)
    readout: ReadoutError | None = None
    #: readout error per specific qubit; falls back to `readout`.
    _local_readout: dict[int, ReadoutError] = field(default_factory=dict)

    def add_all_qubit_error(self, noise: PauliNoise, gate_names: list[str] | str) -> None:
        names = [gate_names] if isinstance(gate_names, str) else list(gate_names)
        for name in names:
            self._all_qubit[name.lower()] = noise

    def add_local_error(
        self, noise: PauliNoise, gate_name: str, qubits: list[int]
    ) -> None:
        self._local[(gate_name.lower(), tuple(qubits))] = noise

    def add_readout_error(self, error: ReadoutError, qubit: int | None = None) -> None:
        if qubit is None:
            self.readout = error
        else:
            self._local_readout[int(qubit)] = error

    def channel_for(self, name: str, qubits: tuple[int, ...]) -> PauliNoise | None:
        local = self._local.get((name.lower(), qubits))
        if local is not None:
            return local
        return self._all_qubit.get(name.lower())

    def readout_for(self, qubit: int) -> ReadoutError | None:
        return self._local_readout.get(qubit, self.readout)

    def fingerprint(self) -> str:
        """Stable content hash of every channel in the model.

        Used by the execution result cache: two backends with byte-identical
        noise (e.g. repeated ``FakeBrisbane()`` constructions) share cache
        entries, while a scaled model (QEC-corrected backends) never collides
        with its parent.
        """
        from repro.utils.rng import stable_hash

        payload = (
            tuple(sorted(self._all_qubit.items())),
            tuple(sorted(self._local.items())),
            self.readout,
            tuple(sorted(self._local_readout.items())),
        )
        return f"{stable_hash('noise', payload):016x}"

    @property
    def is_trivial(self) -> bool:
        return (
            not self._all_qubit
            and not self._local
            and self.readout is None
            and not self._local_readout
        )

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with every error probability multiplied by ``factor``.

        This is how the Figure-4(c) experiment models the effect of QEC: the
        decoder's logical error rate divided by the physical rate gives the
        suppression factor applied to the device noise model.
        """
        out = NoiseModel()
        out._all_qubit = {k: v.scaled(factor) for k, v in self._all_qubit.items()}
        out._local = {k: v.scaled(factor) for k, v in self._local.items()}
        if self.readout is not None:
            out.readout = ReadoutError(
                self.readout.p1_given_0 * factor, self.readout.p0_given_1 * factor
            )
        out._local_readout = {
            q: ReadoutError(e.p1_given_0 * factor, e.p0_given_1 * factor)
            for q, e in self._local_readout.items()
        }
        return out

    @classmethod
    def uniform_depolarizing(
        cls,
        p_1q: float,
        p_2q: float,
        p_readout: float = 0.0,
        one_qubit_gates: tuple[str, ...] = (
            "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
            "rx", "ry", "rz", "p", "u",
        ),
        two_qubit_gates: tuple[str, ...] = (
            "cx", "cy", "cz", "ch", "csx", "swap", "iswap", "crx", "cry",
            "crz", "cp", "rxx", "ryy", "rzz",
        ),
    ) -> "NoiseModel":
        """Standard device-style model: depolarizing on gates + readout error."""
        model = cls()
        if p_1q > 0:
            model.add_all_qubit_error(PauliNoise.depolarizing(p_1q), list(one_qubit_gates))
        if p_2q > 0:
            model.add_all_qubit_error(PauliNoise.depolarizing(p_2q), list(two_qubit_gates))
        if p_readout > 0:
            model.readout = ReadoutError.symmetric(p_readout)
        return model
