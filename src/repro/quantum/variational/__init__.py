"""``repro.quantum.variational`` — ansatz builders and a batched optimizer.

The workload family unlocked by symbolic parameters: an ansatz is built
*once* as a parameterized template (:func:`qaoa_ansatz`,
:func:`hardware_efficient_ansatz`), every optimizer iterate binds it to
concrete angles, and all of an iteration's candidate points execute as **one**
:class:`~repro.quantum.execution.service.ExecutionService` batch — sharing a
single structure fingerprint, a single transpilation and a single batch-
planner group across the whole run (see the execution layer's
"one structure, N bindings, one vectorized execution" contract).

Quickstart::

    from repro.quantum.variational import maxcut_energy, minimize, qaoa_ansatz

    edges = [(0, 1), (1, 2), (2, 3), (3, 0)]
    ansatz = qaoa_ansatz(4, edges, reps=1)
    result = minimize(maxcut_energy(edges), ansatz, backend="ideal", seed=7)
    result.best_value, result.best_parameters

``repro variational`` drives the same loop from the CLI.
"""

from repro.quantum.variational.ansatz import (
    hardware_efficient_ansatz,
    maxcut_cut_size,
    maxcut_energy,
    qaoa_ansatz,
)
from repro.quantum.variational.optimize import (
    OPTIMIZE_METHODS,
    VariationalResult,
    minimize,
)

__all__ = [
    "OPTIMIZE_METHODS",
    "VariationalResult",
    "hardware_efficient_ansatz",
    "maxcut_cut_size",
    "maxcut_energy",
    "minimize",
    "qaoa_ansatz",
]
