"""Seeded optimizers that evaluate each iterate as one execution batch.

:func:`minimize` drives a counts-based energy over a parameterized ansatz.
Every iteration gathers its candidate points, binds the ansatz *template*
once per point, and submits **all** of them as a single
:class:`~repro.quantum.execution.service.ExecutionService` batch — so an
entire optimization run costs one transpilation and the batch planner groups
every evaluation under one structure fingerprint.

Two methods, both derivative-free (shot noise makes finite differences on
individual coordinates unreliable):

* ``"spsa"`` — simultaneous perturbation stochastic approximation with the
  standard gain schedules ``a_k = a / (k + 1)**0.602`` and
  ``c_k = c / (k + 1)**0.101``; two evaluations per iteration regardless of
  dimension.
* ``"coordinate"`` — cyclic coordinate descent with a shrinking step; per
  iteration probes ``theta_i ± step`` for one coordinate (two evaluations).

Determinism: the whole trajectory is a pure function of ``seed``.  The
initial point, every SPSA perturbation and every execution-seed derive from
:func:`repro.utils.rng.derive_seed` scopes, so re-running with the same seed
reproduces the history bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution.service import ExecutionService, default_service
from repro.utils.rng import derive_seed

OPTIMIZE_METHODS = ("spsa", "coordinate")

Energy = Callable[[dict[str, int]], float]


@dataclass(frozen=True)
class VariationalResult:
    """Outcome of one :func:`minimize` run."""

    best_value: float
    best_parameters: dict[str, float]
    history: tuple[float, ...] = field(default=())
    iterations: int = 0
    evaluations: int = 0
    method: str = "spsa"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VariationalResult(best_value={self.best_value:.6f}, "
            f"iterations={self.iterations}, evaluations={self.evaluations}, "
            f"method={self.method!r})"
        )


def _evaluate_points(
    service: ExecutionService,
    ansatz: QuantumCircuit,
    names: Sequence[str],
    points: Sequence[np.ndarray],
    energy: Energy,
    backend,
    shots: int,
    seed: int,
) -> list[float]:
    """Bind every point and run them as ONE service batch."""
    bound = [
        ansatz.bind({name: float(v) for name, v in zip(names, point)})
        for point in points
    ]
    result = service.run(bound, backend=backend, shots=shots, seed=seed).result()
    return [energy(result.get_counts(i)) for i in range(len(bound))]


def minimize(
    energy: Energy,
    ansatz: QuantumCircuit,
    *,
    backend="ideal",
    shots: int = 2048,
    seed: int = 0,
    method: str = "spsa",
    maxiter: int = 30,
    initial: Sequence[float] | None = None,
    service: ExecutionService | None = None,
    learning_rate: float = 0.25,
    perturbation: float = 0.2,
) -> VariationalResult:
    """Minimize a counts-based energy over the ansatz parameters.

    Args:
        energy: maps one circuit's measured counts to a scalar energy.
        ansatz: parameterized template; must declare at least one parameter
            and measure into clbits (counts-based energies need shots).
        backend: backend name or instance, as accepted by the service.
        shots: shots per candidate point.
        seed: master seed; the full trajectory is deterministic in it.
        method: ``"spsa"`` or ``"coordinate"``.
        maxiter: optimizer iterations (each is one execution batch).
        initial: starting point in ``ansatz.parameters`` order; defaults to a
            seeded uniform draw from ``[-pi/2, pi/2)``.
        service: execution service to batch through (defaults to the shared
            :func:`default_service`).
        learning_rate: SPSA gain ``a`` / coordinate-descent initial step.
        perturbation: SPSA gain ``c`` (ignored by ``"coordinate"``).

    Returns:
        A :class:`VariationalResult`; ``history`` holds the best energy seen
        after each iteration (length ``maxiter + 1`` counting the initial
        evaluation).
    """
    if method not in OPTIMIZE_METHODS:
        raise CircuitError(
            f"unknown method {method!r}; expected one of {OPTIMIZE_METHODS}"
        )
    names = [p.name for p in ansatz.parameters]
    if not names:
        raise CircuitError("ansatz has no parameters; nothing to optimize")
    if ansatz.num_clbits == 0:
        raise CircuitError(
            "ansatz has no classical bits; a counts-based energy needs "
            "measurements (build the ansatz with measure=True)"
        )
    if maxiter < 0:
        raise CircuitError(f"maxiter must be >= 0, got {maxiter}")
    if shots < 1:
        raise CircuitError(f"shots must be >= 1, got {shots}")
    svc = service if service is not None else default_service()
    dim = len(names)

    if initial is None:
        init_rng = np.random.default_rng(derive_seed(seed, "variational-init"))
        theta = init_rng.uniform(-np.pi / 2, np.pi / 2, size=dim)
    else:
        theta = np.asarray(list(initial), dtype=float)
        if theta.shape != (dim,):
            raise CircuitError(
                f"initial point has {theta.size} value(s); "
                f"ansatz declares {dim} parameter(s)"
            )
        if not np.all(np.isfinite(theta)):
            raise CircuitError("initial point contains non-finite values")

    evaluations = 0

    def batch(points: Sequence[np.ndarray], k: int) -> list[float]:
        nonlocal evaluations
        evaluations += len(points)
        return _evaluate_points(
            svc, ansatz, names, points, energy,
            backend, shots, derive_seed(seed, "iter", k),
        )

    best_value = batch([theta], 0)[0]
    best_theta = theta.copy()
    history = [best_value]

    for k in range(1, maxiter + 1):
        if method == "spsa":
            a_k = learning_rate / k**0.602
            c_k = perturbation / k**0.101
            delta_rng = np.random.default_rng(derive_seed(seed, "spsa-delta", k))
            delta = delta_rng.integers(0, 2, size=dim) * 2.0 - 1.0
            plus, minus = theta + c_k * delta, theta - c_k * delta
            f_plus, f_minus = batch([plus, minus], k)
            gradient = (f_plus - f_minus) / (2.0 * c_k) * delta
            theta = theta - a_k * gradient
            trial_value, trial_theta = min(
                (f_plus, plus), (f_minus, minus), key=lambda pair: pair[0]
            )
        else:  # coordinate descent
            step = learning_rate / (1.0 + (k - 1) / max(1, dim))
            coord = (k - 1) % dim
            plus, minus = theta.copy(), theta.copy()
            plus[coord] += step
            minus[coord] -= step
            f_plus, f_minus = batch([plus, minus], k)
            trial_value, trial_theta = min(
                (f_plus, plus), (f_minus, minus), key=lambda pair: pair[0]
            )
            if trial_value <= best_value:
                theta = trial_theta
        if trial_value < best_value:
            best_value = trial_value
            best_theta = trial_theta.copy()
        history.append(best_value)

    return VariationalResult(
        best_value=best_value,
        best_parameters={
            name: float(v) for name, v in zip(names, best_theta)
        },
        history=tuple(history),
        iterations=maxiter,
        evaluations=evaluations,
        method=method,
    )
