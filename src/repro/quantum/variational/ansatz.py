"""Parameterized ansatz builders (QAOA and hardware-efficient).

Both builders return *templates*: circuits whose rotation angles are
:class:`~repro.quantum.parameters.Parameter` symbols, discovered in a stable
first-appearance order by ``circuit.parameters``.  Bind a mapping to get a
concrete executable point; a whole sweep of bindings shares one structure
fingerprint, one transpilation and one batch-planner group.

Modeled on qiskit-terra's ``QAOAAnsatz``/``EfficientSU2`` shapes, reduced to
this SDK's gate set: the QAOA cost layer uses ``rzz`` per edge and the mixer
``rx`` per qubit; the hardware-efficient form alternates ``ry`` rotation
layers with a linear ``cx`` entangling chain.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.parameters import Parameter

Edge = tuple[int, int]


def _check_edges(num_qubits: int, edges: Sequence[Edge]) -> tuple[Edge, ...]:
    out: list[Edge] = []
    for edge in edges:
        try:
            a, b = edge
        except (TypeError, ValueError) as exc:
            raise CircuitError(f"edge {edge!r} is not a pair") from exc
        a, b = int(a), int(b)
        if a == b:
            raise CircuitError(f"self-loop edge ({a}, {b}) in graph")
        if not (0 <= a < num_qubits and 0 <= b < num_qubits):
            raise CircuitError(
                f"edge ({a}, {b}) out of range for {num_qubits} qubit(s)"
            )
        out.append((a, b))
    if not out:
        raise CircuitError("graph has no edges")
    return tuple(out)


def qaoa_ansatz(
    num_qubits: int,
    edges: Sequence[Edge],
    reps: int = 1,
    measure: bool = True,
) -> QuantumCircuit:
    """The QAOA ansatz for a MaxCut-style graph problem.

    Layer ``k`` applies the cost unitary ``rzz(gamma_k)`` on every edge, then
    the mixer ``rx(beta_k)`` on every qubit, over a uniform-superposition
    start.  Parameters are ``gamma_0, beta_0, gamma_1, beta_1, ...`` in
    discovery order.
    """
    if num_qubits < 2:
        raise CircuitError("QAOA ansatz needs at least 2 qubits")
    if reps < 1:
        raise CircuitError(f"reps must be >= 1, got {reps}")
    edges = _check_edges(num_qubits, edges)
    qc = QuantumCircuit(
        num_qubits, num_qubits if measure else 0, name=f"qaoa-{num_qubits}q-p{reps}"
    )
    for q in range(num_qubits):
        qc.h(q)
    for k in range(reps):
        gamma = Parameter(f"gamma_{k}")
        beta = Parameter(f"beta_{k}")
        for a, b in edges:
            qc.rzz(gamma, a, b)
        for q in range(num_qubits):
            qc.rx(beta, q)
    if measure:
        qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def hardware_efficient_ansatz(
    num_qubits: int,
    reps: int = 2,
    measure: bool = True,
) -> QuantumCircuit:
    """Alternating ``ry`` rotation layers and a linear ``cx`` chain.

    ``reps`` entangling blocks sit between ``reps + 1`` rotation layers;
    parameters are ``theta_<layer>_<qubit>`` in discovery order, so the
    template has ``(reps + 1) * num_qubits`` independent angles.
    """
    if num_qubits < 1:
        raise CircuitError("ansatz needs at least 1 qubit")
    if reps < 0:
        raise CircuitError(f"reps must be >= 0, got {reps}")
    qc = QuantumCircuit(
        num_qubits, num_qubits if measure else 0, name=f"hea-{num_qubits}q-r{reps}"
    )
    for layer in range(reps + 1):
        for q in range(num_qubits):
            qc.ry(Parameter(f"theta_{layer}_{q}"), q)
        if layer < reps:
            for q in range(num_qubits - 1):
                qc.cx(q, q + 1)
    if measure:
        qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def maxcut_cut_size(bits: str, edges: Sequence[Edge]) -> int:
    """Number of cut edges for one measured bitstring.

    ``bits`` uses the counts-key convention: clbit ``c`` (= qubit ``c`` after
    ``measure_all``-style wiring) is the character at position
    ``len(bits) - 1 - c`` (clbit 0 rightmost).
    """
    width = len(bits)
    cut = 0
    for a, b in edges:
        if bits[width - 1 - a] != bits[width - 1 - b]:
            cut += 1
    return cut


def maxcut_energy(edges: Sequence[Edge]) -> Callable[[dict[str, int]], float]:
    """The MaxCut objective as an energy over measured counts.

    Returns ``counts -> -E[cut size]`` (negated so *minimizing* the energy
    maximizes the expected cut), suitable for
    :func:`repro.quantum.variational.optimize.minimize`.
    """
    frozen = tuple((int(a), int(b)) for a, b in edges)

    def energy(counts: dict[str, int]) -> float:
        total = sum(counts.values())
        if total == 0:
            raise CircuitError("empty counts; cannot evaluate energy")
        acc = 0.0
        for bits, hits in counts.items():
            acc += hits * maxcut_cut_size(bits, frozen)
        return -acc / total

    return energy
