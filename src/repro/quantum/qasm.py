"""OpenQASM 2 subset: export and import of circuits.

Supports the gate set of :mod:`repro.quantum.gates`, ``measure``, ``reset``,
``barrier`` and single-bit ``if`` conditions.  The exporter emits one flat
``q``/``c`` register pair; the importer accepts multiple registers and
flattens them in declaration order.

Parameterized templates round-trip: an unbound
:class:`~repro.quantum.parameters.Parameter` is emitted as its identifier
(``rz(theta) q[0];``) and an affine expression in canonical form
(``rz(0.5*theta) q[0];``, ``rz(2.0*theta-1.5) q[0];``); the importer parses
identifiers back into :class:`Parameter` symbols.  Parameter expressions are
evaluated with a small arithmetic grammar (numbers, ``pi``, identifiers,
``+ - * /``, unary minus, parentheses) — no ``eval``.
"""

from __future__ import annotations

import math
import re

from repro.errors import CircuitError, QasmError
from repro.quantum import gates as _gates
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.parameters import Parameter, is_symbolic

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";'


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2 text."""
    lines = [_HEADER, f"qreg q[{circuit.num_qubits}];"]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit:
        if inst.name == "barrier":
            qubits = ",".join(f"q[{q}]" for q in inst.qubits)
            lines.append(f"barrier {qubits};")
            continue
        prefix = ""
        if inst.condition is not None:
            bit, value = inst.condition
            # OpenQASM 2 conditions compare whole registers; a single-bit
            # condition on bit i is expressed against a 1-bit alias creg in
            # full QASM, but we keep the common single-creg idiom.
            prefix = f"if(c=={value << bit}) "
        if inst.name == "measure":
            lines.append(
                f"{prefix}measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];"
            )
            continue
        if inst.name == "reset":
            lines.append(f"{prefix}reset q[{inst.qubits[0]}];")
            continue
        params = (
            "(" + ",".join(_format_param(p) for p in inst.params) + ")"
            if inst.params
            else ""
        )
        qubits = ",".join(f"q[{q}]" for q in inst.qubits)
        lines.append(f"{prefix}{inst.name}{params} {qubits};")
    return "\n".join(lines) + "\n"


def _format_angle(value: float) -> str:
    """Render angles as simple multiples of pi when exact, else decimal."""
    for denom in (1, 2, 3, 4, 6, 8, 16):
        for num in range(-16, 17):
            if num and abs(value - num * math.pi / denom) < 1e-12:
                frac = f"pi/{denom}" if denom != 1 else "pi"
                if num == 1:
                    return frac
                if num == -1:
                    return f"-{frac}"
                return f"{num}*{frac}"
    return repr(float(value))


_TOKEN_RE = re.compile(
    r"""^\s*(?:(?P<cond>if\s*\(\s*(?P<creg>\w+)\s*==\s*(?P<cval>\d+)\s*\)\s*)?)
        (?P<name>[A-Za-z_]\w*)
        (?:\((?P<params>[^)]*)\))?
        \s*(?P<args>[^;]*);\s*$""",
    re.VERBOSE,
)

def _format_param(value) -> str:
    """Render one gate parameter: symbols as identifiers/affine text, floats
    as multiples of pi when exact (see :func:`_format_angle`)."""
    if isinstance(value, Parameter):
        return value.name
    if is_symbolic(value):
        coeff, offset = value.coefficients()
        name = value.parameter.name
        if coeff == 1.0:
            text = name
        elif coeff == -1.0:
            text = f"-{name}"
        else:
            text = f"{coeff!r}*{name}"
        if offset == 0.0:
            return text
        if offset > 0:
            return f"{text}+{offset!r}"
        return f"{text}-{-offset!r}"
    return _format_angle(value)


_NUMBER_RE = re.compile(
    r"(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
)
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


class _ParamParser:
    """Recursive-descent evaluator for one QASM parameter expression.

    Grammar (left-associative, unary minus binds tighter than ``*``/``/``)::

        expr   := term (('+'|'-') term)*
        term   := factor (('*'|'/') factor)*
        factor := ('-'|'+')* atom
        atom   := NUMBER | 'pi' | IDENT | '(' expr ')'

    Numbers and ``pi`` evaluate to floats with the same operation order the
    old ``eval``-based path used, so concrete inputs parse bit-identically;
    any other identifier becomes a :class:`Parameter` and the surrounding
    arithmetic builds a :class:`ParameterExpression`.
    """

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self):
        value = self._expr()
        self._skip_ws()
        if self.pos != len(self.text):
            raise QasmError(
                f"trailing input in parameter expression "
                f"'{self.text}' at offset {self.pos}"
            )
        return value

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expr(self):
        value = self._term()
        while self._peek() in ("+", "-"):
            op = self.text[self.pos]
            self.pos += 1
            other = self._term()
            value = value + other if op == "+" else value - other
        return value

    def _term(self):
        value = self._factor()
        while self._peek() in ("*", "/"):
            op = self.text[self.pos]
            self.pos += 1
            other = self._factor()
            value = value * other if op == "*" else value / other
        return value

    def _factor(self):
        negate = False
        while self._peek() in ("+", "-"):
            if self.text[self.pos] == "-":
                negate = not negate
            self.pos += 1
        value = self._atom()
        return -value if negate else value

    def _atom(self):
        ch = self._peek()
        if not ch:
            raise QasmError(
                f"unexpected end of parameter expression '{self.text}'"
            )
        if ch == "(":
            self.pos += 1
            value = self._expr()
            if self._peek() != ")":
                raise QasmError(
                    f"unbalanced parentheses in parameter '{self.text}'"
                )
            self.pos += 1
            return value
        number = _NUMBER_RE.match(self.text, self.pos)
        if number:
            self.pos = number.end()
            return float(number.group())
        ident = _IDENT_RE.match(self.text, self.pos)
        if ident:
            self.pos = ident.end()
            name = ident.group()
            if name == "pi":
                return math.pi
            return Parameter(name)
        raise QasmError(
            f"cannot parse parameter expression '{self.text}' "
            f"at offset {self.pos}"
        )


def _eval_param(expr: str):
    """One QASM parameter: a float, or a symbol/affine expression of one."""
    try:
        return _ParamParser(expr.strip()).parse()
    except (CircuitError, TypeError, ZeroDivisionError) as exc:
        # Symbol-times-symbol products, division by a symbol, etc.
        raise QasmError(f"cannot evaluate parameter '{expr}': {exc}") from exc


def qasm_to_circuit(text: str) -> QuantumCircuit:
    """Parse OpenQASM 2 text into a circuit.

    Raises:
        QasmError: on malformed input or unknown gates.
    """
    qregs: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
    cregs: dict[str, tuple[int, int]] = {}
    qc: QuantumCircuit | None = None
    pending: list[str] = []
    q_total = c_total = 0

    def resolve(arg: str, regs: dict[str, tuple[int, int]]) -> int:
        m = re.match(r"^(\w+)\[(\d+)\]$", arg.strip())
        if not m:
            raise QasmError(f"cannot parse operand '{arg}'")
        name, idx = m.group(1), int(m.group(2))
        if name not in regs:
            raise QasmError(f"unknown register '{name}'")
        offset, size = regs[name]
        if idx >= size:
            raise QasmError(f"index {idx} out of range for register '{name}'")
        return offset + idx

    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        for stmt in [s + ";" for s in line.split(";") if s.strip()]:
            m_qreg = re.match(r"^qreg\s+(\w+)\[(\d+)\];$", stmt)
            if m_qreg:
                qregs[m_qreg.group(1)] = (q_total, int(m_qreg.group(2)))
                q_total += int(m_qreg.group(2))
                continue
            m_creg = re.match(r"^creg\s+(\w+)\[(\d+)\];$", stmt)
            if m_creg:
                cregs[m_creg.group(1)] = (c_total, int(m_creg.group(2)))
                c_total += int(m_creg.group(2))
                continue
            pending.append(stmt)

    if q_total == 0:
        raise QasmError("no qreg declared")
    qc = QuantumCircuit(q_total, c_total, name="from_qasm")

    for stmt in pending:
        match = _TOKEN_RE.match(stmt)
        if not match:
            raise QasmError(f"cannot parse statement '{stmt}'")
        name = match.group("name").lower()
        condition = None
        if match.group("cond"):
            cval = int(match.group("cval"))
            if cval == 0 or (cval & (cval - 1)) != 0:
                raise QasmError(
                    f"only single-bit conditions supported, got value {cval}"
                )
            condition = (cval.bit_length() - 1, 1)
        params = tuple(
            _eval_param(p) for p in (match.group("params") or "").split(",") if p.strip()
        )
        args = [a for a in match.group("args").split(",") if a.strip()]
        if name == "measure":
            joined = ",".join(args)
            m_meas = re.match(r"^(.+?)\s*->\s*(.+)$", joined)
            if not m_meas:
                raise QasmError(f"cannot parse measure '{stmt}'")
            q = resolve(m_meas.group(1), qregs)
            c = resolve(m_meas.group(2), cregs)
            qc.append("measure", [q], [c], condition=condition)
            continue
        if name == "reset":
            qc.append("reset", [resolve(args[0], qregs)], condition=condition)
            continue
        if name == "barrier":
            qc.barrier(*[resolve(a, qregs) for a in args])
            continue
        if name not in _gates.GATE_SPECS:
            raise QasmError(f"unknown gate '{name}'")
        qubits = [resolve(a, qregs) for a in args]
        qc.append(name, qubits, params=params, condition=condition)
    return qc
