"""``repro.quantum`` — the gate-level quantum SDK.

This package is the reproduction's substitute for Qiskit (see DESIGN.md):
circuits, a statevector simulator, noise models, device topologies, fake
backends, a transpiler, and the algorithm library that the evaluation suite
grades against.

Quickstart::

    from repro.quantum import QuantumCircuit, LocalSimulator

    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    counts = LocalSimulator().run(qc, shots=1000, seed=7).result().get_counts()
"""

from repro.quantum.backend import (
    Backend,
    FakeBrisbane,
    FakeFalcon,
    Job,
    LocalSimulator,
    NoisySimulator,
    Result,
)
from repro.quantum.circuit import (
    ClassicalRegister,
    Instruction,
    QuantumCircuit,
    QuantumRegister,
)
from repro.quantum.noise import NoiseModel, PauliNoise, ReadoutError
from repro.quantum.qasm import circuit_to_qasm, qasm_to_circuit
from repro.quantum.statevector import Statevector
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import transpile

# Legacy symbols are importable (so stale generated code imports cleanly) but
# raise QuantumDeprecationError when used; see repro.quantum.legacy.
from repro.quantum.legacy import Aer, BasicAer, IBMQ, execute

__all__ = [
    "Aer",
    "Backend",
    "BasicAer",
    "ClassicalRegister",
    "CouplingMap",
    "FakeBrisbane",
    "FakeFalcon",
    "IBMQ",
    "Instruction",
    "Job",
    "LocalSimulator",
    "NoiseModel",
    "NoisySimulator",
    "PauliNoise",
    "QuantumCircuit",
    "QuantumRegister",
    "ReadoutError",
    "Result",
    "Statevector",
    "circuit_to_qasm",
    "execute",
    "qasm_to_circuit",
    "transpile",
]
