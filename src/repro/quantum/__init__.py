"""``repro.quantum`` — the gate-level quantum SDK.

This package is the reproduction's substitute for Qiskit (see DESIGN.md):
circuits, a statevector simulator, noise models, device topologies, fake
backends, a transpiler, and the algorithm library that the evaluation suite
grades against.

Quickstart::

    from repro.quantum import QuantumCircuit, default_service, get_backend

    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    job = default_service().submit(qc, backend=get_backend("ideal"),
                                   shots=1000, seed=7)
    counts = job.result().get_counts()

The legacy one-liner still works (and shares the execution cache)::

    counts = LocalSimulator().run(qc, shots=1000, seed=7).result().get_counts()
"""

from repro.quantum.backend import (
    Backend,
    FakeBrisbane,
    FakeFalcon,
    Job,
    LocalSimulator,
    NoisySimulator,
    Result,
)
from repro.quantum.circuit import (
    ClassicalRegister,
    Instruction,
    QuantumCircuit,
    QuantumRegister,
)
# NOTE: ``repro.quantum.execution.execute`` is deliberately NOT re-exported
# here — the package-level ``execute`` name belongs to the *legacy* removed
# symbol (see repro.quantum.legacy), which the fault taxonomy depends on.
from repro.quantum.execution import (
    ExecutionJob,
    ExecutionService,
    JobStatus,
    default_service,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.quantum.noise import NoiseModel, PauliNoise, ReadoutError
from repro.quantum.parameters import Parameter, ParameterExpression
from repro.quantum.qasm import circuit_to_qasm, qasm_to_circuit
from repro.quantum.statevector import Statevector
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import transpile

# Legacy symbols are importable (so stale generated code imports cleanly) but
# raise QuantumDeprecationError when used; see repro.quantum.legacy.
from repro.quantum.legacy import Aer, BasicAer, IBMQ, execute

__all__ = [
    "Aer",
    "Backend",
    "BasicAer",
    "ClassicalRegister",
    "CouplingMap",
    "ExecutionJob",
    "ExecutionService",
    "FakeBrisbane",
    "FakeFalcon",
    "IBMQ",
    "Instruction",
    "Job",
    "JobStatus",
    "LocalSimulator",
    "NoiseModel",
    "NoisySimulator",
    "Parameter",
    "ParameterExpression",
    "PauliNoise",
    "QuantumCircuit",
    "QuantumRegister",
    "ReadoutError",
    "Result",
    "Statevector",
    "circuit_to_qasm",
    "default_service",
    "execute",
    "get_backend",
    "list_backends",
    "qasm_to_circuit",
    "register_backend",
    "resolve_backend",
    "transpile",
]
