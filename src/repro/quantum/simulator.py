"""Circuit execution engines: ideal sampling and Monte-Carlo noisy trajectories.

Two paths:

* **fast path** — no gate noise, no reset, no conditionals, measurements only
  at circuit positions that are never followed by gates on the same qubit:
  evolve the statevector once and multinomially sample the joint distribution.
* **trajectory path** — everything else: one statevector trajectory per shot,
  sampling Pauli noise after each gate and readout flips at each measurement.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.quantum import gates as _gates
from repro.quantum.analysis import circuit_facts, structural_errors
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import (
    Statevector,
    apply_matrix,
    collapse,
    measure_probabilities,
)

#: Hard cap for dense simulation; 2**20 complex amplitudes = 16 MiB.
MAX_DENSE_QUBITS = 20

#: Tolerance on the total probability mass of a measurement distribution.
#: Honest rounding drift over a dense evolution is orders of magnitude
#: smaller; mass outside this band means the state was corrupted upstream
#: (a non-unitary "gate" matrix, manual state surgery) and sampling from it
#: would silently launder the corruption into plausible-looking counts.
NORM_ATOL = 1e-6

_PAULI_MATRICES = {
    "x": _gates.X_MATRIX,
    "y": _gates.Y_MATRIX,
    "z": _gates.Z_MATRIX,
}


def _compact(circuit: QuantumCircuit) -> QuantumCircuit:
    """Relabel touched qubits to 0..k-1 so wide-but-sparse circuits stay dense.

    Transpiled circuits live on *physical* qubit indices of a (possibly
    127-qubit) device while touching only a handful of them; simulation only
    needs the touched ones.
    """
    touched = sorted({q for inst in circuit for q in inst.qubits})
    if not touched:
        touched = [0]
    if len(touched) == circuit.num_qubits and touched[-1] == len(touched) - 1:
        return circuit
    remap = {q: i for i, q in enumerate(touched)}
    out = QuantumCircuit(len(touched), max(circuit.num_clbits, 0), name=circuit.name)
    for inst in circuit:
        mapped = Instruction(
            inst.name,
            tuple(remap[q] for q in inst.qubits),
            inst.clbits,
            inst.params,
            inst.condition,
        )
        out._instructions.append(mapped)
    return out


def _validate(circuit: QuantumCircuit) -> None:
    if circuit.num_qubits == 0:
        raise SimulationError("cannot simulate a circuit with no qubits")
    if circuit.num_qubits > MAX_DENSE_QUBITS:
        raise SimulationError(
            f"circuit touches {circuit.num_qubits} qubits; dense simulation "
            f"is capped at {MAX_DENSE_QUBITS}"
        )


def _is_fast_path(circuit: QuantumCircuit, noise: NoiseModel | None) -> bool:
    """True when sampling from the final state reproduces per-shot semantics.

    Thin wrapper over :meth:`CircuitFacts.is_fast_path` — the analyzer is the
    single source of truth for this classification; the batchsim planner reads
    the same facts, so serial and batch routing can never disagree.
    """
    return circuit_facts(circuit).is_fast_path(noise)


def bit_rows_to_strings(rows: np.ndarray) -> list[str]:
    """Decode a ``(shots, width)`` array of ASCII digit codes into bitstrings.

    One decode over the whole block instead of a per-shot ``str.join`` — the
    assembly half of sampling is pure bookkeeping and should cost like it.
    """
    shots, width = rows.shape
    if width == 0:
        return [""] * shots
    buf = np.ascontiguousarray(rows.astype(np.uint8, copy=False)).tobytes()
    text = buf.decode("ascii")
    return [text[i * width : (i + 1) * width] for i in range(shots)]


def sample_from_state(
    state: Statevector,
    mapping: dict[int, int],
    num_clbits: int,
    shots: int,
    rng: np.random.Generator,
) -> list[str]:
    """Sample ``shots`` bitstrings from the measured qubits of a final state.

    ``mapping`` is ``measured_qubit_to_clbit()`` of the original circuit.
    Consumes exactly one ``rng.choice`` call, so the sampled stream is a pure
    function of ``(state, mapping, shots, rng state)`` — which is what lets
    the batch engine share one evolved state across many per-unit generators
    and still match the serial engine bit for bit.
    """
    if not mapping:
        return ["0" * num_clbits] * shots if num_clbits else [""] * shots
    qubits = list(mapping.keys())
    probs = state.probabilities(qubits)
    total = float(probs.sum())
    if abs(total - 1.0) > NORM_ATOL:
        raise SimulationError(
            f"measurement distribution sums to {total!r}, not 1; the state "
            "lost normalisation upstream (non-unitary gate matrix?)"
        )
    # Dividing by a validated ~1.0 total only scrubs honest rounding dust;
    # it keeps numpy's own (tighter) sum check in rng.choice satisfied.
    outcome_idx = rng.choice(len(probs), size=shots, p=probs / total)
    chars = np.full((shots, num_clbits), ord("0"), dtype=np.uint8)
    for pos, q in enumerate(qubits):
        clbit = mapping[q]
        chars[:, num_clbits - 1 - clbit] = ord("0") + (
            (outcome_idx >> pos) & 1
        ).astype(np.uint8)
    return bit_rows_to_strings(chars)


def _fast_sample(
    circuit: QuantumCircuit, shots: int, rng: np.random.Generator
) -> list[str]:
    """Sample shots from the final statevector (ideal, final-measurement case)."""
    mapping = circuit.measured_qubit_to_clbit()
    state = Statevector.from_circuit(circuit.remove_all_measurements())
    return sample_from_state(state, mapping, circuit.num_clbits, shots, rng)


def _apply_gate_noise(
    state: np.ndarray,
    inst: Instruction,
    noise: NoiseModel | None,
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    if noise is None:
        return state
    channel = noise.channel_for(inst.name, inst.qubits)
    if channel is None:
        return state
    for q in inst.qubits:
        pauli = channel.sample(rng)
        if pauli is not None:
            state = apply_matrix(state, _PAULI_MATRICES[pauli], [q], num_qubits)
    return state


def trajectory_draw_plan(
    circuit: QuantumCircuit, noise: NoiseModel | None
) -> list[int] | None:
    """Per-instruction uniform-draw counts of one :func:`_run_trajectory` shot.

    The trajectory path consumes ``rng.random()`` in a fixed, state-independent
    order: a measurement draws its outcome plus one readout flip when the
    qubit has a readout error; a reset draws its outcome; a unitary gate draws
    one Pauli choice per touched qubit when a noise channel applies; barriers
    draw nothing.  That fixed schedule is what lets the batch engine pre-draw
    a ``(shots, total)`` table and replay the serial stream exactly.

    Returns ``None`` when the schedule *is* state-dependent — conditional
    instructions skip their draws when the condition fails — in which case
    shots cannot be batched and the caller must fall back to the serial loop.
    """
    plan: list[int] = []
    for inst in circuit:
        if inst.condition is not None:
            return None
        if inst.name == "barrier":
            plan.append(0)
        elif inst.name == "measure":
            draws = 1
            if noise is not None and noise.readout_for(inst.qubits[0]) is not None:
                draws += 1
            plan.append(draws)
        elif inst.name == "reset":
            plan.append(1)
        elif noise is not None and noise.channel_for(inst.name, inst.qubits) is not None:
            plan.append(len(inst.qubits))
        else:
            plan.append(0)
    return plan


def _run_trajectory(
    circuit: QuantumCircuit,
    noise: NoiseModel | None,
    rng: np.random.Generator,
) -> str:
    """One noisy shot; returns the classical bitstring (clbit 0 rightmost)."""
    n = circuit.num_qubits
    state = np.zeros(2**n, dtype=np.complex128)
    state[0] = 1.0
    clbits = [0] * circuit.num_clbits
    for inst in circuit:
        if inst.name == "barrier":
            continue
        if inst.condition is not None:
            bit, value = inst.condition
            if clbits[bit] != value:
                continue
        if inst.name == "measure":
            qubit = inst.qubits[0]
            p1 = measure_probabilities(state, qubit, n)
            outcome = 1 if rng.random() < p1 else 0
            state = collapse(state, qubit, outcome, n)
            recorded = outcome
            if noise is not None:
                readout = noise.readout_for(qubit)
                if readout is not None:
                    recorded = readout.apply(outcome, rng)
            clbits[inst.clbits[0]] = recorded
            continue
        if inst.name == "reset":
            qubit = inst.qubits[0]
            p1 = measure_probabilities(state, qubit, n)
            outcome = 1 if rng.random() < p1 else 0
            state = collapse(state, qubit, outcome, n)
            if outcome == 1:
                state = apply_matrix(state, _gates.X_MATRIX, [qubit], n)
            continue
        state = apply_matrix(state, inst.matrix(), inst.qubits, n)
        state = _apply_gate_noise(state, inst, noise, n, rng)
    return "".join(str(b) for b in reversed(clbits))


def simulate_counts(
    circuit: QuantumCircuit,
    shots: int,
    rng: np.random.Generator,
    noise: NoiseModel | None = None,
    memory: bool = False,
) -> tuple[dict[str, int], list[str] | None]:
    """Execute a circuit and return ``(counts, memory)``.

    ``counts`` maps classical bitstrings (clbit 0 rightmost) to frequencies;
    ``memory`` is the per-shot list when requested, else ``None``.
    """
    facts = circuit_facts(circuit)
    if facts.structurally_defective:
        first = structural_errors(facts)[0]
        raise SimulationError(
            f"circuit is structurally defective: [{first.code}] {first.message}"
        )
    circuit = _compact(circuit)
    _validate(circuit)
    if shots <= 0:
        raise SimulationError(f"shots must be positive, got {shots}")
    # ``is_fast_path`` only reads relabelling-invariant structure, so facts of
    # the original circuit answer for the compacted one too.
    if facts.is_fast_path(noise):
        outcomes = _fast_sample(circuit, shots, rng)
    else:
        outcomes = [_run_trajectory(circuit, noise, rng) for _ in range(shots)]
    return tally_counts(outcomes, memory)


def tally_counts(
    outcomes: list[str], memory: bool
) -> tuple[dict[str, int], list[str] | None]:
    """Fold per-shot bitstrings into ``(sorted counts, optional memory)``."""
    counts: dict[str, int] = {}
    for bits in outcomes:
        counts[bits] = counts.get(bits, 0) + 1
    return dict(sorted(counts.items())), (outcomes if memory else None)
