"""Device topologies: coupling maps and standard lattice constructors.

The QEC agent (paper Section III-A, Agent #3) consumes a
:class:`CouplingMap` to decide whether a surface code can be laid out on the
device, and the transpiler uses it for SWAP routing.  ``heavy_hex`` builds the
IBM Eagle-class lattice used by :class:`repro.quantum.backend.FakeBrisbane`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx

from repro.errors import TranspilerError


class CouplingMap:
    """An undirected qubit-connectivity graph.

    Two-qubit gates are permitted only between coupled qubits once a circuit
    has been routed.  Construction from an edge list::

        cmap = CouplingMap([(0, 1), (1, 2)])
    """

    def __init__(self, edges: Iterable[tuple[int, int]], name: str = "custom") -> None:
        self.name = name
        self._graph = nx.Graph()
        for a, b in edges:
            if a == b:
                raise TranspilerError(f"self-loop edge ({a}, {b}) in coupling map")
            self._graph.add_edge(int(a), int(b))
        if self._graph.number_of_nodes() == 0:
            raise TranspilerError("coupling map has no edges")
        # Ensure node ids are contiguous 0..n-1.
        nodes = sorted(self._graph.nodes)
        if nodes != list(range(len(nodes))):
            raise TranspilerError(
                "coupling map qubit ids must be contiguous integers from 0"
            )

    # -- properties -----------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edges(self) -> list[tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self._graph.edges)

    @property
    def graph(self) -> nx.Graph:
        return self._graph.copy()

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self._graph.neighbors(qubit))

    def degree(self, qubit: int) -> int:
        return self._graph.degree[qubit]

    def are_coupled(self, a: int, b: int) -> bool:
        return self._graph.has_edge(a, b)

    def is_connected(self) -> bool:
        return nx.is_connected(self._graph)

    def distance(self, a: int, b: int) -> int:
        try:
            return nx.shortest_path_length(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise TranspilerError(f"qubits {a} and {b} are not connected") from exc

    def shortest_path(self, a: int, b: int) -> list[int]:
        try:
            return nx.shortest_path(self._graph, a, b)
        except nx.NetworkXNoPath as exc:
            raise TranspilerError(f"qubits {a} and {b} are not connected") from exc

    def max_degree(self) -> int:
        return max(d for _, d in self._graph.degree)

    def subgraph_has_grid(self, rows: int, cols: int) -> bool:
        """Check whether a ``rows x cols`` grid embeds as a subgraph.

        Used by the QEC agent to decide if a surface-code patch fits the
        device.  Exact subgraph isomorphism is exponential, so sizes are kept
        small by callers (code distances <= 7).
        """
        if rows * cols > self.num_qubits:
            return False
        grid = nx.grid_2d_graph(rows, cols)
        matcher = nx.algorithms.isomorphism.GraphMatcher(self._graph, grid)
        return matcher.subgraph_is_monomorphic()

    def __repr__(self) -> str:
        return (
            f"CouplingMap(name='{self.name}', qubits={self.num_qubits}, "
            f"edges={self._graph.number_of_edges()})"
        )

    # -- constructors ------------------------------------------------------------

    @classmethod
    def linear(cls, num_qubits: int) -> "CouplingMap":
        if num_qubits < 2:
            raise TranspilerError("linear coupling map needs >= 2 qubits")
        return cls([(i, i + 1) for i in range(num_qubits - 1)], name=f"linear-{num_qubits}")

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        if num_qubits < 3:
            raise TranspilerError("ring coupling map needs >= 3 qubits")
        edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
        return cls(edges, name=f"ring-{num_qubits}")

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        if rows < 1 or cols < 1 or rows * cols < 2:
            raise TranspilerError("grid coupling map needs >= 2 qubits")
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(edges, name=f"grid-{rows}x{cols}")

    @classmethod
    def full(cls, num_qubits: int) -> "CouplingMap":
        if num_qubits < 2:
            raise TranspilerError("full coupling map needs >= 2 qubits")
        edges = [
            (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
        ]
        return cls(edges, name=f"full-{num_qubits}")

    @classmethod
    def heavy_hex(
        cls, long_rows: int = 7, row_length: int = 15, name: str | None = None
    ) -> "CouplingMap":
        """IBM Eagle-style heavy-hex lattice.

        The lattice alternates *long rows* (horizontal chains of
        ``row_length`` qubits; the first and last rows are one qubit shorter,
        as on the 127-qubit Eagle) with rows of four *connector* qubits that
        bridge vertically.  Connector attachment columns alternate between
        ``0, 4, 8, ...`` and ``2, 6, 10, ...`` on successive connector rows,
        reproducing the heavy-hex unit cell.

        ``heavy_hex(7, 15)`` yields exactly 127 qubits (Brisbane-class).
        """
        if long_rows < 2 or row_length < 5:
            raise TranspilerError("heavy-hex needs >= 2 long rows of >= 5 qubits")
        edges: list[tuple[int, int]] = []
        next_id = 0
        row_ids: list[list[int]] = []
        for r in range(long_rows):
            length = row_length - 1 if r in (0, long_rows - 1) else row_length
            ids = list(range(next_id, next_id + length))
            next_id += length
            row_ids.append(ids)
            edges.extend((ids[i], ids[i + 1]) for i in range(len(ids) - 1))
            if r < long_rows - 1:
                # Connector columns alternate by row parity.
                offset = 0 if r % 2 == 0 else 2
                cols = list(range(offset, row_length, 4))
                connector_ids = list(range(next_id, next_id + len(cols)))
                next_id += len(cols)
                row_ids.append(connector_ids)
                for cid, col in zip(connector_ids, cols):
                    upper = row_ids[-2]
                    upper_col = min(col, len(upper) - 1)
                    edges.append((upper[upper_col], cid))
                # Defer lower attachments until the next long row exists.
        # Second pass: attach connectors downward.
        long_positions = [i for i in range(len(row_ids)) if i % 2 == 0]
        for idx, pos in enumerate(long_positions[:-1]):
            connector = row_ids[pos + 1]
            lower = row_ids[long_positions[idx + 1]]
            offset = 0 if idx % 2 == 0 else 2
            cols = list(range(offset, row_length, 4))
            for cid, col in zip(connector, cols):
                lower_col = min(col, len(lower) - 1)
                edges.append((cid, lower[lower_col]))
        cmap = cls(edges, name=name or f"heavy-hex-{long_rows}x{row_length}")
        return cmap

    @classmethod
    def brisbane(cls) -> "CouplingMap":
        """The 127-qubit Brisbane-class heavy-hex lattice."""
        return cls.heavy_hex(7, 15, name="brisbane")
