"""Dense statevector representation and evolution.

States are flat complex vectors of length ``2**n`` in little-endian qubit
order: bit ``i`` of the basis index is qubit ``i``.  Bitstring keys returned by
:meth:`Statevector.probabilities_dict` put qubit 0 rightmost, matching Qiskit's
convention, so generated code graded against Qiskit-style references behaves
identically.
"""

from __future__ import annotations

import cmath
import math
from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit

_ATOL = 1e-10


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a ``2^k x 2^k`` unitary to ``targets`` of an ``n``-qubit state.

    The matrix convention is little-endian in instruction order: the *first*
    qubit in ``targets`` is the least-significant bit of the matrix index.
    Returns a new flat state vector.
    """
    k = len(targets)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} target qubit(s)"
        )
    tensor = state.reshape([2] * num_qubits)
    # Axis j of the tensor corresponds to qubit (num_qubits - 1 - j).  The
    # combined row index after reshape(2**k, -1) treats axis 0 as its MSB, and
    # our matrices treat targets[0] as the LSB, so move the *reversed* target
    # axes to the front.
    src_axes = [num_qubits - 1 - t for t in reversed(targets)]
    tensor = np.moveaxis(tensor, src_axes, range(k))
    rest_shape = tensor.shape[k:]
    mat_view = tensor.reshape(2**k, -1)
    mat_view = matrix @ mat_view
    tensor = mat_view.reshape((2,) * k + rest_shape)
    tensor = np.moveaxis(tensor, range(k), src_axes)
    return tensor.reshape(-1)


def measure_probabilities(state: np.ndarray, qubit: int, num_qubits: int) -> float:
    """Return P(qubit = 1) for one qubit of a flat state."""
    probs = np.abs(state) ** 2
    mask = 1 << qubit
    indices = np.arange(2**num_qubits)
    return float(probs[(indices & mask) != 0].sum())


def collapse(
    state: np.ndarray, qubit: int, outcome: int, num_qubits: int
) -> np.ndarray:
    """Project a flat state onto ``qubit == outcome`` and renormalise."""
    mask = 1 << qubit
    indices = np.arange(2**num_qubits)
    keep = ((indices & mask) != 0) == bool(outcome)
    new = np.where(keep, state, 0.0)
    norm = np.linalg.norm(new)
    if norm < _ATOL:
        raise SimulationError(
            f"collapse onto qubit {qubit}={outcome} has zero probability"
        )
    return new / norm


class Statevector:
    """An immutable-by-convention dense quantum state."""

    def __init__(self, data: Sequence[complex] | np.ndarray) -> None:
        arr = np.asarray(data, dtype=np.complex128).reshape(-1)
        n = int(round(math.log2(arr.size)))
        if 2**n != arr.size:
            raise SimulationError(
                f"statevector length {arr.size} is not a power of two"
            )
        norm = np.linalg.norm(arr)
        if norm < _ATOL:
            raise SimulationError("statevector has zero norm")
        if abs(norm - 1.0) > 1e-8:
            arr = arr / norm
        self._data = arr
        self._num_qubits = n

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        data = np.zeros(2**num_qubits, dtype=np.complex128)
        data[0] = 1.0
        return cls(data)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Build a product state from a label like ``'010'`` or ``'+-0'``.

        The leftmost character is the highest-indexed qubit (Qiskit order).
        Supported characters: ``0 1 + - r l`` (r/l are the ±i Y eigenstates).
        """
        single = {
            "0": np.array([1, 0], dtype=np.complex128),
            "1": np.array([0, 1], dtype=np.complex128),
            "+": np.array([1, 1], dtype=np.complex128) / math.sqrt(2),
            "-": np.array([1, -1], dtype=np.complex128) / math.sqrt(2),
            "r": np.array([1, 1j], dtype=np.complex128) / math.sqrt(2),
            "l": np.array([1, -1j], dtype=np.complex128) / math.sqrt(2),
        }
        state = np.array([1.0], dtype=np.complex128)
        for ch in label:  # leftmost char is the most significant qubit
            if ch not in single:
                raise SimulationError(f"unknown state label character '{ch}'")
            state = np.kron(state, single[ch])
        return cls(state)

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "Statevector":
        """Evolve |0...0> through a circuit's unitary instructions.

        Trailing measurements are ignored (they are the common
        ``measure_all`` idiom); mid-circuit measure/reset raise
        :class:`SimulationError` because the result would not be a pure state.
        """
        trimmed = circuit.remove_final_measurements()
        for inst in trimmed:
            if inst.name in ("measure", "reset"):
                raise SimulationError(
                    "Statevector.from_circuit cannot simulate mid-circuit "
                    f"'{inst.name}'; use a backend with shots instead"
                )
        return cls.zero_state(circuit.num_qubits).evolve(trimmed)

    # -- properties -----------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        return self._data.copy()

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def __len__(self) -> int:
        return self._data.size

    # -- evolution --------------------------------------------------------------

    def evolve(self, circuit: QuantumCircuit) -> "Statevector":
        """Return the state after applying every unitary instruction."""
        if circuit.num_qubits != self._num_qubits:
            raise SimulationError(
                f"circuit acts on {circuit.num_qubits} qubits, state has "
                f"{self._num_qubits}"
            )
        state = self._data.copy()
        for inst in circuit:
            if inst.name == "barrier":
                continue
            if not inst.is_unitary:
                raise SimulationError(
                    f"evolve() only handles unitary gates, found '{inst.name}'"
                )
            state = apply_matrix(state, inst.matrix(), inst.qubits, self._num_qubits)
        return Statevector(state)

    # -- measurement statistics ---------------------------------------------------

    def probabilities(self, qargs: Sequence[int] | None = None) -> np.ndarray:
        """Probability vector over all (or a subset of) qubits.

        With ``qargs`` the result is the marginal over those qubits, indexed
        little-endian in ``qargs`` order.
        """
        probs = np.abs(self._data) ** 2
        if qargs is None:
            return probs
        n = self._num_qubits
        out = np.zeros(2 ** len(qargs))
        indices = np.arange(2**n)
        sub = np.zeros_like(indices)
        for pos, q in enumerate(qargs):
            sub |= ((indices >> q) & 1) << pos
        np.add.at(out, sub, probs)
        return out

    def probabilities_dict(
        self, qargs: Sequence[int] | None = None, atol: float = 1e-12
    ) -> dict[str, float]:
        qargs = list(qargs) if qargs is not None else list(range(self._num_qubits))
        probs = self.probabilities(qargs)
        width = len(qargs)
        return {
            format(i, f"0{width}b"): float(p)
            for i, p in enumerate(probs)
            if p > atol
        }

    def sample_counts(
        self, shots: int, rng: np.random.Generator, qargs: Sequence[int] | None = None
    ) -> dict[str, int]:
        """Sample measurement outcomes; returns bitstring -> count."""
        qargs = list(qargs) if qargs is not None else list(range(self._num_qubits))
        probs = self.probabilities(qargs)
        probs = probs / probs.sum()
        outcomes = rng.multinomial(shots, probs)
        width = len(qargs)
        return {
            format(i, f"0{width}b"): int(c)
            for i, c in enumerate(outcomes)
            if c > 0
        }

    # -- comparisons / algebra ----------------------------------------------------

    def inner(self, other: "Statevector") -> complex:
        """The inner product <self|other>."""
        if other.num_qubits != self._num_qubits:
            raise SimulationError("statevector sizes differ")
        return complex(np.vdot(self._data, other._data))

    def fidelity(self, other: "Statevector") -> float:
        return abs(self.inner(other)) ** 2

    def equiv(self, other: "Statevector", atol: float = 1e-8) -> bool:
        """True when the states are equal up to global phase."""
        return self.fidelity(other) > 1.0 - atol

    def expectation_value(self, pauli: str) -> float:
        """Expectation of a Pauli string like ``'ZZI'``.

        Leftmost character acts on the highest-indexed qubit (Qiskit order).
        """
        from repro.quantum import gates as _g

        if len(pauli) != self._num_qubits:
            raise SimulationError(
                f"Pauli string length {len(pauli)} != {self._num_qubits} qubits"
            )
        mats = {"I": _g.I_MATRIX, "X": _g.X_MATRIX, "Y": _g.Y_MATRIX, "Z": _g.Z_MATRIX}
        state = self._data.copy()
        for pos, ch in enumerate(reversed(pauli.upper())):
            if ch not in mats:
                raise SimulationError(f"unknown Pauli character '{ch}'")
            if ch != "I":
                state = apply_matrix(state, mats[ch], [pos], self._num_qubits)
        return float(np.real(np.vdot(self._data, state)))

    def global_phase_aligned(self) -> "Statevector":
        """Return the state with its first nonzero amplitude made real-positive."""
        idx = int(np.argmax(np.abs(self._data) > _ATOL))
        phase = cmath.phase(complex(self._data[idx]))
        return Statevector(self._data * cmath.exp(-1j * phase))

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self._num_qubits})"
