"""Group cache-miss work units into batchable execution groups.

The planner decides *what may share a batch*, and nothing else — it never
changes results, because grouping only ever shares work that is provably
identical (the gate structure) while everything sample-relevant (seed, shots,
parameters) stays per unit.  Eligibility mirrors the serial engine's own path
choice on the compacted circuit, so a unit batches exactly when
``simulate_counts`` would have taken the corresponding path:

* **ideal** — fast-path circuits (no nontrivial noise, final measurements
  only), grouped by :func:`structure_fingerprint`: same gate names, qubits,
  clbits and conditions, parameters free.  The engine evolves the whole group
  on one batch axis and samples each unit with its own generator.
* **shots** — trajectory-path circuits whose noise-draw schedule is
  state-independent (:func:`~repro.quantum.simulator.trajectory_draw_plan`
  returns a plan).  Each unit is its own group; the batch axis runs across
  its shots.
* **serial** — everything else: conditional instructions (draw schedule
  depends on measured bits), circuits beyond the dense-width cap (the serial
  path raises the canonical error per unit), and any backend that overrides
  ``execute_circuit`` (its semantics are its own; see
  :func:`batchable_backend`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quantum.analysis import CircuitFacts, circuit_facts, structure_fingerprint
from repro.quantum.backend import Backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.simulator import MAX_DENSE_QUBITS, _compact

__all__ = [
    "IDEAL",
    "SERIAL",
    "SHOTS",
    "PlannedGroup",
    "PlannedUnit",
    "batchable_backend",
    "make_unit",
    "plan",
    "structure_fingerprint",
]

#: Group kinds, in dispatch-preference order.
IDEAL = "ideal"
SHOTS = "shots"
SERIAL = "serial"


@dataclass
class PlannedUnit:
    """One cache-miss work unit, annotated for batch execution."""

    index: int  #: slot in the submitting batch (result ordering)
    circuit: QuantumCircuit  #: as submitted; the serial fallback runs this
    compacted: QuantumCircuit  #: touched qubits relabelled to 0..k-1
    key: object | None  #: the service's CacheKey, or None when uncacheable
    seed: int | None
    shots: int
    facts: CircuitFacts  #: analyzer facts of ``circuit`` (routing input)


@dataclass
class PlannedGroup:
    """Units that one engine dispatch may execute together."""

    kind: str
    units: list[PlannedUnit]


def make_unit(
    index: int,
    circuit: QuantumCircuit,
    key: object | None,
    seed: int | None,
    shots: int,
) -> PlannedUnit:
    """Annotate one miss with its compacted circuit and analyzer facts.

    Facts are computed on the circuit *as submitted*, not the compacted form:
    compaction forgives out-of-range qubit references (it relabels them in),
    which would hide ``QA101`` defects from routing, and every predicate the
    planner reads is invariant under qubit relabelling anyway.
    """
    return PlannedUnit(
        index, circuit, _compact(circuit), key, seed, shots, circuit_facts(circuit)
    )


def batchable_backend(backend: Backend) -> bool:
    """Only the stock ``Backend.execute_circuit`` can be replayed in batch.

    A subclass that overrides the execution primitive (e.g. the QEC
    memory-experiment backend) owns its own semantics; replaying such units
    through the batch engine would silently drop the override, so the planner
    sends them down the serial path instead.
    """
    return type(backend).execute_circuit is Backend.execute_circuit


def plan(backend: Backend, units: list[PlannedUnit]) -> list[PlannedGroup]:
    """Partition miss units into batchable groups plus one serial fallback.

    Routing reads only each unit's :class:`CircuitFacts` —
    ``repro.quantum.analysis`` is the single source of truth for width,
    fast-path eligibility and trajectory-batchability, so the planner can
    never disagree with the serial engine's own classification.

    Group order is deterministic (first appearance of each structure), and
    the serial group, when present, comes last.
    """
    if not units:
        return []
    if not batchable_backend(backend):
        return [PlannedGroup(SERIAL, list(units))]
    noise = backend.noise_model
    ideal: dict[str, PlannedGroup] = {}
    groups: list[PlannedGroup] = []
    serial: list[PlannedUnit] = []
    for unit in units:
        facts = unit.facts
        # Compacted width == touched-qubit count (floor 1 for empty circuits).
        if max(1, len(facts.touched_qubits)) > MAX_DENSE_QUBITS:
            serial.append(unit)  # serial path raises the canonical error
        elif facts.structurally_defective:
            serial.append(unit)  # serial path raises the canonical error
        elif facts.is_fast_path(noise):
            fingerprint = structure_fingerprint(unit.compacted)
            group = ideal.get(fingerprint)
            if group is None:
                group = ideal[fingerprint] = PlannedGroup(IDEAL, [])
                groups.append(group)
            group.units.append(unit)
        elif facts.trajectory_eligible:
            groups.append(PlannedGroup(SHOTS, [unit]))
        else:
            serial.append(unit)
    if serial:
        groups.append(PlannedGroup(SERIAL, serial))
    return groups
