"""Execute planned groups on the batch axis, bit-identical to serial.

Two vectorised paths, matching the serial engine's two paths:

* **ideal groups** — units sharing one gate structure evolve together: one
  |0...0> row per *distinct* circuit (units differing only in seed share a
  row outright), every gate applied across the whole batch with one stacked
  matmul, parameter-divergent positions gathered into per-parameter
  sub-batches.  Sampling then runs per unit with its own generator, so counts
  are bit-identical to ``Backend.execute_circuit`` per ``(seed, circuit)``.
* **shot-batched trajectories** — one noisy unit's shots evolve as the batch
  axis.  All uniform draws are taken up front in exactly the serial order
  (row ``s`` of one ``rng.random((shots, per_shot))`` table is shot ``s``'s
  stream — the generator fills row-major, so the table *is* the serial
  sequence), then each gate is applied across all shots and each sampled
  Pauli across its shot subset.  Measurement collapse stays per-row through
  the serial helpers: gates dominate trajectory cost, and per-row collapse
  keeps the norm arithmetic byte-for-byte the serial one.

Memory stays bounded by tiling the batch axis so no tile holds more than
:data:`MAX_BATCH_AMPLITUDES` amplitudes; rows are independent, so tiling
cannot affect results.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.quantum import gates as _gates
from repro.quantum.batchsim.planner import IDEAL, SHOTS, PlannedGroup, PlannedUnit
from repro.quantum.batchsim.state import BatchStatevector, batch_apply_matrix
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import (
    _PAULI_MATRICES,
    bit_rows_to_strings,
    sample_from_state,
    tally_counts,
    trajectory_draw_plan,
)
from repro.quantum.statevector import (
    Statevector,
    collapse,
    measure_probabilities,
)

#: Cap on amplitudes held by one batch tile; 2**21 complex128 = 32 MiB.
MAX_BATCH_AMPLITUDES = 2**21


def _tiles(count: int, num_qubits: int):
    """Yield ``(start, stop)`` batch-row ranges under the memory cap."""
    per_tile = max(1, MAX_BATCH_AMPLITUDES // 2**num_qubits)
    for start in range(0, count, per_tile):
        yield start, min(start + per_tile, count)


def execute_group(
    noise: NoiseModel | None, group: PlannedGroup, memory: bool
) -> list[tuple[dict[str, int], list[str] | None]]:
    """Run one batchable group; results align with ``group.units`` order."""
    if group.kind == IDEAL:
        return _execute_ideal(group.units, memory)
    if group.kind == SHOTS:
        return [
            _execute_trajectory_unit(unit, noise, memory)
            for unit in group.units
        ]
    raise SimulationError(
        f"group kind {group.kind!r} is not executable by the batch engine"
    )


# -- ideal fast path -----------------------------------------------------------------


def _execute_ideal(
    units: list[PlannedUnit], memory: bool
) -> list[tuple[dict[str, int], list[str] | None]]:
    # Within one structure group, circuits differ only in their parameter
    # streams — so the parameter stream is the full identity of a row, and
    # units sharing it (a sweep re-run under many seeds) share one evolution.
    row_of: dict[tuple, int] = {}
    distinct: list[QuantumCircuit] = []
    row_keys: list[tuple] = []
    for unit in units:
        params_stream = tuple(inst.params for inst in unit.compacted)
        if params_stream not in row_of:
            row_of[params_stream] = len(distinct)
            distinct.append(unit.compacted)
        row_keys.append(params_stream)
    states = _evolve_rows(distinct)
    results = []
    for unit, params_stream in zip(units, row_keys):
        rng = np.random.default_rng(unit.seed)
        outcomes = sample_from_state(
            states[row_of[params_stream]],
            unit.compacted.measured_qubit_to_clbit(),
            unit.compacted.num_clbits,
            unit.shots,
            rng,
        )
        results.append(tally_counts(outcomes, memory))
    return results


def _evolve_rows(circuits: list[QuantumCircuit]) -> list[Statevector]:
    """Evolve |0...0> through structurally identical circuits in one batch.

    Mirrors ``Statevector.from_circuit(circuit.remove_all_measurements())``
    instruction for instruction, including the final constructor wrap (and
    its normalisation handling), so each returned state equals its serial
    twin exactly.
    """
    stripped = [circuit.remove_all_measurements() for circuit in circuits]
    num_qubits = stripped[0].num_qubits
    states: list[Statevector | None] = [None] * len(stripped)
    for start, stop in _tiles(len(stripped), num_qubits):
        chunk = [list(circuit) for circuit in stripped[start:stop]]
        batch = BatchStatevector.zero_states(len(chunk), num_qubits)
        for position, lead in enumerate(chunk[0]):
            if lead.name == "barrier":
                continue
            if not lead.is_unitary:
                raise SimulationError(
                    f"evolve() only handles unitary gates, found '{lead.name}'"
                )
            by_params: dict[tuple, list[int]] = {}
            for row, stream in enumerate(chunk):
                by_params.setdefault(stream[position].params, []).append(row)
            if len(by_params) == 1:
                batch.apply(lead.matrix(), lead.qubits)
            else:
                for rows in by_params.values():
                    inst = chunk[rows[0]][position]
                    batch.apply_rows(rows, inst.matrix(), inst.qubits)
        for offset in range(len(chunk)):
            states[start + offset] = Statevector(batch.row(offset))
    return states


# -- shot-batched trajectory path ----------------------------------------------------


def _execute_trajectory_unit(
    unit: PlannedUnit, noise: NoiseModel | None, memory: bool
) -> tuple[dict[str, int], list[str] | None]:
    compacted = unit.compacted
    plan = trajectory_draw_plan(compacted, noise)
    rng = np.random.default_rng(unit.seed)
    # Row s holds shot s's draws in exactly the order the serial loop would
    # have consumed them: the generator fills the table row-major.
    draws = rng.random((unit.shots, sum(plan)))
    outcomes: list[str] = []
    for start, stop in _tiles(unit.shots, compacted.num_qubits):
        outcomes.extend(
            _run_trajectory_tile(compacted, noise, draws[start:stop], plan)
        )
    return tally_counts(outcomes, memory)


def _run_trajectory_tile(
    circuit: QuantumCircuit,
    noise: NoiseModel | None,
    draws: np.ndarray,
    plan: list[int],
) -> list[str]:
    """Evolve one tile of shots through the trajectory, gates batched.

    ``draws[s, i]`` is the ``i``-th uniform the serial loop would draw for
    shot ``s``; ``plan`` maps instructions to their per-shot draw widths, so
    the cursor advances identically whether or not any branch fires.
    """
    num_qubits, num_clbits = circuit.num_qubits, circuit.num_clbits
    batch = draws.shape[0]
    states = np.zeros((batch, 2**num_qubits), dtype=np.complex128)
    states[:, 0] = 1.0
    clbits = np.zeros((batch, num_clbits), dtype=np.int64)
    cursor = 0
    for inst, width in zip(circuit, plan):
        if inst.name == "barrier":
            continue
        if inst.name == "measure":
            qubit = inst.qubits[0]
            readout = noise.readout_for(qubit) if noise is not None else None
            for s in range(batch):
                p1 = measure_probabilities(states[s], qubit, num_qubits)
                outcome = 1 if draws[s, cursor] < p1 else 0
                states[s] = collapse(states[s], qubit, outcome, num_qubits)
                recorded = outcome
                if readout is not None:
                    flip_p = (
                        readout.p1_given_0
                        if outcome == 0
                        else readout.p0_given_1
                    )
                    if draws[s, cursor + 1] < flip_p:
                        recorded = 1 - outcome
                clbits[s, inst.clbits[0]] = recorded
            cursor += width
            continue
        if inst.name == "reset":
            qubit = inst.qubits[0]
            flipped = []
            for s in range(batch):
                p1 = measure_probabilities(states[s], qubit, num_qubits)
                outcome = 1 if draws[s, cursor] < p1 else 0
                states[s] = collapse(states[s], qubit, outcome, num_qubits)
                if outcome == 1:
                    flipped.append(s)
            if flipped:
                states[flipped] = batch_apply_matrix(
                    states[flipped], _gates.X_MATRIX, [qubit], num_qubits
                )
            cursor += width
            continue
        states = batch_apply_matrix(
            states, inst.matrix(), inst.qubits, num_qubits
        )
        if width:
            channel = noise.channel_for(inst.name, inst.qubits)
            p_x = channel.p_x
            p_xy = channel.p_x + channel.p_y
            p_xyz = channel.p_x + channel.p_y + channel.p_z
            for offset, qubit in enumerate(inst.qubits):
                u = draws[:, cursor + offset]
                # Same left-to-right threshold sums as PauliNoise.sample, so
                # each shot lands in the identical branch it would serially.
                x_mask = u < p_x
                y_mask = ~x_mask & (u < p_xy)
                z_mask = ~x_mask & ~y_mask & (u < p_xyz)
                for mask, pauli in ((x_mask, "x"), (y_mask, "y"), (z_mask, "z")):
                    rows = np.nonzero(mask)[0]
                    if rows.size:
                        states[rows] = batch_apply_matrix(
                            states[rows],
                            _PAULI_MATRICES[pauli],
                            [qubit],
                            num_qubits,
                        )
            cursor += width
    return bit_rows_to_strings(clbits[:, ::-1] + ord("0"))
