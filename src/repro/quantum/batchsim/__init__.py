"""``repro.quantum.batchsim`` — the vectorised batch statevector engine.

A numpy batch-axis simulator behind ``ExecutionService(executor="batch")``:
compatible cache-miss work units (same compacted gate structure and qubit
count; per-unit seed/shots/parameters distinct) evolve together as a
``(batch, 2**n)`` state with one stacked matmul per gate, and noisy units
batch across their *shots* by pre-drawing the serial noise stream.  Results
are bit-identical to the serial engine per ``(seed, circuit, shots, noise)``
— the batch axis is an execution detail, never an observable one.

The cooperating pieces:

* :mod:`~repro.quantum.batchsim.state` — the ``(batch, 2**n)`` state
  container and the bit-exact stacked-matmul gate kernel;
* :mod:`~repro.quantum.batchsim.planner` — groups miss units by compacted
  gate structure and classifies them ``ideal`` / ``shots`` / ``serial``,
  mirroring the serial engine's own path choice;
* :mod:`~repro.quantum.batchsim.engine` — executes ideal groups (shared
  evolution, per-unit sampling) and shot-batched noisy trajectories
  (pre-drawn noise tables, per-Pauli sub-batches), tiled under a memory cap;
* :mod:`~repro.quantum.batchsim.dispatcher` — the service-facing entry that
  runs one group against a backend's noise model.

The :class:`~repro.quantum.execution.service.ExecutionService` drives all of
this transparently: submissions, caching, single-flight dedup and counters
are unchanged, and ``simulations_batched`` / ``batch_groups`` in
``service.stats()`` report how much work took the vectorised path.
"""

from repro.quantum.batchsim.dispatcher import dispatch
from repro.quantum.batchsim.engine import MAX_BATCH_AMPLITUDES, execute_group
from repro.quantum.batchsim.planner import (
    IDEAL,
    SERIAL,
    SHOTS,
    PlannedGroup,
    PlannedUnit,
    batchable_backend,
    make_unit,
    plan,
    structure_fingerprint,
)
from repro.quantum.batchsim.state import BatchStatevector, batch_apply_matrix

__all__ = [
    "BatchStatevector",
    "IDEAL",
    "MAX_BATCH_AMPLITUDES",
    "PlannedGroup",
    "PlannedUnit",
    "SERIAL",
    "SHOTS",
    "batch_apply_matrix",
    "batchable_backend",
    "dispatch",
    "execute_group",
    "make_unit",
    "plan",
    "structure_fingerprint",
]
