"""Batched dense statevectors: ``(batch, 2**n)`` state evolved in lockstep.

The batch axis must not perturb numerics.  Batched executions feed the same
content-addressed result cache as serial ones, so a batch result that differs
from its serial twin — even in the last ulp, which shifts sampled counts —
would poison every later lookup.  The kernel here therefore mirrors
:func:`repro.quantum.statevector.apply_matrix` *exactly* and adds the batch as
a gufunc stack dimension: after moving the target axes to the front of each
row's qubit tensor, the rows are packed contiguously as ``(batch, 2**k,
rest)`` and multiplied with one ``np.matmul`` call.  Every 2-D slice of that
stacked matmul is the identical GEMM shape the serial kernel issues, so BLAS
takes the same code path per row and the results match bit for bit.

The tempting alternative — folding the batch into the matmul's *column*
dimension, ``matrix @ (2**k, batch * rest)`` — is measurably **not**
bit-identical per column: widening the GEMM changes the kernel BLAS selects
and with it the floating-point summation order (~1e-16 deviations on a third
of random trials).  Do not "simplify" the kernel into that form.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import SimulationError


def batch_apply_matrix(
    states: np.ndarray,
    matrix: np.ndarray,
    targets: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply one ``2^k x 2^k`` unitary to ``targets`` of every batched state.

    ``states`` is ``(batch, 2**num_qubits)``; returns a new array of the same
    shape whose row ``i`` equals ``apply_matrix(states[i], matrix, targets,
    num_qubits)`` bit for bit.
    """
    k = len(targets)
    if matrix.shape != (2**k, 2**k):
        raise SimulationError(
            f"matrix shape {matrix.shape} does not match {k} target qubit(s)"
        )
    batch = states.shape[0]
    tensor = states.reshape([batch] + [2] * num_qubits)
    # Same axis arithmetic as the serial kernel, shifted right by the batch
    # axis: tensor axis 1+j is qubit (num_qubits - 1 - j) of each row.
    src_axes = [1 + num_qubits - 1 - t for t in reversed(targets)]
    tensor = np.moveaxis(tensor, src_axes, range(1, 1 + k))
    stacked = np.ascontiguousarray(tensor).reshape(batch, 2**k, -1)
    stacked = np.matmul(matrix, stacked)
    tensor = stacked.reshape([batch] + [2] * num_qubits)
    tensor = np.moveaxis(tensor, range(1, 1 + k), src_axes)
    return tensor.reshape(batch, 2**num_qubits)


class BatchStatevector:
    """A stack of dense n-qubit states evolved gate-by-gate in lockstep."""

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: np.ndarray) -> None:
        arr = np.ascontiguousarray(data, dtype=np.complex128)
        if arr.ndim != 2:
            raise SimulationError(
                f"batched statevector must be 2-D (batch, 2**n), got {arr.ndim}-D"
            )
        n = int(round(math.log2(arr.shape[1]))) if arr.shape[1] else 0
        if arr.shape[1] == 0 or 2**n != arr.shape[1]:
            raise SimulationError(
                f"batched statevector row length {arr.shape[1]} is not a "
                "power of two"
            )
        self._data = arr
        self._num_qubits = n

    @classmethod
    def zero_states(cls, batch: int, num_qubits: int) -> "BatchStatevector":
        """``batch`` copies of |0...0>, ready to evolve."""
        data = np.zeros((batch, 2**num_qubits), dtype=np.complex128)
        data[:, 0] = 1.0
        return cls(data)

    @property
    def batch_size(self) -> int:
        return self._data.shape[0]

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    def apply(self, matrix: np.ndarray, targets: Sequence[int]) -> None:
        """Apply one unitary to every row in place."""
        self._data = batch_apply_matrix(
            self._data, matrix, targets, self._num_qubits
        )

    def apply_rows(
        self, rows: Sequence[int], matrix: np.ndarray, targets: Sequence[int]
    ) -> None:
        """Apply one unitary to a subset of rows (gather, evolve, scatter).

        The gathered sub-batch is a fresh contiguous block, so the kernel's
        per-row GEMM shape — and with it bit-identity — is unchanged.
        """
        if not len(rows):
            return
        sub = self._data[rows]
        self._data[rows] = batch_apply_matrix(
            sub, matrix, targets, self._num_qubits
        )

    def row(self, index: int) -> np.ndarray:
        """A copy of one row's flat amplitudes."""
        return self._data[index].copy()

    def __repr__(self) -> str:
        return (
            f"BatchStatevector(batch={self.batch_size}, "
            f"num_qubits={self._num_qubits})"
        )
