"""Dispatch planned groups through the batch engine.

The thin seam between the :class:`~repro.quantum.execution.service.
ExecutionService` — which owns caching, single-flight leadership and stats
accounting per unit — and the pure numerics in :mod:`~repro.quantum.batchsim.
engine`.  The engine never sees a backend (only its noise model), so it can
be exercised and property-tested without any execution machinery.
"""

from __future__ import annotations

from repro.quantum.backend import Backend
from repro.quantum.batchsim.engine import execute_group
from repro.quantum.batchsim.planner import PlannedGroup


def dispatch(
    backend: Backend, group: PlannedGroup, memory: bool
) -> list[tuple[dict[str, int], list[str] | None]]:
    """Execute one batchable group against a backend's noise model.

    Returns per-unit ``(counts, memory)`` pairs aligned with
    ``group.units``; each pair is bit-identical to what
    ``backend.execute_circuit(unit.circuit, unit.shots, unit.seed, memory)``
    would have produced.
    """
    return execute_group(backend.noise_model, group, memory)
