"""Symbolic circuit parameters and late binding — *the binding module*.

A :class:`Parameter` is a named placeholder accepted anywhere the circuit
builder takes a float angle; a :class:`ParameterExpression` is a simple
affine function of one parameter (``a*θ + b``), built by ordinary arithmetic
on a parameter (``theta / 2``, ``-theta``, ``2 * theta + 1``).  Circuits
carrying unbound symbols are *templates*: one gate structure that
:meth:`~repro.quantum.circuit.QuantumCircuit.bind` instantiates into many
concrete circuits, which is what lets a parameter sweep share one structure
fingerprint, one transpilation and one batch-planner group (see ROADMAP's
"one structure, N bindings, one vectorized execution").

Binding is **bit-identical** to building with concrete floats: an expression
records the exact chain of float operations applied to the symbol (not a
normalised ``(coeff, offset)`` pair), and :meth:`ParameterExpression.bind_value`
replays that chain on the bound value in order.  ``theta / 3`` therefore
evaluates as ``value / 3``, never as ``0.3333… * value`` — the same floating
point ops a concrete builder call would have performed.

This module is the **only** place allowed to coerce gate parameters to
``float`` (``tools/repo_lint.py`` rule R005 enforces it): an unbound symbol
must never silently truncate, so ``float(theta)`` raises a ``[QA105]``-coded
:class:`~repro.errors.CircuitError` and every consumer that genuinely needs
concrete floats goes through :func:`as_concrete`.

The module deliberately imports nothing above :mod:`repro.errors`, so every
layer — circuit, analysis, execution, transpiler — may depend on it without
cycles.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import CircuitError

#: Diagnostic code for "unbound symbolic parameter reaches execution"; the
#: full (severity, description) entry lives in
#: :data:`repro.quantum.analysis.diagnostics.DIAGNOSTIC_CODES`.
UNBOUND_PARAMETER_CODE = "QA105"

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: Identifiers with a fixed meaning in OpenQASM parameter expressions.
_RESERVED_NAMES = frozenset({"pi"})

#: Op-chain codes: each entry is ``(op, operand)`` with ``operand`` a float
#: (``None`` for the unary ``neg``).  Evaluation replays the chain in order.
_OPS: dict[str, Callable[[float, float | None], float]] = {
    "add": lambda x, c: x + c,
    "sub": lambda x, c: x - c,
    "rsub": lambda x, c: c - x,
    "mul": lambda x, c: x * c,
    "div": lambda x, c: x / c,
    "neg": lambda x, c: -x,
}


def _unbound_error(what: str) -> CircuitError:
    return CircuitError(
        f"[{UNBOUND_PARAMETER_CODE}] {what} is an unbound symbolic parameter "
        "and cannot be coerced to a float; call circuit.bind({...}) to "
        "produce a concrete circuit before execution"
    )


def _check_operand(value: object, op: str) -> float:
    if isinstance(value, (Parameter, ParameterExpression)):
        raise CircuitError(
            "parameter expressions are affine in a single symbol; "
            f"cannot apply '{op}' between two symbolic values"
        )
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CircuitError(
            f"parameter arithmetic needs a real number operand, got {value!r}"
        )
    out = float(value)
    if not math.isfinite(out):
        raise CircuitError(f"non-finite operand {value!r} in parameter arithmetic")
    if op == "div" and out == 0.0:
        raise CircuitError("division of a parameter by zero")
    return out


class _Symbolic:
    """Arithmetic shared by :class:`Parameter` and :class:`ParameterExpression`.

    Every operation appends one step to the op chain; the chain is replayed
    verbatim at bind time, so symbolic arithmetic and the equivalent concrete
    arithmetic produce bit-identical floats.
    """

    __slots__ = ()

    # Subclasses provide the root symbol and the existing chain.
    @property
    def parameter(self) -> "Parameter":
        raise NotImplementedError

    def _ops(self) -> tuple[tuple[str, float | None], ...]:
        raise NotImplementedError

    def _extend(self, op: str, operand: float | None) -> "ParameterExpression":
        return ParameterExpression(self.parameter, self._ops() + ((op, operand),))

    def __add__(self, other: object) -> "ParameterExpression":
        return self._extend("add", _check_operand(other, "add"))

    def __radd__(self, other: object) -> "ParameterExpression":
        return self._extend("add", _check_operand(other, "add"))

    def __sub__(self, other: object) -> "ParameterExpression":
        return self._extend("sub", _check_operand(other, "sub"))

    def __rsub__(self, other: object) -> "ParameterExpression":
        return self._extend("rsub", _check_operand(other, "rsub"))

    def __mul__(self, other: object) -> "ParameterExpression":
        return self._extend("mul", _check_operand(other, "mul"))

    def __rmul__(self, other: object) -> "ParameterExpression":
        return self._extend("mul", _check_operand(other, "mul"))

    def __truediv__(self, other: object) -> "ParameterExpression":
        return self._extend("div", _check_operand(other, "div"))

    def __neg__(self) -> "ParameterExpression":
        return self._extend("neg", None)

    def __pos__(self) -> "_Symbolic":
        return self

    def __float__(self) -> float:
        raise _unbound_error(repr(self))

    def __index__(self) -> int:
        raise _unbound_error(repr(self))


class Parameter(_Symbolic):
    """A named symbolic circuit parameter.

    Equality and hashing are by name: two ``Parameter("theta")`` objects are
    the same symbol, which keeps templates stable across pickling, process
    executors and QASM round-trips.  Names must be Python/QASM identifiers
    (so unbound parameters serialise as identifiers in OpenQASM output) and
    may not shadow ``pi``.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise CircuitError(
                f"parameter name must be an identifier, got {name!r}"
            )
        if name in _RESERVED_NAMES:
            raise CircuitError(f"parameter name {name!r} is reserved")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def parameter(self) -> "Parameter":
        return self

    def _ops(self) -> tuple[tuple[str, float | None], ...]:
        return ()

    def bind_value(self, value: float) -> float:
        return float(value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Parameter):
            return self._name == other._name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Parameter", self._name))

    def __repr__(self) -> str:
        return f"Parameter({self._name!r})"

    def __str__(self) -> str:
        return self._name

    def __reduce__(self):
        return (Parameter, (self._name,))


class ParameterExpression(_Symbolic):
    """An affine function of one :class:`Parameter`, as an exact op chain.

    Instances are created by arithmetic on a parameter; the constructor is
    also public so codecs (QASM, the transpile cache) can rebuild a chain.
    """

    __slots__ = ("_parameter", "_chain")

    def __init__(
        self,
        parameter: Parameter,
        ops: Iterable[tuple[str, float | None]],
    ) -> None:
        if not isinstance(parameter, Parameter):
            raise CircuitError(
                f"ParameterExpression needs a Parameter root, got {parameter!r}"
            )
        chain = tuple((str(op), operand) for op, operand in ops)
        for op, operand in chain:
            if op not in _OPS:
                raise CircuitError(f"unknown parameter-expression op {op!r}")
            if (operand is None) != (op == "neg"):
                raise CircuitError(f"bad operand {operand!r} for op {op!r}")
        if not chain:
            raise CircuitError(
                "empty op chain; use the Parameter itself instead"
            )
        self._parameter = parameter
        self._chain = chain

    @property
    def parameter(self) -> Parameter:
        return self._parameter

    def _ops(self) -> tuple[tuple[str, float | None], ...]:
        return self._chain

    @property
    def ops(self) -> tuple[tuple[str, float | None], ...]:
        """The recorded ``(op, operand)`` chain, in application order."""
        return self._chain

    def bind_value(self, value: float) -> float:
        """Replay the recorded float ops on ``value`` (bit-exact)."""
        out = float(value)
        for op, operand in self._chain:
            out = _OPS[op](out, operand)
        return out

    def coefficients(self) -> tuple[float, float]:
        """The affine ``(coeff, offset)`` view of the chain.

        For *presentation* (QASM output, reprs) — evaluation always replays
        the chain itself, because ``coeff * v + offset`` is not bit-identical
        to e.g. ``v / 3`` in floating point.
        """
        coeff, offset = 1.0, 0.0
        for op, operand in self._chain:
            if op == "add":
                offset = offset + operand
            elif op == "sub":
                offset = offset - operand
            elif op == "rsub":
                coeff, offset = -coeff, operand - offset
            elif op == "mul":
                coeff, offset = coeff * operand, offset * operand
            elif op == "div":
                coeff, offset = coeff / operand, offset / operand
            else:  # neg
                coeff, offset = -coeff, -offset
        return coeff, offset

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ParameterExpression):
            return (
                self._parameter == other._parameter
                and self._chain == other._chain
            )
        if isinstance(other, Parameter):
            return False
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ParameterExpression", self._parameter, self._chain))

    def __repr__(self) -> str:
        return f"ParameterExpression({self._parameter!r}, {self._chain!r})"

    def __str__(self) -> str:
        coeff, offset = self.coefficients()
        name = self._parameter.name
        if coeff == 1.0:
            text = name
        elif coeff == -1.0:
            text = f"-{name}"
        else:
            text = f"{coeff!r}*{name}"
        if offset > 0 or (offset == 0.0 and math.copysign(1.0, offset) > 0):
            return text if offset == 0.0 else f"{text} + {offset!r}"
        return f"{text} - {-offset!r}"

    def __reduce__(self):
        return (ParameterExpression, (self._parameter, self._chain))


def is_symbolic(value: object) -> bool:
    """Whether a gate parameter is an unbound symbol (or expression of one)."""
    return isinstance(value, _Symbolic)


def parameter_of(value: object) -> Parameter | None:
    """The root :class:`Parameter` of a symbolic value, else ``None``."""
    if isinstance(value, _Symbolic):
        return value.parameter
    return None


def iter_parameters(params: Iterable[object]) -> Iterator[Parameter]:
    """The root symbol of every symbolic entry, in order (with repeats)."""
    for p in params:
        if isinstance(p, _Symbolic):
            yield p.parameter


def normalize_params(params: Iterable[object]) -> tuple:
    """Validate a builder-supplied parameter tuple, keeping symbols symbolic.

    Numbers are coerced to finite floats exactly as the concrete builder
    always did; :class:`Parameter`/:class:`ParameterExpression` entries pass
    through untouched.  Anything else raises :class:`CircuitError`.
    """
    out = []
    for p in params:
        if isinstance(p, _Symbolic):
            out.append(p)
            continue
        try:
            value = float(p)  # the one sanctioned coercion site
        except (TypeError, ValueError) as exc:
            raise CircuitError(f"gate parameter {p!r} is not a number") from exc
        if not math.isfinite(value):
            raise CircuitError(f"non-finite gate parameter {p!r}")
        out.append(value)
    return tuple(out)


def as_concrete(params: Iterable[object], context: str = "") -> tuple[float, ...]:
    """Coerce a parameter tuple to floats, refusing unbound symbols.

    This is the sanctioned escape hatch for consumers that need concrete
    angles (matrix builders, serialisers): symbols raise the coded
    ``[QA105]`` error instead of truncating.
    """
    out = []
    for p in params:
        if isinstance(p, _Symbolic):
            where = f" in {context}" if context else ""
            raise _unbound_error(f"{p!s}{where}")
        out.append(float(p))
    return tuple(out)


def bind_parameter(value: object, values: Mapping[str, float]) -> object:
    """Bind one parameter entry against a ``name -> float`` mapping.

    Concrete entries pass through; symbols missing from the mapping raise.
    """
    if not isinstance(value, _Symbolic):
        return value
    name = value.parameter.name
    if name not in values:
        raise CircuitError(f"no value bound for parameter '{name}'")
    return value.bind_value(values[name])


# ---------------------------------------------------------------------------
# JSON codec (used by the transpile cache's payload serialisation)
# ---------------------------------------------------------------------------


def params_to_json(params: Iterable[object]) -> list:
    """Encode a parameter tuple into JSON-safe values.

    Floats stay floats; a bare symbol becomes ``{"param": name}`` and an
    expression ``{"param": name, "ops": [[op, operand], ...]}``.
    """
    out: list = []
    for p in params:
        if isinstance(p, ParameterExpression):
            out.append(
                {
                    "param": p.parameter.name,
                    "ops": [list(step) for step in p.ops],
                }
            )
        elif isinstance(p, Parameter):
            out.append({"param": p.name})
        else:
            out.append(float(p))
    return out


def params_from_json(values: Iterable[object]) -> tuple:
    """Decode :func:`params_to_json` output; raises ``ValueError`` if malformed."""
    out = []
    for v in values:
        if isinstance(v, dict):
            try:
                parameter = Parameter(str(v["param"]))
                raw_ops = v.get("ops")
                if raw_ops is None:
                    out.append(parameter)
                else:
                    ops = tuple(
                        (str(op), None if operand is None else float(operand))
                        for op, operand in raw_ops
                    )
                    out.append(ParameterExpression(parameter, ops))
            except (CircuitError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"malformed symbolic parameter {v!r}") from exc
        else:
            out.append(float(v))  # sanctioned: this is the binding module
    return tuple(out)


# ---------------------------------------------------------------------------
# Bind provenance: the link from a bound circuit back to its template
# ---------------------------------------------------------------------------


class BoundProvenance:
    """Where a bound circuit came from: template, parameter order, values.

    Stamped by :meth:`QuantumCircuit.bind` and consulted by the execution
    layer: the structure fingerprint is shared with (computed once on) the
    template, the result-cache fingerprint is derived from the template's
    fingerprint plus the binding vector, and ``service.transpile`` lowers the
    template once and re-binds the output per sweep point.

    ``size`` is the bound circuit's instruction count at bind time; any
    mutation that changes the count invalidates the provenance
    (:meth:`matches` turns false) and consumers fall back to full walks.
    Copies deliberately do not carry provenance.
    """

    __slots__ = ("template", "names", "values", "size")

    def __init__(
        self,
        template,
        names: tuple[str, ...],
        values: tuple[float, ...],
        size: int,
    ) -> None:
        self.template = template
        self.names = tuple(names)
        self.values = tuple(values)
        self.size = int(size)

    def matches(self, circuit) -> bool:
        """Whether the provenance still describes ``circuit`` (no mutation)."""
        return (
            len(circuit._instructions) == self.size
            and len(self.template._instructions) == self.size
        )

    @property
    def mapping(self) -> dict[str, float]:
        return dict(zip(self.names, self.values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={v:.4g}" for n, v in zip(self.names, self.values)
        )
        return f"BoundProvenance({self.template.name}: {pairs})"
