"""The removed v0-era API surface.

The paper finds that the dominant syntactic failure mode of LLM-generated
quantum code is "the misuse of imports or the use of deprecated code"
(Section V-D): models trained on stale corpora emit calls like
``execute(qc, backend)`` or ``Aer.get_backend('qasm_simulator')`` that current
library versions removed.  This module makes those failure modes *real* in the
reproduction: every legacy symbol is importable (so generation succeeds) but
raises :class:`~repro.errors.QuantumDeprecationError` with a migration hint at
call time (so the semantic analyzer catches a structured error and the
multi-pass repair loop — or RAG over current docs — can fix it).
"""

from __future__ import annotations

from repro.errors import QuantumDeprecationError

#: symbol -> migration hint; the single source of truth for the legacy surface.
LEGACY_SYMBOLS: dict[str, str] = {
    "execute": "use backend.run(circuit, shots=...) and job.result()",
    "Aer": "use repro.quantum.LocalSimulator() directly",
    "BasicAer": "use repro.quantum.LocalSimulator() directly",
    "IBMQ": "use repro.quantum.FakeBrisbane() or another Backend",
    "QuantumProgram": "build a QuantumCircuit and run it on a Backend",
    "available_backends": "instantiate the Backend you need directly",
    "get_statevector": "use Statevector.from_circuit(circuit)",
    "compile_circuit": "use repro.quantum.transpile(circuit, backend=...)",
}


def execute(*args, **kwargs):
    """Removed. Was: run a circuit on a backend in one call."""
    raise QuantumDeprecationError("execute", LEGACY_SYMBOLS["execute"])


def available_backends(*args, **kwargs):
    """Removed. Was: list installed providers."""
    raise QuantumDeprecationError(
        "available_backends", LEGACY_SYMBOLS["available_backends"]
    )


def get_statevector(*args, **kwargs):
    """Removed. Was: fetch a snapshot statevector from a result."""
    raise QuantumDeprecationError("get_statevector", LEGACY_SYMBOLS["get_statevector"])


def compile_circuit(*args, **kwargs):
    """Removed. Was: the pre-transpiler compilation entry point."""
    raise QuantumDeprecationError("compile_circuit", LEGACY_SYMBOLS["compile_circuit"])


class _RemovedProvider:
    """Stand-in for removed provider singletons (Aer, BasicAer, IBMQ)."""

    def __init__(self, symbol: str) -> None:
        self._symbol = symbol

    def __getattr__(self, attr: str):
        raise QuantumDeprecationError(
            f"{self._symbol}.{attr}", LEGACY_SYMBOLS[self._symbol]
        )

    def __call__(self, *args, **kwargs):
        raise QuantumDeprecationError(self._symbol, LEGACY_SYMBOLS[self._symbol])


Aer = _RemovedProvider("Aer")
BasicAer = _RemovedProvider("BasicAer")
IBMQ = _RemovedProvider("IBMQ")
QuantumProgram = _RemovedProvider("QuantumProgram")
