"""Gate definitions for the quantum SDK.

Every gate is described by a :class:`GateSpec` (arity, parameter count, and a
matrix builder).  The specs live in a single registry, :data:`GATE_SPECS`, that
the circuit builder, simulators, transpiler and QASM exporter all share, so a
gate added here is immediately usable everywhere.

Matrix conventions: qubit 0 is the *least significant* bit of the state index
(little-endian, matching Qiskit).  For multi-qubit gates the matrix is given in
the order ``(q0, q1, ...)`` = (control, target) for controlled gates.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import GateError
from repro.quantum import parameters as _params

Matrix = np.ndarray
MatrixBuilder = Callable[..., Matrix]

_SQ2 = 1.0 / math.sqrt(2.0)


def _mat(rows: list[list[complex]]) -> Matrix:
    return np.array(rows, dtype=np.complex128)


# ---------------------------------------------------------------------------
# Fixed single-qubit matrices
# ---------------------------------------------------------------------------

I_MATRIX = _mat([[1, 0], [0, 1]])
X_MATRIX = _mat([[0, 1], [1, 0]])
Y_MATRIX = _mat([[0, -1j], [1j, 0]])
Z_MATRIX = _mat([[1, 0], [0, -1]])
H_MATRIX = _mat([[_SQ2, _SQ2], [_SQ2, -_SQ2]])
S_MATRIX = _mat([[1, 0], [0, 1j]])
SDG_MATRIX = _mat([[1, 0], [0, -1j]])
T_MATRIX = _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])
TDG_MATRIX = _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])
SX_MATRIX = 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
SXDG_MATRIX = SX_MATRIX.conj().T


# ---------------------------------------------------------------------------
# Parameterised single-qubit matrices
# ---------------------------------------------------------------------------


def rx_matrix(theta: float) -> Matrix:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def ry_matrix(theta: float) -> Matrix:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def rz_matrix(theta: float) -> Matrix:
    return _mat(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]]
    )


def phase_matrix(lam: float) -> Matrix:
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def u_matrix(theta: float, phi: float, lam: float) -> Matrix:
    """General single-qubit rotation U(theta, phi, lambda)."""
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


# ---------------------------------------------------------------------------
# Multi-qubit matrix builders
# ---------------------------------------------------------------------------


def controlled(base: Matrix) -> Matrix:
    """Return the controlled version of a single-qubit matrix.

    Qubit order is (control, target) with the control the *first* qubit in the
    instruction's qubit list.  In little-endian indexing, basis index
    ``b = t*2 + c`` for qubits (c, t), so the control bit is bit 0.
    """
    dim = base.shape[0]
    out = np.eye(2 * dim, dtype=np.complex128)
    # States where control bit (bit 0) is 1: indices 1, 3, 5, ...
    for i in range(dim):
        for j in range(dim):
            out[2 * i + 1, 2 * j + 1] = base[i, j]
    return out


CX_MATRIX = controlled(X_MATRIX)
CY_MATRIX = controlled(Y_MATRIX)
CZ_MATRIX = controlled(Z_MATRIX)
CH_MATRIX = controlled(H_MATRIX)
CSX_MATRIX = controlled(SX_MATRIX)
CSXDG_MATRIX = controlled(SXDG_MATRIX)

SWAP_MATRIX = _mat(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]]
)
ISWAP_MATRIX = _mat(
    [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]]
)


def crx_matrix(theta: float) -> Matrix:
    return controlled(rx_matrix(theta))


def cry_matrix(theta: float) -> Matrix:
    return controlled(ry_matrix(theta))


def crz_matrix(theta: float) -> Matrix:
    return controlled(rz_matrix(theta))


def cp_matrix(lam: float) -> Matrix:
    return controlled(phase_matrix(lam))


def rxx_matrix(theta: float) -> Matrix:
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    return _mat(
        [[c, 0, 0, s], [0, c, s, 0], [0, s, c, 0], [s, 0, 0, c]]
    )


def ryy_matrix(theta: float) -> Matrix:
    c = math.cos(theta / 2)
    s = math.sin(theta / 2)
    return _mat(
        [
            [c, 0, 0, 1j * s],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [1j * s, 0, 0, c],
        ]
    )


def rzz_matrix(theta: float) -> Matrix:
    e_minus = cmath.exp(-1j * theta / 2)
    e_plus = cmath.exp(1j * theta / 2)
    return np.diag([e_minus, e_plus, e_plus, e_minus]).astype(np.complex128)


def _ccx_matrix() -> Matrix:
    # Qubits (c1, c2, t); little-endian index b = t*4 + c2*2 + c1.
    out = np.eye(8, dtype=np.complex128)
    # Both controls set: indices with bits 0 and 1 set -> 3 (t=0) and 7 (t=1).
    out[3, 3] = 0.0
    out[7, 7] = 0.0
    out[3, 7] = 1.0
    out[7, 3] = 1.0
    return out


CCX_MATRIX = _ccx_matrix()


def _cswap_matrix() -> Matrix:
    # Qubits (c, a, b); swap a<->b when c (bit 0) is 1.
    out = np.eye(8, dtype=np.complex128)
    # c=1, a=1, b=0 -> index 0b011=3 ; c=1, a=0, b=1 -> index 0b101=5.
    out[3, 3] = 0.0
    out[5, 5] = 0.0
    out[3, 5] = 1.0
    out[5, 3] = 1.0
    return out


CSWAP_MATRIX = _cswap_matrix()


def ccz_matrix() -> Matrix:
    out = np.eye(8, dtype=np.complex128)
    out[7, 7] = -1.0
    return out


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lower-case gate name.
        num_qubits: arity.
        num_params: number of float parameters.
        builder: callable returning the unitary matrix given the parameters.
        self_inverse: whether ``G @ G == I`` (used by the gate-cancellation
            optimizer).
        hermitian_pair: name of the gate that is this gate's inverse, when that
            inverse is itself a named gate (e.g. ``s`` <-> ``sdg``).
    """

    name: str
    num_qubits: int
    num_params: int
    builder: MatrixBuilder
    self_inverse: bool = False
    hermitian_pair: str | None = None
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def matrix(self, params: tuple[float, ...] = ()) -> Matrix:
        if len(params) != self.num_params:
            raise GateError(
                f"gate '{self.name}' takes {self.num_params} parameter(s), "
                f"got {len(params)}"
            )
        if self.num_params == 0:
            return self.builder()
        if any(_params.is_symbolic(p) for p in params):
            raise GateError(
                f"[{_params.UNBOUND_PARAMETER_CODE}] gate '{self.name}' has "
                "unbound symbolic parameter(s); bind the circuit before "
                "requesting a matrix"
            )
        return self.builder(*params)


def _const(matrix: Matrix) -> MatrixBuilder:
    return lambda: matrix


GATE_SPECS: dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> None:
    GATE_SPECS[spec.name] = spec
    for alias in spec.aliases:
        GATE_SPECS[alias] = spec


for _spec in [
    GateSpec("id", 1, 0, _const(I_MATRIX), self_inverse=True),
    GateSpec("x", 1, 0, _const(X_MATRIX), self_inverse=True),
    GateSpec("y", 1, 0, _const(Y_MATRIX), self_inverse=True),
    GateSpec("z", 1, 0, _const(Z_MATRIX), self_inverse=True),
    GateSpec("h", 1, 0, _const(H_MATRIX), self_inverse=True),
    GateSpec("s", 1, 0, _const(S_MATRIX), hermitian_pair="sdg"),
    GateSpec("sdg", 1, 0, _const(SDG_MATRIX), hermitian_pair="s"),
    GateSpec("t", 1, 0, _const(T_MATRIX), hermitian_pair="tdg"),
    GateSpec("tdg", 1, 0, _const(TDG_MATRIX), hermitian_pair="t"),
    GateSpec("sx", 1, 0, _const(SX_MATRIX), hermitian_pair="sxdg"),
    GateSpec("sxdg", 1, 0, _const(SXDG_MATRIX), hermitian_pair="sx"),
    GateSpec("rx", 1, 1, rx_matrix),
    GateSpec("ry", 1, 1, ry_matrix),
    GateSpec("rz", 1, 1, rz_matrix),
    GateSpec("p", 1, 1, phase_matrix, aliases=("phase",)),
    GateSpec("u", 1, 3, u_matrix),
    GateSpec("cx", 2, 0, _const(CX_MATRIX), self_inverse=True, aliases=("cnot",)),
    GateSpec("cy", 2, 0, _const(CY_MATRIX), self_inverse=True),
    GateSpec("cz", 2, 0, _const(CZ_MATRIX), self_inverse=True),
    GateSpec("ch", 2, 0, _const(CH_MATRIX), self_inverse=True),
    GateSpec("csx", 2, 0, _const(CSX_MATRIX), hermitian_pair="csxdg"),
    GateSpec("csxdg", 2, 0, _const(CSXDG_MATRIX), hermitian_pair="csx"),
    GateSpec("swap", 2, 0, _const(SWAP_MATRIX), self_inverse=True),
    GateSpec("iswap", 2, 0, _const(ISWAP_MATRIX)),
    GateSpec("crx", 2, 1, crx_matrix),
    GateSpec("cry", 2, 1, cry_matrix),
    GateSpec("crz", 2, 1, crz_matrix),
    GateSpec("cp", 2, 1, cp_matrix, aliases=("cphase",)),
    GateSpec("rxx", 2, 1, rxx_matrix),
    GateSpec("ryy", 2, 1, ryy_matrix),
    GateSpec("rzz", 2, 1, rzz_matrix),
    GateSpec("ccx", 3, 0, _const(CCX_MATRIX), self_inverse=True),
    GateSpec("ccz", 3, 0, ccz_matrix, self_inverse=True),
    GateSpec("cswap", 3, 0, _const(CSWAP_MATRIX), self_inverse=True),
]:
    _register(_spec)


#: Instruction names that are not unitary gates.
NON_UNITARY = frozenset({"measure", "reset", "barrier"})


def get_spec(name: str) -> GateSpec:
    """Look up a gate spec by (case-insensitive) name.

    Raises:
        GateError: if the gate is unknown.
    """
    spec = GATE_SPECS.get(name.lower())
    if spec is None:
        raise GateError(
            f"unknown gate '{name}'. Known gates: "
            + ", ".join(sorted({s.name for s in GATE_SPECS.values()}))
        )
    return spec


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> Matrix:
    """Return the unitary matrix for a named gate."""
    return get_spec(name).matrix(tuple(params))


def inverse_params(name: str, params: tuple[float, ...]) -> tuple[str, tuple[float, ...]]:
    """Return ``(name, params)`` of the inverse of a gate application."""
    spec = get_spec(name)
    if spec.self_inverse:
        return spec.name, params
    if spec.hermitian_pair is not None:
        return spec.hermitian_pair, params
    if spec.name == "u":
        theta, phi, lam = params
        return "u", (-theta, -lam, -phi)
    if spec.name == "iswap":
        # iswap^-1 has no named gate here; undo with three applications
        # is wrong, so express via parameters of xx+yy rotation instead.
        raise GateError("iswap has no named inverse; decompose it first")
    if spec.num_params >= 1:
        # All remaining parameterised gates are rotations: negate the angle(s).
        return spec.name, tuple(-p for p in params)
    raise GateError(f"cannot invert gate '{name}'")
