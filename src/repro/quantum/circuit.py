"""Quantum circuit construction: registers, instructions, and the builder API.

The public surface intentionally mirrors the modern Qiskit ``QuantumCircuit``
builder (``qc.h(0)``, ``qc.cx(0, 1)``, ``qc.measure_all()``) because the
simulated LLM emits code against this API and the evaluation suite grades it.
A separate *legacy* surface with removed methods lives in
:mod:`repro.quantum.legacy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import CircuitError, QuantumDeprecationError
from repro.quantum import gates as _gates
from repro.quantum.parameters import (
    BoundProvenance,
    Parameter,
    bind_parameter,
    is_symbolic,
    iter_parameters,
    normalize_params,
)


class QuantumRegister:
    """A named block of qubits."""

    prefix = "q"

    def __init__(self, size: int, name: str | None = None) -> None:
        if size <= 0:
            raise CircuitError(f"register size must be positive, got {size}")
        self.size = int(size)
        self.name = name if name is not None else self.prefix
        self._validate_name()

    def _validate_name(self) -> None:
        if not self.name or not self.name[0].isalpha():
            raise CircuitError(f"invalid register name '{self.name}'")

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.size}, '{self.name}')"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.size == other.size  # type: ignore[attr-defined]
            and self.name == other.name  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.size, self.name))


class ClassicalRegister(QuantumRegister):
    """A named block of classical bits."""

    prefix = "c"


@dataclass(frozen=True)
class Instruction:
    """One operation in a circuit.

    Attributes:
        name: gate or directive name (``'h'``, ``'cx'``, ``'measure'``, ...).
        qubits: global qubit indices the operation acts on.
        clbits: global classical bit indices written (only for ``measure``).
        params: gate parameters (rotation angles) — floats, or unbound
            :class:`~repro.quantum.parameters.Parameter` symbols / affine
            expressions in a template circuit.
        condition: optional ``(clbit, value)`` pair — the op applies only when
            that classical bit currently holds ``value``.
    """

    name: str
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()
    params: tuple[float, ...] = ()
    condition: tuple[int, int] | None = None

    @property
    def is_unitary(self) -> bool:
        return self.name not in _gates.NON_UNITARY

    def matrix(self):
        """Unitary matrix of the instruction (unitary gates only)."""
        return _gates.gate_matrix(self.name, self.params)

    def inverse(self) -> "Instruction":
        if not self.is_unitary:
            raise CircuitError(f"'{self.name}' is not invertible")
        name, params = _gates.inverse_params(self.name, self.params)
        return Instruction(name, self.qubits, self.clbits, params, self.condition)

    def __repr__(self) -> str:
        parts = [self.name]
        if self.params:
            rendered = ", ".join(
                str(p) if is_symbolic(p) else f"{p:.4g}" for p in self.params
            )
            parts.append(f"({rendered})")
        parts.append(" q" + str(list(self.qubits)))
        if self.clbits:
            parts.append(" -> c" + str(list(self.clbits)))
        return "".join(parts)


class QuantumCircuit:
    """A sequence of quantum instructions over qubit and clbit registers.

    Construction accepts either sizes or registers::

        qc = QuantumCircuit(3)                     # 3 qubits, no clbits
        qc = QuantumCircuit(3, 3)                  # 3 qubits, 3 clbits
        qr = QuantumRegister(2, 'qr')
        cr = ClassicalRegister(2, 'cr')
        qc = QuantumCircuit(qr, cr)
    """

    def __init__(self, *regs: int | QuantumRegister, name: str = "circuit") -> None:
        self.name = name
        self.qregs: list[QuantumRegister] = []
        self.cregs: list[ClassicalRegister] = []
        self._instructions: list[Instruction] = []
        self.metadata: dict = {}
        #: Set by :meth:`bind` only — links a bound circuit to its template so
        #: fingerprints and transpilation are shared per structure.  Copies
        #: never carry it.
        self._bound_from: BoundProvenance | None = None
        self._parse_regs(regs)

    def _parse_regs(self, regs: Sequence[int | QuantumRegister]) -> None:
        ints = [r for r in regs if isinstance(r, int)]
        if ints:
            if len(regs) > 2 or not all(isinstance(r, int) for r in regs):
                raise CircuitError(
                    "mixing integer sizes and register objects is not supported"
                )
            self.qregs.append(QuantumRegister(ints[0], "q"))
            if len(ints) == 2 and ints[1] > 0:
                self.cregs.append(ClassicalRegister(ints[1], "c"))
            return
        for reg in regs:
            self.add_register(reg)  # type: ignore[arg-type]

    # -- registers ----------------------------------------------------------

    def add_register(self, reg: QuantumRegister) -> None:
        target = self.cregs if isinstance(reg, ClassicalRegister) else self.qregs
        if any(existing.name == reg.name for existing in target):
            raise CircuitError(f"duplicate register name '{reg.name}'")
        target.append(reg)

    @property
    def num_qubits(self) -> int:
        return sum(r.size for r in self.qregs)

    @property
    def num_clbits(self) -> int:
        return sum(r.size for r in self.cregs)

    @property
    def instructions(self) -> list[Instruction]:
        return list(self._instructions)

    @property
    def data(self) -> list[Instruction]:
        """Alias for :attr:`instructions` (Qiskit compatibility)."""
        return self.instructions

    # -- validation ---------------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> tuple[int, ...]:
        out = []
        for q in qubits:
            if not isinstance(q, (int,)) or isinstance(q, bool):
                raise CircuitError(f"qubit index must be an int, got {q!r}")
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"qubit index {q} out of range for {self.num_qubits}-qubit circuit"
                )
            out.append(int(q))
        if len(set(out)) != len(out):
            raise CircuitError(f"duplicate qubit indices {out}")
        return tuple(out)

    def _check_clbits(self, clbits: Iterable[int]) -> tuple[int, ...]:
        out = []
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(
                    f"clbit index {c} out of range for {self.num_clbits}-clbit circuit"
                )
            out.append(int(c))
        return tuple(out)

    # -- generic append -----------------------------------------------------

    def append(
        self,
        name: str,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
        params: Sequence[float] = (),
        condition: tuple[int, int] | None = None,
    ) -> "QuantumCircuit":
        """Append an instruction by name; validates arity and indices."""
        name = name.lower()
        qubits = self._check_qubits(qubits)
        clbits = self._check_clbits(clbits)
        if name not in _gates.NON_UNITARY:
            spec = _gates.get_spec(name)
            if spec.num_qubits != len(qubits):
                raise CircuitError(
                    f"gate '{name}' acts on {spec.num_qubits} qubit(s), "
                    f"got {len(qubits)}"
                )
            if spec.num_params != len(params):
                raise CircuitError(
                    f"gate '{name}' takes {spec.num_params} parameter(s), "
                    f"got {len(params)}"
                )
            name = spec.name  # canonicalise aliases
        self._instructions.append(
            Instruction(name, qubits, clbits, normalize_params(params), condition)
        )
        return self

    # -- single-qubit gates --------------------------------------------------

    def id(self, qubit: int) -> "QuantumCircuit":
        return self.append("id", [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append("x", [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append("y", [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append("z", [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append("h", [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append("s", [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sdg", [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append("t", [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("tdg", [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append("sx", [qubit])

    def sxdg(self, qubit: int) -> "QuantumCircuit":
        return self.append("sxdg", [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("rx", [qubit], params=[theta])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("ry", [qubit], params=[theta])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append("rz", [qubit], params=[theta])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append("p", [qubit], params=[lam])

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append("u", [qubit], params=[theta, phi, lam])

    # -- two-qubit gates ------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cx", [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cy", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("cz", [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("ch", [control, target])

    def csx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append("csx", [control, target])

    def swap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append("swap", [qubit1, qubit2])

    def iswap(self, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append("iswap", [qubit1, qubit2])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("crx", [control, target], params=[theta])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("cry", [control, target], params=[theta])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("crz", [control, target], params=[theta])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.append("cp", [control, target], params=[lam])

    def rxx(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append("rxx", [qubit1, qubit2], params=[theta])

    def ryy(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append("ryy", [qubit1, qubit2], params=[theta])

    def rzz(self, theta: float, qubit1: int, qubit2: int) -> "QuantumCircuit":
        return self.append("rzz", [qubit1, qubit2], params=[theta])

    # -- three-qubit gates -----------------------------------------------------

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        return self.append("ccx", [control1, control2, target])

    def ccz(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        return self.append("ccz", [control1, control2, target])

    def cswap(self, control: int, target1: int, target2: int) -> "QuantumCircuit":
        return self.append("cswap", [control, target1, target2])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X for 1 or 2 controls (larger fan-in is decomposed
        by the transpiler, which the builder does not depend on)."""
        controls = list(controls)
        if len(controls) == 1:
            return self.cx(controls[0], target)
        if len(controls) == 2:
            return self.ccx(controls[0], controls[1], target)
        raise CircuitError(
            f"mcx supports 1 or 2 controls at build time, got {len(controls)}; "
            "decompose larger fan-ins explicitly"
        )

    # -- non-unitary ops --------------------------------------------------------

    def measure(self, qubit: int | Sequence[int], clbit: int | Sequence[int]) -> "QuantumCircuit":
        qubits = [qubit] if isinstance(qubit, int) else list(qubit)
        clbits = [clbit] if isinstance(clbit, int) else list(clbit)
        if len(qubits) != len(clbits):
            raise CircuitError(
                f"measure maps {len(qubits)} qubit(s) to {len(clbits)} clbit(s)"
            )
        for q, c in zip(qubits, clbits):
            self.append("measure", [q], [c])
        return self

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit; adds a ``meas`` classical register if needed."""
        if self.num_clbits < self.num_qubits:
            self.add_register(
                ClassicalRegister(self.num_qubits - self.num_clbits, "meas")
            )
        for q in range(self.num_qubits):
            self.append("measure", [q], [q])
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        return self.append("reset", [qubit])

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        qs = list(qubits) if qubits else list(range(self.num_qubits))
        self._instructions.append(Instruction("barrier", self._check_qubits(qs)))
        return self

    # -- structure ---------------------------------------------------------------

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
    ) -> "QuantumCircuit":
        """Append ``other``'s instructions onto this circuit (in place).

        ``qubits``/``clbits`` map the other circuit's indices onto this one;
        identity mapping by default.  Returns ``self`` for chaining.
        """
        qmap = list(qubits) if qubits is not None else list(range(other.num_qubits))
        cmap = list(clbits) if clbits is not None else list(range(other.num_clbits))
        if len(qmap) != other.num_qubits:
            raise CircuitError(
                f"qubit map has {len(qmap)} entries, composed circuit has "
                f"{other.num_qubits} qubits"
            )
        if len(cmap) < other.num_clbits:
            raise CircuitError(
                f"clbit map has {len(cmap)} entries, composed circuit has "
                f"{other.num_clbits} clbits"
            )
        for inst in other._instructions:
            mapped_q = tuple(qmap[q] for q in inst.qubits)
            mapped_c = tuple(cmap[c] for c in inst.clbits)
            cond = inst.condition
            if cond is not None:
                cond = (cmap[cond[0]], cond[1])
            if inst.name == "barrier":
                self._instructions.append(
                    Instruction("barrier", self._check_qubits(mapped_q))
                )
            else:
                self.append(inst.name, mapped_q, mapped_c, inst.params, cond)
        return self

    def inverse(self) -> "QuantumCircuit":
        """Return a new circuit implementing the inverse unitary.

        Raises:
            CircuitError: if the circuit contains measure/reset.
        """
        inv = self.copy_empty(name=f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if inst.name == "barrier":
                inv._instructions.append(inst)
                continue
            inv._instructions.append(inst.inverse())
        return inv

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        new = self.copy_empty(name=name or self.name)
        new._instructions = list(self._instructions)
        new.metadata = dict(self.metadata)
        return new

    def copy_empty(self, name: str | None = None) -> "QuantumCircuit":
        new = QuantumCircuit(name=name or self.name)
        new.qregs = list(self.qregs)
        new.cregs = list(self.cregs)
        return new

    def power(self, exponent: int) -> "QuantumCircuit":
        """Return the circuit repeated ``exponent`` times (inverse if negative)."""
        if exponent == 0:
            return self.copy_empty(name=f"{self.name}^0")
        base = self if exponent > 0 else self.inverse()
        out = base.copy(name=f"{self.name}^{exponent}")
        for _ in range(abs(exponent) - 1):
            out.compose(base)
        return out

    # -- symbolic parameters -----------------------------------------------------

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """Unbound parameters in first-appearance order (deduplicated)."""
        seen: dict[str, Parameter] = {}
        for inst in self._instructions:
            for param in iter_parameters(inst.params):
                seen.setdefault(param.name, param)
        return tuple(seen.values())

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def is_parameterized(self) -> bool:
        """Whether any instruction still carries an unbound symbol."""
        return any(
            any(is_symbolic(p) for p in inst.params)
            for inst in self._instructions
        )

    def bind(
        self,
        values: Mapping[Parameter | str, float],
        *,
        allow_unused: bool = False,
    ) -> "QuantumCircuit":
        """Return a concrete circuit with every symbol replaced by its value.

        ``values`` maps :class:`Parameter` objects (or their names) to floats.
        Every parameter in the circuit must be bound; keys naming no circuit
        parameter raise unless ``allow_unused=True``.  Binding replays each
        expression's recorded float ops, so the result is bit-identical to
        building the circuit with the concrete values directly.
        """
        named: dict[str, float] = {}
        for key, raw in values.items():
            name = key.name if isinstance(key, Parameter) else str(key)
            try:
                value = float(raw)
            except (TypeError, ValueError) as exc:
                raise CircuitError(
                    f"binding for '{name}' is not a number: {raw!r}"
                ) from exc
            if not math.isfinite(value):
                raise CircuitError(f"non-finite binding {raw!r} for '{name}'")
            named[name] = value
        params = self.parameters
        param_names = [p.name for p in params]
        missing = [n for n in param_names if n not in named]
        if missing:
            raise CircuitError(
                f"bind() is missing values for parameter(s): {', '.join(missing)}"
            )
        if not allow_unused:
            unused = [n for n in named if n not in param_names]
            if unused:
                raise CircuitError(
                    f"bind() got values for unknown parameter(s): "
                    f"{', '.join(sorted(unused))} (pass allow_unused=True to ignore)"
                )
        bound = self.copy_empty(name=self.name)
        bound.metadata = dict(self.metadata)
        for inst in self._instructions:
            if any(is_symbolic(p) for p in inst.params):
                new_params = tuple(
                    bind_parameter(p, named) for p in inst.params
                )
                for value in new_params:
                    if not math.isfinite(value):
                        raise CircuitError(
                            f"binding produced non-finite parameter {value!r} "
                            f"for gate '{inst.name}'"
                        )
                bound._instructions.append(
                    Instruction(
                        inst.name, inst.qubits, inst.clbits, new_params,
                        inst.condition,
                    )
                )
            else:
                bound._instructions.append(inst)
        if params:
            bound._bound_from = BoundProvenance(
                template=self,
                names=tuple(param_names),
                values=tuple(named[n] for n in param_names),
                size=len(bound._instructions),
            )
        return bound

    # -- queries ----------------------------------------------------------------

    def count_ops(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for inst in self._instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return dict(sorted(counts.items()))

    def depth(self) -> int:
        """Circuit depth: longest path of instructions over shared qubits/clbits."""
        level: dict[tuple[str, int], int] = {}
        depth = 0
        for inst in self._instructions:
            if inst.name == "barrier":
                continue
            wires = [("q", q) for q in inst.qubits] + [("c", c) for c in inst.clbits]
            if inst.condition is not None:
                wires.append(("c", inst.condition[0]))
            current = max((level.get(w, 0) for w in wires), default=0) + 1
            for w in wires:
                level[w] = current
            depth = max(depth, current)
        return depth

    def size(self) -> int:
        """Number of non-barrier instructions."""
        return sum(1 for i in self._instructions if i.name != "barrier")

    def width(self) -> int:
        return self.num_qubits + self.num_clbits

    def has_measurements(self) -> bool:
        return any(i.name == "measure" for i in self._instructions)

    def measured_qubit_to_clbit(self) -> dict[int, int]:
        """Final qubit->clbit mapping implied by the measure instructions."""
        mapping: dict[int, int] = {}
        for inst in self._instructions:
            if inst.name == "measure":
                mapping[inst.qubits[0]] = inst.clbits[0]
        return mapping

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy with all trailing measure instructions removed."""
        out = self.copy()
        while out._instructions and out._instructions[-1].name == "measure":
            out._instructions.pop()
        return out

    def remove_all_measurements(self) -> "QuantumCircuit":
        """Return a copy with every measure instruction removed."""
        out = self.copy_empty()
        out._instructions = [i for i in self._instructions if i.name != "measure"]
        return out

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name='{self.name}', qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, size={self.size()})"
        )

    def draw(self) -> str:
        """Plain-text rendering: one line per instruction."""
        header = f"{self.name}: {self.num_qubits} qubits, {self.num_clbits} clbits"
        body = "\n".join(f"  {i!r}" for i in self._instructions)
        return header + ("\n" + body if body else "")

    # -- removed legacy methods ----------------------------------------------
    # These raise structured deprecation errors so generated code using the
    # v0-era API fails with an actionable message (see repro.quantum.legacy).

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        raise QuantumDeprecationError("QuantumCircuit.u1", "use qc.p(lam, qubit)")

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.u2", "use qc.u(pi/2, phi, lam, qubit)"
        )

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.u3", "use qc.u(theta, phi, lam, qubit)"
        )

    def cu1(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.cu1", "use qc.cp(lam, control, target)"
        )

    def iden(self, qubit: int) -> "QuantumCircuit":
        raise QuantumDeprecationError("QuantumCircuit.iden", "use qc.id(qubit)")

    def toffoli(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.toffoli", "use qc.ccx(control1, control2, target)"
        )

    def fredkin(self, control: int, target1: int, target2: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.fredkin", "use qc.cswap(control, target1, target2)"
        )

    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.cnot", "use qc.cx(control, target)"
        )

    def snapshot(self, label: str) -> "QuantumCircuit":
        raise QuantumDeprecationError(
            "QuantumCircuit.snapshot", "use Statevector.from_circuit(qc) instead"
        )
