"""Backend abstraction: run circuits, get jobs, read results.

Mirrors the modern Qiskit primitive of ``backend.run(circuit, shots=...)``
returning a job whose ``result()`` exposes ``get_counts()``.  Backends with a
coupling map *reject* circuits that use uncoupled qubit pairs — generated code
must transpile first, reproducing a realistic failure mode of LLM-written
Qiskit programs.

``Backend.run`` is a compatibility shim over the unified execution subsystem
(:mod:`repro.quantum.execution`): it routes through the shared
:class:`~repro.quantum.execution.service.ExecutionService`, so legacy call
sites get the content-addressed result cache and its counters for free.  New
code should prefer ``get_backend(name)`` + ``service.submit(...)``.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import MAX_DENSE_QUBITS, simulate_counts
from repro.quantum.topology import CouplingMap

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quantum.execution.jobs import ExecutionJob


class Result:
    """Execution results for one or more circuits."""

    def __init__(
        self,
        counts_list: list[dict[str, int]],
        memory_list: list[list[str] | None],
        backend_name: str,
        shots: int,
        seed: int | None,
    ) -> None:
        self._counts_list = counts_list
        self._memory_list = memory_list
        self.backend_name = backend_name
        self.shots = shots
        self.seed = seed
        self.success = True

    def get_counts(self, index: int = 0) -> dict[str, int]:
        """Counts for circuit ``index`` (bitstring -> frequency)."""
        try:
            return dict(self._counts_list[index])
        except IndexError as exc:
            raise BackendError(
                f"result has {len(self._counts_list)} circuit(s), "
                f"index {index} out of range"
            ) from exc

    def get_memory(self, index: int = 0) -> list[str]:
        """Per-shot bitstrings; requires ``memory=True`` at run time."""
        try:
            mem = self._memory_list[index]
        except IndexError as exc:
            raise BackendError(
                f"result has {len(self._memory_list)} circuit(s), "
                f"index {index} out of range"
            ) from exc
        if mem is None:
            raise BackendError("run with memory=True to record per-shot results")
        return list(mem)

    def get_probabilities(self, index: int = 0) -> dict[str, float]:
        counts = self.get_counts(index)
        total = sum(counts.values())
        return {k: v / total for k, v in counts.items()}

    def __repr__(self) -> str:
        return (
            f"Result(backend='{self.backend_name}', circuits="
            f"{len(self._counts_list)}, shots={self.shots})"
        )


class Job:
    """A (synchronously completed) execution job.

    Legacy surface kept for callers that construct jobs directly;
    ``Backend.run`` now returns the richer
    :class:`~repro.quantum.execution.jobs.ExecutionJob`, whose ``status()``
    compares equal to the ``"DONE"`` strings this class exposes.
    """

    def __init__(self, result: Result, job_id: str) -> None:
        self._result = result
        self.job_id = job_id

    def result(self) -> Result:
        return self._result

    def status(self) -> str:
        return "DONE"

    def __repr__(self) -> str:
        return f"Job(id='{self.job_id}', status=DONE)"


class Backend:
    """Base class for simulated execution targets."""

    def __init__(
        self,
        name: str,
        num_qubits: int,
        coupling_map: CouplingMap | None = None,
        noise_model: NoiseModel | None = None,
        basis_gates: tuple[str, ...] | None = None,
        max_shots: int = 1_000_000,
        max_active_qubits: int = MAX_DENSE_QUBITS,
    ) -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.coupling_map = coupling_map
        self.noise_model = noise_model
        self.basis_gates = basis_gates
        self.max_shots = max_shots
        #: Dense-simulation cap on *touched* qubits; device width may exceed
        #: it because transpiled circuits live on physical indices.
        self.max_active_qubits = max_active_qubits

    # -- validation ------------------------------------------------------------

    def _validate_circuit(self, circuit: QuantumCircuit) -> None:
        if not isinstance(circuit, QuantumCircuit):
            raise BackendError(
                f"backend.run expects a QuantumCircuit, got {type(circuit).__name__}"
            )
        touched = {q for inst in circuit for q in inst.qubits}
        # Only *touched* qubits are checked against the device width: a wide
        # declared register with no instructions (or instructions confined to
        # low indices) is executable anywhere, so an empty circuit must not
        # fall back to comparing its declared width against the device.
        if touched:
            highest = max(touched)
            if highest >= self.num_qubits:
                raise BackendError(
                    f"circuit uses qubit {highest} but backend "
                    f"'{self.name}' has {self.num_qubits} qubits"
                )
        if len(touched) > self.max_active_qubits:
            raise BackendError(
                f"backend '{self.name}' simulates at most "
                f"{self.max_active_qubits} active qubits densely; circuit "
                f"touches {len(touched)}"
            )
        if self.coupling_map is not None:
            for inst in circuit:
                if inst.name == "barrier" or len(inst.qubits) < 2:
                    continue
                for a, b in itertools.combinations(inst.qubits, 2):
                    if not self.coupling_map.are_coupled(a, b):
                        raise BackendError(
                            f"'{inst.name}' on qubits {inst.qubits} violates the "
                            f"coupling map of '{self.name}'; run "
                            "transpile(circuit, backend=...) first"
                        )
        if self.basis_gates is not None:
            for inst in circuit:
                if inst.name in ("measure", "reset", "barrier"):
                    continue
                if inst.name not in self.basis_gates:
                    raise BackendError(
                        f"gate '{inst.name}' is not in the basis "
                        f"{self.basis_gates} of '{self.name}'; run "
                        "transpile(circuit, backend=...) first"
                    )

    def validate_batch(
        self, circuits: Sequence[QuantumCircuit], shots: int
    ) -> None:
        """Validate a batch submission (used by the ExecutionService)."""
        if not circuits:
            raise BackendError("backend.run called with no circuits")
        if not 0 < shots <= self.max_shots:
            raise BackendError(
                f"shots must be in 1..{self.max_shots}, got {shots}"
            )
        for qc in circuits:
            self._validate_circuit(qc)

    # -- execution ----------------------------------------------------------------

    def execute_circuit(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: int | None = None,
        memory: bool = False,
    ) -> tuple[dict[str, int], list[str] | None]:
        """Low-level single-circuit simulation (no validation, no caching).

        This is the primitive the :class:`ExecutionService` workers call; it
        carries the backend's noise model into the simulator and nothing else.
        """
        rng = np.random.default_rng(seed)
        return simulate_counts(
            circuit, shots, rng, noise=self.noise_model, memory=memory
        )

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        shots: int = 1024,
        seed: int | None = None,
        memory: bool = False,
    ) -> "ExecutionJob":
        """Execute one circuit or a list of circuits; returns a finished job.

        Compatibility shim: delegates to the shared
        :class:`~repro.quantum.execution.service.ExecutionService`, so repeated
        deterministic runs are served from the result cache.  Validation
        errors raise here, exactly as before; the returned job is already
        ``DONE``.
        """
        from repro.quantum.execution.service import default_service

        return default_service().run(
            circuits, backend=self, shots=shots, seed=seed, memory=memory
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name='{self.name}', qubits={self.num_qubits})"


#: Nominal width of simulators without a coupling map: any qubit index below
#: this is accepted as long as the touched-qubit count stays dense-simulable.
UNCONSTRAINED_WIDTH = 4096


class LocalSimulator(Backend):
    """Ideal, fully-connected statevector simulator (the default target)."""

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        super().__init__(
            name="local_simulator",
            num_qubits=UNCONSTRAINED_WIDTH,
            coupling_map=None,
            noise_model=noise_model,
        )


class NoisySimulator(Backend):
    """A simulator with an explicit noise model and optional connectivity."""

    def __init__(
        self,
        noise_model: NoiseModel,
        coupling_map: CouplingMap | None = None,
        name: str = "noisy_simulator",
        num_qubits: int | None = None,
    ) -> None:
        if num_qubits is None:
            num_qubits = (
                coupling_map.num_qubits
                if coupling_map is not None
                else UNCONSTRAINED_WIDTH
            )
        super().__init__(
            name=name,
            num_qubits=num_qubits,
            coupling_map=coupling_map,
            noise_model=noise_model,
        )


#: Published Brisbane-class calibration magnitudes (median values).
BRISBANE_1Q_ERROR = 2.5e-4
BRISBANE_2Q_ERROR = 7.5e-3
BRISBANE_READOUT_ERROR = 1.3e-2


class FakeBrisbane(Backend):
    """A 127-qubit Eagle-class device: heavy-hex coupling + calibrated noise.

    Dense simulation obviously cannot hold 127 qubits; the backend accepts
    circuits up to :data:`MAX_DENSE_QUBITS` wide and validates their layout
    against the first qubits of the heavy-hex map, which is how the paper's
    Figure-4(b) experiment uses the device (a 3-qubit Deutsch–Jozsa circuit
    placed on a Brisbane line).
    """

    def __init__(self) -> None:
        noise = NoiseModel.uniform_depolarizing(
            p_1q=BRISBANE_1Q_ERROR,
            p_2q=BRISBANE_2Q_ERROR,
            p_readout=BRISBANE_READOUT_ERROR,
        )
        super().__init__(
            name="fake_brisbane",
            num_qubits=127,
            coupling_map=CouplingMap.brisbane(),
            noise_model=noise,
            basis_gates=("id", "rz", "sx", "x", "cx", "measure", "reset", "barrier"),
        )


class FakeFalcon(Backend):
    """A 5-qubit Falcon-class device with T-shaped connectivity.

    Topology (matching IBM Lima/Belem): ``0-1, 1-2, 1-3, 3-4``.
    """

    def __init__(self) -> None:
        noise = NoiseModel.uniform_depolarizing(
            p_1q=3.0e-4, p_2q=1.0e-2, p_readout=2.0e-2
        )
        super().__init__(
            name="fake_falcon",
            num_qubits=5,
            coupling_map=CouplingMap([(0, 1), (1, 2), (1, 3), (3, 4)], name="falcon-t"),
            noise_model=noise,
            basis_gates=("id", "rz", "sx", "x", "cx", "measure", "reset", "barrier"),
        )
