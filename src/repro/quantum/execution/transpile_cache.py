"""Content addressing and serialization for the cached transpile stage.

A transpiled circuit is fully determined by::

    (logical circuit fingerprint, coupling-map fingerprint,
     basis fingerprint, initial layout, optimization level)

This module synthesizes that identity into the execution cache's own
:class:`~repro.quantum.execution.cache.CacheKey` and encodes the transpiled
circuit into the ``(counts, memory)`` entry shape every cache tier already
stores, so transpile results ride the memory LRU, the on-disk JSON store,
*and* the shared HTTP cache server with zero protocol changes — write-through,
promotion, eviction accounting and server re-addressing all apply untouched.

Field mapping of the synthesized key (documented here because the names are
borrowed from execution):

========  =====================================================
``circuit``  logical circuit fingerprint (instruction stream)
``backend``  ``transpile:v<schema>:<coupling fp>:<layout fp>``
``shots``    0 (unused; transpilation has no shot count)
``seed``     the optimization level
``noise``    basis fingerprint
``memory``   always ``True`` (the payload lives in the memory list)
========  =====================================================

The ``backend`` prefix keeps transpile entries disjoint from execution
entries (no real backend name contains a colon), and the schema version
invalidates old payloads if the serialization ever changes.

Entry shape: ``counts`` holds the output circuit's integer dimensions
(``{"qubits", "clbits", "size"}`` — the disk tier requires an int-valued
dict) and ``memory`` is a single JSON document with the instruction stream
and both layouts.  Decoding is defensive: any malformed payload decodes to
``None`` and the caller re-transpiles and overwrites.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.execution.cache import CacheKey, circuit_fingerprint
from repro.quantum.parameters import params_from_json, params_to_json
from repro.quantum.topology import CouplingMap
from repro.utils.rng import stable_hash

#: Bump to invalidate previously-persisted transpile entries on a
#: serialization change (old entries simply stop matching any key).
TRANSPILE_SCHEMA_VERSION = 1


def coupling_fingerprint(coupling_map: CouplingMap | None) -> str:
    """Stable content hash of a device's connectivity (``'none'`` for all-to-all).

    Covers the qubit count and the canonical sorted edge list — exactly what
    layout and routing read.  Topology names are excluded: two identically
    wired maps transpile identically.
    """
    if coupling_map is None:
        return "none"
    payload = (coupling_map.num_qubits, tuple(coupling_map.edges))
    return f"{stable_hash('coupling', payload):016x}"


def basis_fingerprint(basis: Sequence[str]) -> str:
    """Stable content hash of a basis gate set (order-insensitive)."""
    return f"{stable_hash('basis', tuple(sorted(basis))):016x}"


def layout_fingerprint(initial_layout: Sequence[int] | None) -> str:
    """Stable hash of an explicit placement (``'auto'`` for dense layout)."""
    if initial_layout is None:
        return "auto"
    payload = tuple(int(q) for q in initial_layout)
    return f"{stable_hash('layout', payload):016x}"


def transpile_cache_key(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap | None,
    basis: Sequence[str],
    initial_layout: Sequence[int] | None,
    optimization_level: int,
) -> CacheKey:
    """The content address of one transpilation (see the module docstring)."""
    return CacheKey(
        circuit=circuit_fingerprint(circuit),
        backend=(
            f"transpile:v{TRANSPILE_SCHEMA_VERSION}:"
            f"{coupling_fingerprint(coupling_map)}:"
            f"{layout_fingerprint(initial_layout)}"
        ),
        shots=0,
        seed=int(optimization_level),
        noise=basis_fingerprint(basis),
        memory=True,
    )


def encode_transpiled(
    circuit: QuantumCircuit,
) -> tuple[dict[str, int], list[str]]:
    """Serialize a transpiled circuit into the cache's entry shape."""
    payload = {
        "version": TRANSPILE_SCHEMA_VERSION,
        "instructions": [
            [
                inst.name,
                list(inst.qubits),
                list(inst.clbits),
                params_to_json(inst.params),
                list(inst.condition) if inst.condition is not None else None,
            ]
            for inst in circuit.instructions
        ],
        "layout": {str(k): int(v) for k, v in circuit.metadata["layout"].items()},
        "final_layout": {
            str(k): int(v) for k, v in circuit.metadata["final_layout"].items()
        },
    }
    counts = {
        "qubits": int(circuit.num_qubits),
        "clbits": int(circuit.num_clbits),
        "size": len(circuit.instructions),
    }
    return counts, [json.dumps(payload, sort_keys=True)]


def decode_transpiled(
    counts: dict[str, int],
    memory: list[str] | None,
    source: QuantumCircuit,
) -> QuantumCircuit | None:
    """Rebuild a transpiled circuit from a cache entry, or ``None``.

    Name and metadata are *not* part of the content address (two
    identically-built circuits with different labels transpile identically),
    so they are reconstructed from ``source`` exactly as the pass manager
    would have: ``<name>_t`` plus the source metadata overlaid with the
    cached layouts.
    """
    if not memory or len(memory) != 1:
        return None
    try:
        payload = json.loads(memory[0])
    except (TypeError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != TRANSPILE_SCHEMA_VERSION:
        return None
    raw_instructions = payload.get("instructions")
    raw_layout = payload.get("layout")
    raw_final = payload.get("final_layout")
    if not isinstance(raw_instructions, list):
        return None
    if not isinstance(raw_layout, dict) or not isinstance(raw_final, dict):
        return None
    try:
        instructions = [
            Instruction(
                str(name),
                tuple(int(q) for q in qubits),
                tuple(int(c) for c in clbits),
                params_from_json(params),
                tuple(int(v) for v in condition) if condition is not None else None,
            )
            for name, qubits, clbits, params, condition in raw_instructions
        ]
        layout = {int(k): int(v) for k, v in raw_layout.items()}
        final_layout = {int(k): int(v) for k, v in raw_final.items()}
        num_qubits = int(counts["qubits"])
        num_clbits = int(counts["clbits"])
    except (KeyError, TypeError, ValueError):
        return None
    out = QuantumCircuit(num_qubits, num_clbits, name=f"{source.name}_t")
    out._instructions = instructions
    out.metadata = dict(source.metadata)
    out.metadata["layout"] = layout
    out.metadata["final_layout"] = final_layout
    return out
