"""Persistent on-disk tier of the execution result cache.

A :class:`DiskResultCache` stores one JSON file per cache key under a
configurable directory, so deterministic execution results survive process
restarts: regenerating EXPERIMENTS.md, re-running an evalsuite arm, or a CI
job restored from ``actions/cache`` warm-start from previous runs instead of
re-simulating.

Design notes:

* **content-addressed** — the file name is a BLAKE2b digest of the full
  :class:`~repro.quantum.execution.cache.CacheKey` (circuit fingerprint,
  backend, shots, seed, noise fingerprint, memory flag); the key itself is
  stored inside the file and verified on read, so a digest collision or a
  stale file can never serve the wrong counts;
* **crash-safe writes** — entries are written to a temporary file in the
  cache directory and atomically renamed into place, so a killed process
  leaves at most an orphaned ``*.tmp``, never a truncated entry;
* **corruption-tolerant reads** — unreadable, truncated, or mismatched files
  are treated as misses and deleted best-effort, so a damaged cache degrades
  to a cold one instead of failing executions;
* **best-effort by construction** — I/O errors on ``put`` are swallowed: a
  full disk must never fail a simulation that already succeeded.

The tier is layered *behind* the in-memory LRU by
:class:`~repro.quantum.execution.cache.ResultCache` (which owns the shared
:class:`~repro.quantum.execution.cache.CacheStats`); it does not keep its own
hit/miss counters.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quantum.execution.cache import CacheKey

#: Schema version of on-disk entries; bump to invalidate old caches wholesale.
ENTRY_VERSION = 1

_tmp_ids = itertools.count()


def _key_payload(key: "CacheKey") -> dict:
    """The JSON-serialisable identity of a cache key."""
    return {
        "circuit": key.circuit,
        "backend": key.backend,
        "shots": key.shots,
        "seed": key.seed,
        "noise": key.noise,
        "memory": key.memory,
    }


class DiskResultCache:
    """Content-addressed JSON-per-key store of ``(counts, memory)`` results."""

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # -- addressing ----------------------------------------------------------------

    def path_for(self, key: "CacheKey") -> Path:
        """The file that holds (or would hold) this key's entry."""
        canonical = json.dumps(_key_payload(key), sort_keys=True)
        digest = hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()
        return self.cache_dir / f"{digest}.json"

    # -- store surface ---------------------------------------------------------------

    def get(self, key: "CacheKey") -> tuple[dict[str, int], list[str] | None] | None:
        """Read one entry; corrupted or mismatched files count as misses."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != ENTRY_VERSION
            or entry.get("key") != _key_payload(key)
            or not isinstance(entry.get("counts"), dict)
        ):
            self._discard(path)
            return None
        counts = {str(k): int(v) for k, v in entry["counts"].items()}
        memory = entry.get("memory")
        if memory is not None:
            memory = [str(bit) for bit in memory]
        return counts, memory

    def put(
        self, key: "CacheKey", counts: dict[str, int], memory: list[str] | None
    ) -> None:
        """Atomically persist one entry (best-effort: I/O errors are ignored)."""
        entry = {
            "version": ENTRY_VERSION,
            "key": _key_payload(key),
            "counts": {str(k): int(v) for k, v in counts.items()},
            "memory": list(memory) if memory is not None else None,
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".{os.getpid()}-{next(_tmp_ids)}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        """Total bytes of all persisted entries."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def clear(self) -> None:
        """Delete every persisted entry (and any orphaned temp files)."""
        with self._lock:
            for path in list(self.cache_dir.glob("*.json")) + list(
                self.cache_dir.glob("*.tmp")
            ):
                self._discard(path)

    def _entries(self) -> list[Path]:
        try:
            return sorted(self.cache_dir.glob("*.json"))
        except OSError:
            return []

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        return f"DiskResultCache(dir='{self.cache_dir}', entries={len(self)})"
