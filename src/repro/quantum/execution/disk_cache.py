"""Persistent on-disk tier of the execution result cache.

A :class:`DiskResultCache` stores one JSON file per cache key under a
configurable directory, so deterministic execution results survive process
restarts: regenerating EXPERIMENTS.md, re-running an evalsuite arm, or a CI
job restored from ``actions/cache`` warm-start from previous runs instead of
re-simulating.

Design notes:

* **content-addressed** — the file name is a BLAKE2b digest of the full
  :class:`~repro.quantum.execution.cache.CacheKey` (circuit fingerprint,
  backend, shots, seed, noise fingerprint, memory flag); the key itself is
  stored inside the file and verified on read, so a digest collision or a
  stale file can never serve the wrong counts;
* **crash-safe writes** — entries are written to a temporary file in the
  cache directory and atomically renamed into place, so a killed process
  leaves at most an orphaned ``*.tmp``, never a truncated entry;
* **corruption-tolerant reads** — unreadable, truncated, or mismatched files
  are treated as misses and deleted best-effort, so a damaged cache degrades
  to a cold one instead of failing executions;
* **bounded by policy** — a :class:`CacheLimits` (``max_bytes`` /
  ``max_entries`` / ``max_age_seconds``) turns the store into a bounded LRU:
  every successful ``get`` touches the entry's mtime, every ``put`` enforces
  the limits (evicting least-recently-used entries first, never the entry
  just written unless it alone exceeds the byte budget), and an explicit
  :meth:`DiskResultCache.prune` applies them on demand
  (``repro cache --prune``);
* **best-effort by construction** — I/O errors on ``put`` are swallowed: a
  full disk must never fail a simulation that already succeeded.

The tier is layered *behind* the in-memory LRU by
:class:`~repro.quantum.execution.cache.ResultCache` (which owns the shared
:class:`~repro.quantum.execution.cache.CacheStats`); it keeps only an
eviction counter of its own.  The same entry encoding is reused verbatim by
the HTTP tier (:mod:`~repro.quantum.execution.remote_cache`), so a disk
store can be served to a fleet without any translation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quantum.execution.cache import CacheKey

#: Schema version of on-disk entries; bump to invalidate old caches wholesale.
ENTRY_VERSION = 1

_tmp_ids = itertools.count()


def _key_payload(key: "CacheKey") -> dict:
    """The JSON-serialisable identity of a cache key."""
    return {
        "circuit": key.circuit,
        "backend": key.backend,
        "shots": key.shots,
        "seed": key.seed,
        "noise": key.noise,
        "memory": key.memory,
    }


def key_digest(key: "CacheKey") -> str:
    """Hex digest naming this key's entry — identical on every machine."""
    canonical = json.dumps(_key_payload(key), sort_keys=True)
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def encode_entry(
    key: "CacheKey", counts: dict[str, int], memory: list[str] | None
) -> dict:
    """The JSON document persisted (and shipped over HTTP) for one result."""
    return {
        "version": ENTRY_VERSION,
        "key": _key_payload(key),
        "counts": {str(k): int(v) for k, v in counts.items()},
        "memory": list(memory) if memory is not None else None,
    }


def decode_entry(
    entry: object, key: "CacheKey"
) -> tuple[dict[str, int], list[str] | None] | None:
    """Validate a stored/transported entry against ``key``; ``None`` if it is
    malformed, from another schema version, or belongs to a different key
    (digest collision, tampered file, misbehaving server)."""
    if (
        not isinstance(entry, dict)
        or entry.get("version") != ENTRY_VERSION
        or entry.get("key") != _key_payload(key)
        or not isinstance(entry.get("counts"), dict)
    ):
        return None
    try:
        counts = {str(k): int(v) for k, v in entry["counts"].items()}
        memory = entry.get("memory")
        if memory is not None:
            memory = [str(bit) for bit in memory]
    except (TypeError, ValueError):
        # Well-formed JSON, nonsense values (counts of "garbage", memory=5):
        # corruption-tolerance means this is a miss, never an exception.
        return None
    return counts, memory


@dataclass(frozen=True)
class CacheLimits:
    """Retention policy for a :class:`DiskResultCache`.

    Any combination of bounds may be set; ``None`` leaves that axis
    unbounded.  Age is measured against the entry's mtime, which every cache
    hit refreshes — so ``max_age_seconds`` bounds *idle* time, matching the
    LRU eviction order.
    """

    max_bytes: int | None = None
    max_entries: int | None = None
    max_age_seconds: float | None = None

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_entries", "max_age_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def bounded(self) -> bool:
        return any(
            value is not None
            for value in (self.max_bytes, self.max_entries, self.max_age_seconds)
        )

    @staticmethod
    def from_env(environ: dict | None = None) -> "CacheLimits | None":
        """Limits from ``REPRO_CACHE_MAX_BYTES`` / ``_MAX_ENTRIES`` /
        ``_MAX_AGE`` (seconds), or ``None`` when none are set."""
        env = os.environ if environ is None else environ
        raw = {
            "max_bytes": env.get("REPRO_CACHE_MAX_BYTES", "").strip(),
            "max_entries": env.get("REPRO_CACHE_MAX_ENTRIES", "").strip(),
            "max_age_seconds": env.get("REPRO_CACHE_MAX_AGE", "").strip(),
        }
        env_names = {
            "max_bytes": "REPRO_CACHE_MAX_BYTES",
            "max_entries": "REPRO_CACHE_MAX_ENTRIES",
            "max_age_seconds": "REPRO_CACHE_MAX_AGE",
        }
        kwargs: dict[str, float | int] = {}
        for name, text in raw.items():
            if not text:
                continue
            try:
                number = float(text)
            except ValueError:
                # A mistyped bound must be a clear config error, not a raw
                # float() traceback — and never a silently unbounded store.
                raise ValueError(
                    f"{env_names[name]} must be a number, got {text!r}"
                ) from None
            kwargs[name] = number if name == "max_age_seconds" else int(number)
        return CacheLimits(**kwargs) if kwargs else None


class DiskResultCache:
    """Content-addressed JSON-per-key store of ``(counts, memory)`` results."""

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        limits: CacheLimits | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.limits = limits
        self.evictions = 0
        self._lock = threading.Lock()
        # Running (bytes, entries) totals so bounded puts stay O(1): a full
        # directory scan runs only when the totals say a limit may be
        # exceeded (or the periodic age sweep is due), not on every write.
        # The totals over-count relative to a store that other processes
        # delete from — which only triggers harmless extra scans.
        self._approx: list[int] | None = None
        # The age-sweep *deadline* runs on a monotonic clock (injectable for
        # tests): entry ages stay wall-clock (mtimes are wall time), but the
        # "is the next sweep due yet" comparison must not — a backwards
        # wall-clock step would otherwise defer age eviction indefinitely.
        self._clock = clock
        self._age_sweep_due = 0.0

    def _reset_for_child(self) -> None:
        """Fresh lock after ``fork()`` (the parent's may have been held)."""
        self._lock = threading.Lock()

    # -- addressing ----------------------------------------------------------------

    def path_for(self, key: "CacheKey") -> Path:
        """The file that holds (or would hold) this key's entry."""
        return self.cache_dir / f"{key_digest(key)}.json"

    # -- store surface ---------------------------------------------------------------

    def get(self, key: "CacheKey") -> tuple[dict[str, int], list[str] | None] | None:
        """Read one entry; corrupted or mismatched files count as misses."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            return None
        decoded = decode_entry(entry, key)
        if decoded is None:
            self._discard(path)
            return None
        self._touch(path)
        return decoded

    def put(
        self, key: "CacheKey", counts: dict[str, int], memory: list[str] | None
    ) -> int:
        """Atomically persist one entry (best-effort: I/O errors are ignored),
        then enforce the retention limits.  Returns the number of entries this
        write evicted, so callers can attribute eviction pressure."""
        return self._write(self.path_for(key), encode_entry(key, counts, memory))

    def put_entry(self, entry: object) -> int | None:
        """Persist a pre-encoded entry (the HTTP server's upload path).

        The entry must decode against the key it embeds — i.e. it is
        re-verified and re-addressed here, so an uploader can never plant a
        file under a digest that does not match its content.  Returns the
        eviction count of the underlying ``put`` on success (possibly 0 —
        test ``is None`` for failure, not truthiness) and ``None`` when the
        entry does not verify, so the server can attribute eviction
        pressure to the uploading tenant.
        """
        from repro.quantum.execution.cache import CacheKey

        if not isinstance(entry, dict) or not isinstance(entry.get("key"), dict):
            return None
        try:
            key = CacheKey(**entry["key"])
        except TypeError:
            return None
        decoded = decode_entry(entry, key)
        if decoded is None:
            return None
        counts, memory = decoded
        return self.put(key, counts, memory)

    def _write(self, path: Path, entry: dict) -> int:
        tmp = path.with_suffix(f".{os.getpid()}-{next(_tmp_ids)}.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            self._discard(tmp)
            return 0
        if self.limits is not None and self.limits.bounded:
            return self._after_bounded_write(path)
        return 0

    def _after_bounded_write(self, path: Path) -> int:
        """Update the running totals; enforce only when a bound may be hit.
        Returns the number of entries evicted by this write."""
        policy = self.limits
        with self._lock:
            if self._approx is None:
                self._approx = [0, 0]
                for _, _, size in self.entry_stats():
                    self._approx[0] += size
                    self._approx[1] += 1
            else:
                try:
                    self._approx[0] += path.stat().st_size
                except OSError:
                    self._approx[0] += 0
                self._approx[1] += 1
            over = (
                policy.max_bytes is not None
                and self._approx[0] > policy.max_bytes
            ) or (
                policy.max_entries is not None
                and self._approx[1] > policy.max_entries
            )
            sweep = (
                policy.max_age_seconds is not None
                and self._clock() >= self._age_sweep_due
            )
            if not over and not sweep:
                return 0
        return self._enforce(policy, protect=path)

    # -- retention -------------------------------------------------------------------

    def prune(self, limits: CacheLimits | None = None) -> int:
        """Apply retention limits now; returns the number of entries evicted.

        Uses the store's own limits when none are given.  Unlike the
        enforcement that runs on ``put``, an explicit prune protects nothing:
        it may empty the store entirely.
        """
        policy = limits if limits is not None else self.limits
        if policy is None or not policy.bounded:
            return 0
        return self._enforce(policy, protect=None)

    def _enforce(self, policy: CacheLimits, protect: Path | None) -> int:
        """Evict least-recently-used entries until ``policy`` is satisfied.

        ``protect`` (the entry a ``put`` just wrote) is evicted only as a
        last resort — when it alone exceeds ``max_bytes`` — so the byte bound
        holds unconditionally after every put.
        """
        with self._lock:
            evicted = 0
            entries = self.entry_stats()
            now = time.time()
            if policy.max_age_seconds is not None:
                fresh = []
                for path, mtime, size in entries:
                    if path != protect and now - mtime > policy.max_age_seconds:
                        self._discard(path)
                        evicted += 1
                    else:
                        fresh.append((path, mtime, size))
                entries = fresh
            entries.sort(key=lambda item: item[1])  # oldest mtime first
            total = sum(size for _, _, size in entries)
            count = len(entries)

            def over() -> bool:
                return (
                    policy.max_bytes is not None and total > policy.max_bytes
                ) or (policy.max_entries is not None and count > policy.max_entries)

            survivors = []
            for path, mtime, size in entries:
                if over() and path != protect:
                    self._discard(path)
                    evicted += 1
                    total -= size
                    count -= 1
                else:
                    survivors.append((path, mtime, size))
            if over() and protect is not None:
                # The just-written entry alone busts the byte budget; the
                # bound wins over write-retention.
                for path, _, size in survivors:
                    if path == protect:
                        self._discard(path)
                        evicted += 1
                        total -= size
                        count -= 1
                        break
            self.evictions += evicted
            # Exact totals from the scan re-anchor the running approximation.
            self._approx = [total, count]
            if policy.max_age_seconds is not None:
                # Deadline on the monotonic clock; `now` above is wall time
                # because entry ages compare against mtimes.
                self._age_sweep_due = self._clock() + min(
                    policy.max_age_seconds / 2, 60.0
                )
            return evicted

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh mtime so LRU eviction sees this entry as recently used."""
        try:
            os.utime(path)
        except OSError:
            pass  # raced with an eviction/clear, or a read-only store

    # -- maintenance -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        """Total bytes of all persisted entries."""
        return sum(size for _, _, size in self.entry_stats())

    def entry_stats(self) -> list[tuple[Path, float, int]]:
        """``(path, mtime, size_bytes)`` per entry, tolerating concurrent
        deletion: another thread's ``clear()``/eviction may unlink a file
        between the directory listing and the ``stat`` — such entries are
        simply skipped, never raised."""
        out = []
        for path in self._entries():
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue  # unlinked while we were scanning
            except OSError:
                continue
            out.append((path, stat.st_mtime, stat.st_size))
        return out

    def clear(self) -> None:
        """Delete every persisted entry (and any orphaned temp files)."""
        with self._lock:
            for path in list(self.cache_dir.glob("*.json")) + list(
                self.cache_dir.glob("*.tmp")
            ):
                self._discard(path)
            self._approx = [0, 0]

    def _entries(self) -> list[Path]:
        try:
            return sorted(self.cache_dir.glob("*.json"))
        except OSError:
            return []

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        bounds = f", limits={self.limits}" if self.limits is not None else ""
        return f"DiskResultCache(dir='{self.cache_dir}', entries={len(self)}{bounds})"
