"""Process-pool execution strategy: picklable work units + the child worker.

Dense statevector math holds the GIL, so the default thread pool of the
:class:`~repro.quantum.execution.service.ExecutionService` overlaps little
real compute.  With ``ExecutionService(executor="process")`` each cache miss
is shipped to a ``ProcessPoolExecutor`` as a :class:`WorkUnit` —

    (circuit, backend_name, shots, seed, noise_fingerprint, memory)

— everything picklable, nothing process-local.  The child re-resolves the
backend *by name* from its own registry (inherited via fork, or rebuilt from
the builtin factories) and verifies the noise fingerprint before simulating,
so a parent-side mutation of a registered backend can never silently produce
wrong counts.

Only backends that are the registry's own memoised instance are offloadable
(:func:`offloadable`): an anonymous instance, a mutated copy, or a
QEC-corrected derivative cannot be reconstructed by name in the child, and
the service transparently falls back to in-process simulation for those.

Results flow back through the same ``_lookup_or_simulate`` accounting as the
thread path, so caching, single-flight dedup, and the stats counters are
identical under either strategy.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import NamedTuple

from repro.errors import BackendError
from repro.quantum.backend import Backend
from repro.quantum.circuit import QuantumCircuit

#: Executor strategies accepted by ``ExecutionService(executor=...)``:
#: ``thread`` (default pool), ``process`` (this module's picklable work
#: units), and ``batch`` (the vectorised grouping engine in
#: :mod:`repro.quantum.batchsim`).
EXECUTOR_KINDS = ("thread", "process", "batch")


class WorkUnit(NamedTuple):
    """One circuit execution, fully described by picklable values."""

    circuit: QuantumCircuit
    backend_name: str
    shots: int
    seed: int | None
    noise_fp: str
    memory: bool


def run_work_unit(unit: WorkUnit) -> tuple[dict[str, int], list[str] | None]:
    """Execute one :class:`WorkUnit` in the current process (the pool child).

    Module-level so it pickles by reference; resolves the backend from the
    child's registry and cross-checks the noise fingerprint recorded by the
    parent at submit time.
    """
    from repro.quantum.execution.cache import noise_fingerprint
    from repro.quantum.execution.registry import get_backend

    backend = get_backend(unit.backend_name)
    actual_fp = noise_fingerprint(backend.noise_model)
    if actual_fp != unit.noise_fp:
        raise BackendError(
            f"backend '{unit.backend_name}' in the worker process has noise "
            f"fingerprint {actual_fp} but the submitting process recorded "
            f"{unit.noise_fp}; refusing to simulate with mismatched noise"
        )
    return backend.execute_circuit(
        unit.circuit, unit.shots, unit.seed, unit.memory
    )


def offloadable(backend: Backend) -> bool:
    """Can this backend be reconstructed by name in a worker process?

    True exactly when the backend *is* the registry's memoised instance for
    its own name — the child's ``get_backend(name)`` then yields an equivalent
    object (same factory, same noise fingerprint).
    """
    from repro.quantum.execution.registry import provider

    try:
        return provider().get(backend.name) is backend
    except BackendError:
        return False


def make_process_pool(max_workers: int) -> ProcessPoolExecutor:
    """A ``ProcessPoolExecutor`` for circuit work units.

    Prefers the ``fork`` start method when the platform offers it, so worker
    processes inherit the parent's backend registry (including backends
    registered at runtime, e.g. the QEC memory-experiment target).  Raises
    ``OSError``/``NotImplementedError`` on platforms without multiprocessing
    support; the service catches that and falls back to threads.
    """
    context = None
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=context)
