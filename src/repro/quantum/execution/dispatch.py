"""Distributed work dispatch over the cache-server transport.

The parallel evaluation engine (PR 4) fans picklable per-task episode chunks
across a single host's fork pool.  This module ships the *same* chunks to
remote machines instead, reusing the stdlib-HTTP transport (and shared-token
auth) of :mod:`~repro.quantum.execution.remote_cache`:

* :class:`WorkQueue` — the coordinator-side lease queue.  Chunks move
  ``pending -> leased -> done``; a lease that misses its heartbeat deadline
  moves its chunk back to ``pending`` (at-least-once execution), but
  :meth:`WorkQueue.complete` folds each chunk **exactly once** — a stale or
  duplicate completion is rejected, never double-counted.  Lease ids are
  strictly monotonic.  These invariants are what the protocol property tests
  fuzz (``tests/quantum/test_dispatch_properties.py``).
* :class:`EvalCoordinator` — a :class:`~repro.quantum.execution.remote_cache.
  CacheServer` subclass adding the ``/work`` endpoints, so one process (``repro
  eval-server``) serves both the warm result cache and the work queue on one
  port with one token.  :meth:`EvalCoordinator.run_chunks` queues payloads,
  folds results in input order, and transparently falls back to *local*
  execution on the host's fork pool when no remote worker shows up.
* :class:`DispatchClient` / :func:`run_worker` — the worker side (``repro
  eval-worker``): lease, heartbeat while executing, complete; transient
  transport errors retry, auth rejections raise.

Protocol (JSON over HTTP; binary chunk payloads travel base64-encoded):

* ``POST /work/lease``      ``{"worker": id}`` → ``{"lease", "chunk",
  "payload", "timeout"}`` (the lease timeout, so workers can pace their
  heartbeats under it) or ``{"empty": true}``;
* ``POST /work/heartbeat``  ``{"lease": n}`` → ``{"ok": bool}`` (false means
  the lease already expired — the worker should drop the chunk);
* ``POST /work/complete``   ``{"lease": n, "result": b64}`` → ``{"folded":
  bool}`` (false: stale/duplicate lease, the result was discarded); a result
  that does not even unpickle answers 400 and requeues the chunk;
* ``GET  /work/status``     → queue counters (including per-lane depths).

Multi-tenant serving (PR 10): with a
:class:`~repro.quantum.execution.tenants.TenantRegistry` attached, tenant
API keys authenticate alongside the admin token, leases charge per-tenant
simulation quotas (429 when spent), chunks queue into per-tenant
fair-share lanes, and a :class:`~repro.quantum.execution.jobstore.JobStore`
persists queued work across coordinator restarts.

Chunks are pickled ``(function, args)`` calls and results pickled
``("ok", value)`` / ``("err", exception)`` — executing one is running
arbitrary code, exactly like the fork pool does locally.  The transport is
therefore **only** for fleets that already share the cache token (the same
trust boundary as the cache tier, where a poisoned entry could fake counts);
deterministic chunks make who-runs-what irrelevant to the results, which is
what keeps distributed evaluation bit-identical to the serial loop.
"""

from __future__ import annotations

import base64
import itertools
import json
import os
import pickle
import threading
import time
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass

from repro.errors import BackendError
from repro.quantum.execution.remote_cache import (
    DEFAULT_THROTTLE_BACKOFF,
    MAX_ENTRY_BYTES,
    MAX_THROTTLE_BACKOFF,
    CacheServer,
    _CacheRequestHandler,
    bearer_headers,
    parse_retry_after,
    raise_auth_error,
    resolve_token,
)

#: Seconds a lease may go without a heartbeat before its chunk is requeued.
DEFAULT_LEASE_TIMEOUT = 30.0
#: Worker-side pause between lease attempts on an empty queue.
DEFAULT_POLL_INTERVAL = 0.2
#: Worker-side pause between heartbeats while executing a chunk.
DEFAULT_HEARTBEAT_INTERVAL = 5.0
#: Seconds of remote-worker silence before the coordinator's local fallback
#: pool starts draining the queue itself.
DEFAULT_FALLBACK_GRACE = 1.0
#: Per-request timeout for dispatch calls (leases carry chunk payloads, so
#: this is roomier than the cache tier's).
DEFAULT_DISPATCH_TIMEOUT = 10.0


# -- chunk payload codec -------------------------------------------------------------


def encode_chunk(fn, args: tuple) -> bytes:
    """One picklable work chunk: a module-level callable plus its arguments."""
    return pickle.dumps((fn, tuple(args)), protocol=pickle.HIGHEST_PROTOCOL)


def run_chunk_payload(payload: bytes) -> bytes:
    """Execute one encoded chunk; the result is itself an encoded outcome.

    Runs on workers and on the coordinator's local fallback pool alike (it is
    module-level precisely so the fork pool can ship it).  A chunk that raises
    is reported as an ``("err", exc)`` outcome — re-raised at fold time, like
    the local engine re-raises the first failing chunk — never retried: the
    chunks are deterministic, so a second run would fail identically.
    """
    try:
        fn, args = pickle.loads(payload)
        result = fn(*args)
        return pickle.dumps(("ok", result), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - relayed to the folding loop
        try:
            return pickle.dumps(("err", exc), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 - unpicklable exception
            return pickle.dumps(
                ("err", BackendError(f"chunk failed: {exc!r}")),
                protocol=pickle.HIGHEST_PROTOCOL,
            )


def decode_result(blob: bytes):
    """Unpack one outcome produced by :func:`run_chunk_payload`; raises the
    chunk's own exception for ``err`` outcomes."""
    return _fold_outcome(pickle.loads(blob))


def _fold_outcome(outcome: tuple):
    status, value = outcome
    if status == "err":
        raise value
    return value


def _valid_outcome(outcome) -> bool:
    return (
        isinstance(outcome, tuple)
        and len(outcome) == 2
        and outcome[0] in ("ok", "err")
    )


# -- the coordinator-side lease queue ------------------------------------------------


@dataclass
class _Lease:
    lease_id: int
    index: int
    worker: str
    deadline: float


class WorkQueue:
    """Lease-based chunk queue: at-least-once execution, exactly-once folding.

    Thread-safe; driven concurrently by the HTTP handler threads (remote
    workers), the coordinator's local fallback threads, and the folding loop.
    ``clock`` is injectable so the property tests can drive lease expiry
    deterministically.

    Invariants (fuzzed in ``tests/quantum/test_dispatch_properties.py``):

    * **no lost chunk** — every added chunk is always in exactly one of
      ``pending`` / ``leased`` / ``done``; expiry and explicit failure move
      ``leased`` chunks back to ``pending``, never drop them;
    * **no duplicate fold** — :meth:`complete` succeeds at most once per
      chunk; completions against expired, already-completed, or never-issued
      leases return ``False`` and discard the result;
    * **monotonic lease ids** — every lease (including a re-lease after
      expiry) gets a strictly larger id, so "which attempt is current" is
      always decidable.

    Fair-share scheduling (PR 10): chunks are queued into per-tenant
    *lanes* and leases are handed out weighted-round-robin across
    non-empty lanes — each lane serves up to its priority weight
    (default 1) per turn before the rotation moves on — so one tenant's
    10k-chunk sweep cannot starve another tenant's 10-chunk job.  A
    single-lane queue (every caller using the default lane) degenerates
    to exactly the old FIFO order.
    """

    def __init__(
        self,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        clock=time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be positive, got {lease_timeout}"
            )
        self.lease_timeout = lease_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._results_ready = threading.Condition(self._lock)
        self._payloads: list[bytes] = []
        self._state: list[str] = []  # "pending" | "leased" | "done"
        #: Pending indexes per lane, plus the round-robin rotation of lane
        #: names and each lane's fair-share weight and current-turn credit.
        self._lanes: dict[str, deque[int]] = {}
        self._lane_order: deque[str] = deque()
        self._lane_priority: dict[str, int] = {}
        self._lane_credit: dict[str, int] = {}
        self._chunk_lane: list[str] = []
        self._leases: dict[int, _Lease] = {}
        self._next_lease = itertools.count(1)
        #: Folded ``(index, result)`` pairs; the queue is agnostic about the
        #: result type (the HTTP layer stores decoded outcome tuples).
        self._completed: deque[tuple[int, object]] = deque()
        self._done = 0
        #: Per-chunk requeue counts (expiry + explicit failures), for tests
        #: and the ``/work/status`` document.
        self.requeues: dict[int, int] = {}
        #: Distinct remote worker ids that ever leased work.
        self.workers_seen: set[str] = set()
        self._remote_activity: float | None = None

    # -- queue surface ---------------------------------------------------------------

    def set_lane_priority(self, lane: str, weight: int) -> None:
        """Fair-share weight of one lane: chunks served per rotation turn."""
        with self._lock:
            self._lane_priority[lane] = max(1, int(weight))

    def add_chunks(self, payloads: list[bytes], lane: str = "") -> list[int]:
        """Append chunks to a lane; returns their queue indexes (stable
        identifiers).  The default lane keeps single-tenant callers on the
        original strict-FIFO behavior."""
        with self._lock:
            pending = self._lane_locked(lane)
            indexes = []
            for payload in payloads:
                index = len(self._payloads)
                self._payloads.append(payload)
                self._state.append("pending")
                self._chunk_lane.append(lane)
                pending.append(index)
                indexes.append(index)
            return indexes

    def lease(self, worker: str = "") -> tuple[int, int, bytes] | None:
        """Hand out one pending chunk: ``(lease_id, index, payload)``.

        Expired leases are requeued first, so a crashed worker's chunk is
        re-leasable the moment its deadline passes.  Lanes are drained
        weighted-round-robin (see the class docstring).  ``None`` when
        nothing is pending.
        """
        with self._lock:
            self._expire_locked()
            index = self._next_pending_locked()
            if index is None:
                return None
            lease = _Lease(
                lease_id=next(self._next_lease),
                index=index,
                worker=worker,
                deadline=self._clock() + self.lease_timeout,
            )
            self._state[index] = "leased"
            self._leases[lease.lease_id] = lease
            return lease.lease_id, index, self._payloads[index]

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a live lease's deadline; ``False`` if it already expired."""
        with self._lock:
            self._expire_locked()
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.deadline = self._clock() + self.lease_timeout
            return True

    def complete(self, lease_id: int, result) -> bool:
        """Fold one result; ``False`` (result discarded) for a stale lease.

        Exactly-once: the first valid completion moves the chunk to ``done``
        and retires the lease, so a second completion — same worker retrying,
        or the original worker of an expired-and-requeued chunk racing the
        replacement — finds no live lease and is rejected.
        """
        with self._lock:
            self._expire_locked()
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False
            self._state[lease.index] = "done"
            self._done += 1
            self._completed.append((lease.index, result))
            self._results_ready.notify_all()
            return True

    def fail(self, lease_id: int) -> bool:
        """Requeue a leased chunk whose execution attempt went wrong (e.g. a
        corrupt result upload); ``False`` for a stale lease."""
        with self._lock:
            self._expire_locked()
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False
            self._requeue_locked(lease.index)
            return True

    def retire(self, indexes) -> None:
        """Take chunks out of circulation at the end of their run.

        Pending ones are delisted, live leases on them are revoked (a later
        completion is then rejected like any stale lease), and payloads are
        released so a long-lived coordinator serving run after run does not
        accumulate every chunk it ever queued.  Retired chunks count as
        ``done``, preserving the pending/leased/done partition.  Without
        this, an aborted run's unfinished chunks would sit at the front of
        the queue and the *next* run's workers would execute them only to
        have the results dropped as stragglers.
        """
        wanted = set(indexes)
        with self._lock:
            for lane, pending in self._lanes.items():
                self._lanes[lane] = deque(
                    i for i in pending if i not in wanted
                )
            for lease_id, lease in list(self._leases.items()):
                if lease.index in wanted:
                    del self._leases[lease_id]
            # Drop the retired chunks' folded-but-unread results too, or an
            # aborted run's completions would sit in the stream forever.
            self._completed = deque(
                item for item in self._completed if item[0] not in wanted
            )
            for index in wanted:
                if self._state[index] != "done":
                    self._state[index] = "done"
                    self._done += 1
                self._payloads[index] = b""

    def expire(self) -> int:
        """Requeue every chunk whose lease deadline has passed."""
        with self._lock:
            return self._expire_locked()

    def next_result(
        self, timeout: float | None = None, within=None
    ) -> tuple[int, object] | None:
        """Pop one completed ``(index, result)``; ``None`` on timeout.

        ``within`` restricts the pop to a set of chunk indexes, so
        concurrent folding loops (two tenants' ``run_chunks`` calls sharing
        one coordinator) each consume exactly their own completions instead
        of stealing from one shared stream.  ``None`` pops the leftmost
        completion regardless — the single-run behavior.
        """
        with self._results_ready:
            item = self._pop_completed_locked(within)
            if item is None:
                self._results_ready.wait(timeout)
                item = self._pop_completed_locked(within)
            return item

    def _pop_completed_locked(self, within) -> tuple[int, object] | None:
        if within is None:
            return self._completed.popleft() if self._completed else None
        for position, item in enumerate(self._completed):
            if item[0] in within:
                del self._completed[position]
                return item
        return None

    # -- liveness signals ------------------------------------------------------------

    def note_remote_activity(self, worker: str = "") -> None:
        """Record that a remote worker spoke (any ``/work`` request)."""
        with self._lock:
            if worker:
                self.workers_seen.add(worker)
            self._remote_activity = self._clock()

    def seconds_since_remote_activity(self) -> float | None:
        """Age of the last remote-worker request; ``None`` if there was none."""
        with self._lock:
            if self._remote_activity is None:
                return None
            return self._clock() - self._remote_activity

    # -- introspection ---------------------------------------------------------------

    @property
    def total(self) -> int:
        with self._lock:
            return len(self._payloads)

    @property
    def done(self) -> int:
        with self._lock:
            return self._done

    def status(self) -> dict:
        with self._lock:
            return {
                "total": len(self._payloads),
                "pending": sum(len(q) for q in self._lanes.values()),
                "leased": len(self._leases),
                "done": self._done,
                "requeues": sum(self.requeues.values()),
                "workers": len(self.workers_seen),
                "lanes": {
                    lane: len(q) for lane, q in self._lanes.items()
                },
            }

    # -- internals -------------------------------------------------------------------

    def _lane_locked(self, lane: str) -> deque[int]:
        pending = self._lanes.get(lane)
        if pending is None:
            pending = self._lanes[lane] = deque()
            self._lane_order.append(lane)
            self._lane_credit.setdefault(lane, 0)
        return pending

    def _next_pending_locked(self) -> int | None:
        """Weighted round-robin across lanes: the front lane serves up to
        its priority weight per turn (and yields early when it empties),
        then rotates to the back."""
        order = self._lane_order
        for _ in range(len(order)):
            lane = order[0]
            pending = self._lanes[lane]
            if not pending:
                self._lane_credit[lane] = 0
                order.rotate(-1)
                continue
            index = pending.popleft()
            self._lane_credit[lane] += 1
            if (
                self._lane_credit[lane]
                >= self._lane_priority.get(lane, 1)
                or not pending
            ):
                self._lane_credit[lane] = 0
                order.rotate(-1)
            return index
        return None

    def _requeue_locked(self, index: int) -> None:
        self._state[index] = "pending"
        self._lane_locked(self._chunk_lane[index]).append(index)
        self.requeues[index] = self.requeues.get(index, 0) + 1

    def _expire_locked(self) -> int:
        now = self._clock()
        expired = [
            lease_id
            for lease_id, lease in self._leases.items()
            if lease.deadline <= now
        ]
        for lease_id in expired:
            lease = self._leases.pop(lease_id)
            self._requeue_locked(lease.index)
        return len(expired)

    def __repr__(self) -> str:
        status = self.status()
        body = ", ".join(f"{k}={v}" for k, v in status.items())
        return f"WorkQueue({body})"


# -- HTTP layer ----------------------------------------------------------------------

_WORK_ROUTES = ("/work/lease", "/work/heartbeat", "/work/complete")


def _loopback(host: str) -> bool:
    # "" is NOT loopback: an empty host makes ThreadingHTTPServer bind
    # INADDR_ANY, the very exposure this predicate exists to refuse.
    return host in ("127.0.0.1", "localhost", "::1")


class _DispatchRequestHandler(_CacheRequestHandler):
    """Cache routes plus the ``/work`` dispatch verbs, one auth gate."""

    queue: WorkQueue  # set by the per-server subclass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/work/status":
            if not self._authorized():
                return
            self._send_json(200, self.queue.status())
            return
        super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            return
        if self.path not in _WORK_ROUTES:
            self._send_json(404, {"error": "unknown path"})
            return
        document = self._read_json_body()
        if document is None:
            return
        try:
            if self.path == "/work/lease":
                self._handle_lease(document)
            elif self.path == "/work/heartbeat":
                self._handle_heartbeat(document)
            else:
                self._handle_complete(document)
        except (KeyError, TypeError, ValueError):
            self._send_json(400, {"error": "malformed request"})

    def _handle_lease(self, document: dict) -> None:
        worker = str(document.get("worker", ""))
        self.queue.note_remote_activity(worker)
        tenant = self.tenant
        if tenant is not None:
            # Reserve against the simulation (chunk) quota *before* leasing
            # so two racing leases cannot both slip under the limit; an
            # empty queue refunds the reservation below.
            if not self.tenants.try_charge_chunk(tenant):
                self._send_json(429, {"error": "chunk quota exhausted"})
                return
        leased = self.queue.lease(worker)
        if leased is None:
            if tenant is not None:
                self.tenants.refund_chunk(tenant)
            self._send_json(200, {"empty": True})
            return
        lease_id, index, payload = leased
        self._send_json(
            200,
            {
                "lease": lease_id,
                "chunk": index,
                "payload": base64.b64encode(payload).decode("ascii"),
                "timeout": self.queue.lease_timeout,
            },
        )

    def _handle_heartbeat(self, document: dict) -> None:
        self.queue.note_remote_activity(str(document.get("worker", "")))
        self._send_json(
            200, {"ok": self.queue.heartbeat(int(document["lease"]))}
        )

    def _handle_complete(self, document: dict) -> None:
        self.queue.note_remote_activity(str(document.get("worker", "")))
        lease_id = int(document["lease"])
        try:
            blob = base64.b64decode(document["result"], validate=True)
            outcome = pickle.loads(blob)
            if not _valid_outcome(outcome):
                raise ValueError("not an outcome tuple")
        except Exception:  # noqa: BLE001 - any corruption requeues the chunk
            # A corrupt result must not poison the fold: requeue the chunk
            # (exactly once — `fail` is a no-op for a stale lease) and tell
            # the worker its upload was rejected.
            requeued = self.queue.fail(lease_id)
            self._send_json(
                400, {"error": "corrupt result", "requeued": requeued}
            )
            return
        # The queue stores the decoded outcome, so the folding loop never
        # deserializes a completion twice.
        self._send_json(
            200, {"folded": self.queue.complete(lease_id, outcome)}
        )

    def _read_json_body(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad content-length"})
            return None
        if not 0 < length <= MAX_ENTRY_BYTES:
            self._send_json(400, {"error": "body too large or empty"})
            return None
        body = self.rfile.read(length)
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "not json"})
            return None
        if not isinstance(document, dict):
            self._send_json(400, {"error": "not an object"})
            return None
        return document


class EvalCoordinator(CacheServer):
    """Cache server + work queue: the engine behind ``repro eval-server``.

    One port serves the fleet's warm result cache *and* leases episode chunks
    to ``repro eval-worker`` processes, both behind the same shared token.
    The coordinator's own ``evaluate(..., distribution="remote")`` call feeds
    :meth:`run_chunks`; when no remote worker speaks within
    ``fallback_grace`` seconds, local fallback threads drain the queue
    through the host's fork pool instead — same chunks, same lease
    invariants, bit-identical results — so a coordinator with no fleet
    behaves exactly like the single-host engine.

    ``fallback_workers=0`` disables local fallback (the fault-injection tests
    use this to guarantee chunks are executed remotely); ``None`` resolves
    like the eval engine's worker count (``REPRO_EVAL_WORKERS`` or 1).

    Serving-tier extensions (PR 10): a
    :class:`~repro.quantum.execution.tenants.TenantRegistry` turns on
    per-tenant API keys, rate limits, quotas, and fair-share lanes (lane
    weights follow tenant priorities); a
    :class:`~repro.quantum.execution.jobstore.JobStore` (or a directory
    path for one) persists every queued chunk so a coordinator killed
    mid-run resumes bit-identically on restart — completed chunks re-fold
    from disk, unfinished ones re-execute.
    """

    handler_class = _DispatchRequestHandler

    def __init__(
        self,
        cache_dir,
        host: str = "127.0.0.1",
        port: int = 0,
        limits=None,
        quiet: bool = True,
        token: str | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        fallback_workers: int | None = None,
        fallback_grace: float = DEFAULT_FALLBACK_GRACE,
        tenants=None,
        service=None,
        job_store=None,
        default_tenant: str = "",
    ) -> None:
        if not token and tenants is None and not _loopback(host):
            # Completing a chunk is executing code; the documented trust
            # boundary is "fleets that share a credential" (the admin token
            # or a tenant API key).  Enforce it: an open work queue may only
            # ever face this machine.
            raise BackendError(
                f"refusing to serve the work queue on non-loopback "
                f"{host!r} without a shared token (pass token=... / "
                f"--token, or set REPRO_CACHE_TOKEN): leased chunks "
                f"execute as code on every machine that folds results"
            )
        self.queue = WorkQueue(lease_timeout=lease_timeout)
        self.fallback_workers = fallback_workers
        self.fallback_grace = fallback_grace
        self.default_tenant = default_tenant
        if job_store is not None and not hasattr(job_store, "restore"):
            from repro.quantum.execution.jobstore import JobStore

            job_store = JobStore(job_store)
        self.job_store = job_store
        if tenants is not None:
            for name, priority in tenants.priorities().items():
                self.queue.set_lane_priority(name, priority)
        super().__init__(
            cache_dir, host=host, port=port, limits=limits, quiet=quiet,
            token=token, tenants=tenants, service=service,
        )

    def _handler_attrs(self) -> dict:
        return {"queue": self.queue, "job_store": self.job_store}

    def run_chunks(
        self, payloads: list[bytes], on_result=None, tenant: str = ""
    ) -> list:
        """Queue encoded chunks; return their decoded results in input order.

        Blocks until every chunk folds.  ``on_result(completed_count,
        result)`` fires in completion order, mirroring
        :func:`repro.utils.parallel.parallel_map`.  Results arriving for a
        requeued chunk's *stale* lease were already rejected by the queue, so
        each slot is written exactly once.  Concurrent calls are safe: each
        run's folding loop consumes only its own chunks' completions
        (``next_result(within=...)``), so two tenants' runs share the
        scheduler without stealing each other's results.

        ``tenant`` names the fair-share lane the chunks queue into
        (default: the coordinator's ``default_tenant``).  With a job store
        attached, every chunk is persisted before it is queued and its
        outcome persisted before it is folded; chunks whose outcomes
        already sit in the store (a previous run died after executing
        them) are *restored* — re-folded from disk, never re-executed —
        which is what makes a killed-and-restarted coordinator
        bit-identical to an uninterrupted run.  Records are dropped only
        when the whole run returns.
        """
        lane = tenant or self.default_tenant
        store = self.job_store
        queue = self.queue
        results: list = [None] * len(payloads)
        digests: list[str | None] = [None] * len(payloads)
        restored: dict[int, tuple] = {}
        to_queue: list[int] = []
        if store is not None:
            for local, payload in enumerate(payloads):
                digests[local] = store.digest_of(payload)
                outcome = store.restore(digests[local])
                if outcome is not None:
                    restored[local] = outcome
                else:
                    store.record(digests[local], payload, lane)
                    to_queue.append(local)
        else:
            to_queue = list(range(len(payloads)))
        index_of = dict(
            zip(
                queue.add_chunks([payloads[i] for i in to_queue], lane=lane),
                to_queue,
            )
        )
        remaining = set(index_of)
        completed = 0
        fallback = _FallbackPool(self)
        try:
            for local in sorted(restored):
                results[local] = _fold_outcome(restored[local])
                completed += 1
                if on_result is not None:
                    on_result(completed, results[local])
            while remaining:
                item = queue.next_result(timeout=0.05, within=remaining)
                if item is not None:
                    qi, outcome = item
                    local = index_of[qi]
                    if store is not None:
                        # Persist before folding: _fold_outcome may raise
                        # (an "err" outcome), and even then a restart must
                        # re-serve this outcome, not re-execute the chunk.
                        store.complete(
                            digests[local],
                            pickle.dumps(
                                outcome, protocol=pickle.HIGHEST_PROTOCOL
                            ),
                            lane,
                        )
                    results[local] = _fold_outcome(outcome)
                    remaining.discard(qi)
                    completed += 1
                    if on_result is not None:
                        on_result(completed, results[local])
                    continue
                queue.expire()
                fallback.start_if_due()
        finally:
            fallback.stop()
            # Whether this run finished or aborted mid-fold, nothing of it
            # may linger: unfinished chunks would otherwise be leased (and
            # uselessly executed) by the next run's workers, and retained
            # payloads would grow the queue for the coordinator's lifetime.
            queue.retire(index_of)
        if store is not None:
            # Reached only when every slot folded cleanly; an abort (or an
            # "err" outcome re-raised above) keeps the records for resume.
            store.forget(d for d in digests if d is not None)
        return results

    def _fallback_due(self, waited: float) -> bool:
        """Local execution is due after ``fallback_grace`` seconds of remote
        silence — measured from the last worker request, or from the start
        of the run when no worker has ever spoken (so a fleet gets the full
        grace window to attach before the coordinator starts competing)."""
        if self.fallback_workers == 0:
            return False
        since = self.queue.seconds_since_remote_activity()
        if since is None:
            since = waited
        return since >= self.fallback_grace


class _FallbackPool:
    """The coordinator's local consumers: lease from the same queue, execute
    on the host fork pool (threads when the platform lacks one)."""

    def __init__(self, coordinator: EvalCoordinator) -> None:
        self._coordinator = coordinator
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._pool = None
        self._started_waiting = time.monotonic()

    def start_if_due(self) -> None:
        if self._threads or not self._coordinator._fallback_due(
            time.monotonic() - self._started_waiting
        ):
            return
        from repro.utils.parallel import _fork_pool, resolve_workers

        workers = self._coordinator.fallback_workers
        if workers is None:
            workers = resolve_workers(None)
        try:
            self._pool = _fork_pool(workers)
        except (OSError, NotImplementedError, ValueError):
            self._pool = None  # degrade to in-thread execution
        self._threads = [
            threading.Thread(
                target=self._drain,
                args=(f"coordinator-local-{i}",),
                name=f"repro-dispatch-fallback-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _drain(self, worker_id: str) -> None:
        queue = self._coordinator.queue
        while not self._stop.is_set():
            leased = queue.lease(worker_id)
            if leased is None:
                if self._stop.wait(0.05):
                    return
                continue
            lease_id, _index, payload = leased
            # Keep the lease alive while the chunk runs — a local chunk that
            # outlives lease_timeout must not be requeued mid-execution, or
            # the queue would re-lease it forever (the remote worker loop
            # heartbeats for exactly the same reason).
            hb_stop = threading.Event()
            hb = threading.Thread(
                target=self._keepalive, args=(lease_id, hb_stop), daemon=True
            )
            hb.start()
            try:
                if self._pool is not None:
                    try:
                        blob = self._pool.submit(
                            run_chunk_payload, payload
                        ).result()
                    except Exception:  # noqa: BLE001 - broken pool: inline
                        blob = run_chunk_payload(payload)
                else:
                    blob = run_chunk_payload(payload)
            finally:
                hb_stop.set()
                hb.join(timeout=5)
            queue.complete(lease_id, pickle.loads(blob))

    def _keepalive(self, lease_id: int, stop: threading.Event) -> None:
        queue = self._coordinator.queue
        while not stop.wait(queue.lease_timeout / 4):
            if not queue.heartbeat(lease_id):
                return

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


# -- the worker side -----------------------------------------------------------------


class DispatchClient:
    """``urllib`` client for a coordinator's ``/work`` endpoints.

    Transient transport errors return ``None``/``False`` so the worker loop
    retries; a 401/403 raises :class:`~repro.errors.BackendError` immediately
    — a worker with the wrong token must crash loudly, not poll forever.
    A 429 is neither: the coordinator is healthy but this tenant is over
    its limit, so the client records a bounded pause (``pause_hint``)
    honoring ``Retry-After`` and does **not** count an error.
    ``token`` falls back to ``REPRO_CACHE_TOKEN``.
    """

    def __init__(
        self,
        base_url: str,
        token: str | None = None,
        timeout: float = DEFAULT_DISPATCH_TIMEOUT,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(
                f"coordinator URL must be http(s)://, got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.token = resolve_token(token)
        self.timeout = timeout
        self.errors = 0
        self.throttles = 0
        self._pause_until = 0.0
        self._lock = threading.Lock()

    def pause_hint(self) -> float:
        """Seconds the worker loop should sit out after a 429 (0.0: none)."""
        with self._lock:
            return max(0.0, self._pause_until - time.monotonic())

    def lease(self, worker: str = "") -> dict | None:
        """One lease attempt: the response document, or ``None`` on a
        transport error.  An empty queue answers ``{"empty": true}``."""
        return self._post("/work/lease", {"worker": worker})

    def heartbeat(self, lease_id: int, worker: str = "") -> bool | None:
        """``True``: lease extended; ``False``: the coordinator explicitly
        said the lease is gone; ``None``: transport error (unknown — retry).
        The three-way answer matters: a heartbeat loop that treated one
        dropped request as "lease lost" would stop beating and *cause* the
        expiry it feared."""
        document = self._post(
            "/work/heartbeat", {"lease": lease_id, "worker": worker}
        )
        if document is None:
            return None
        return bool(document.get("ok"))

    def complete(
        self, lease_id: int, result: bytes, worker: str = ""
    ) -> bool:
        """Upload one outcome; ``True`` iff the coordinator folded it."""
        document = self._post(
            "/work/complete",
            {
                "lease": lease_id,
                "worker": worker,
                "result": base64.b64encode(result).decode("ascii"),
            },
        )
        return bool(document and document.get("folded"))

    def status(self) -> dict | None:
        return self._request(
            urllib.request.Request(
                f"{self.base_url}/work/status", headers=self._headers()
            )
        )

    def _post(self, path: str, payload: dict) -> dict | None:
        body = json.dumps(payload).encode("utf-8")
        return self._request(
            urllib.request.Request(
                f"{self.base_url}{path}",
                data=body,
                method="POST",
                headers=self._headers(**{"Content-Type": "application/json"}),
            )
        )

    def _request(self, request: urllib.request.Request) -> dict | None:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            code, retry_after = exc.code, parse_retry_after(exc.headers)
            exc.close()
            if code in (401, 403):
                raise_auth_error("coordinator", self.base_url, code)
            if code == 429:
                self._record_throttle(retry_after)
                return None
            self.errors += 1
            return None
        except (urllib.error.URLError, OSError, TimeoutError, ValueError):
            self.errors += 1
            return None

    def _record_throttle(self, retry_after: float | None) -> None:
        delay = (
            DEFAULT_THROTTLE_BACKOFF if retry_after is None else retry_after
        )
        delay = min(delay, MAX_THROTTLE_BACKOFF)
        with self._lock:
            self.throttles += 1
            self._pause_until = max(
                self._pause_until, time.monotonic() + delay
            )

    def _headers(self, **extra: str) -> dict[str, str]:
        return bearer_headers(self.token, **extra)

    def __repr__(self) -> str:
        return (
            f"DispatchClient(url='{self.base_url}', errors={self.errors}, "
            f"throttles={self.throttles})"
        )


def run_worker(
    url: str,
    token: str | None = None,
    workers: int = 1,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    max_idle: float | None = None,
    stop: threading.Event | None = None,
    worker_id: str | None = None,
) -> int:
    """Serve a coordinator until stopped; returns chunks completed.

    ``workers`` threads each loop lease → execute → complete; the chunk
    itself executes on a shared *fork pool* (episode work holds the GIL, so
    thread-only execution would serialize — this mirrors the local engine's
    process preference), with inline execution as the fallback on platforms
    without one.  While a chunk runs, its lease is heartbeated at the lesser
    of ``heartbeat_interval`` and a third of the coordinator's advertised
    lease timeout, so a *live* slow worker never loses its lease (only a
    crashed or vanished one does).  The loop exits when ``stop`` is set or
    the queue has been empty for ``max_idle`` seconds (``None``: poll
    forever — the CLI's Ctrl-C mode).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    from repro.utils.parallel import _fork_pool

    client = DispatchClient(url, token=token)
    stop = stop or threading.Event()
    name = worker_id or f"worker-{os.getpid()}"
    completed = 0
    completed_lock = threading.Lock()
    auth_failure: list[BaseException] = []
    try:
        pool = _fork_pool(workers)
    except (OSError, NotImplementedError, ValueError):
        pool = None

    def execute(payload: bytes) -> bytes:
        if pool is not None:
            try:
                return pool.submit(run_chunk_payload, payload).result()
            except Exception:  # noqa: BLE001 - broken pool: run inline
                pass
        return run_chunk_payload(payload)

    def serve(slot: int) -> None:
        nonlocal completed
        me = f"{name}/{slot}"
        idle_since: float | None = None
        while not stop.is_set():
            try:
                document = client.lease(me)
            except BackendError as exc:
                auth_failure.append(exc)
                stop.set()
                return
            if document is None or document.get("empty"):
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if max_idle is not None and now - idle_since >= max_idle:
                    return
                # A throttled tenant sits out the server's advertised
                # Retry-After window instead of hammering the poll loop.
                stop.wait(max(poll_interval, client.pause_hint()))
                continue
            idle_since = None
            lease_id = int(document["lease"])
            payload = base64.b64decode(document["payload"])
            interval = heartbeat_interval
            lease_timeout = float(document.get("timeout") or 0)
            if lease_timeout > 0:
                # Never let the configured interval outpace the lease: three
                # beats fit in one timeout even if two are lost.
                interval = min(interval, lease_timeout / 3.0)
            hb_stop = threading.Event()
            hb = threading.Thread(
                target=_heartbeat_loop,
                args=(client, lease_id, me, interval, hb_stop),
                daemon=True,
            )
            hb.start()
            try:
                outcome = execute(payload)
            finally:
                hb_stop.set()
                hb.join(timeout=5)
            try:
                folded = client.complete(lease_id, outcome, me)
            except BackendError as exc:
                # Same contract as the lease path: credentials revoked
                # mid-run must crash the worker loudly, not silently kill
                # one thread while the rest keep polling.
                auth_failure.append(exc)
                stop.set()
                return
            if folded:
                with completed_lock:
                    completed += 1

    threads = [
        threading.Thread(
            target=serve, args=(slot,), name=f"repro-eval-worker-{slot}",
            daemon=True,
        )
        for slot in range(workers)
    ]
    for thread in threads:
        thread.start()
    try:
        for thread in threads:
            thread.join()
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    if auth_failure:
        raise auth_failure[0]
    return completed


def _heartbeat_loop(
    client: DispatchClient,
    lease_id: int,
    worker: str,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            if client.heartbeat(lease_id, worker) is False:
                return  # lease lost for sure; the completion will be
                # rejected anyway.  A transport error (None) keeps beating:
                # giving up on one dropped request would *cause* the expiry.
        except BackendError:
            return
