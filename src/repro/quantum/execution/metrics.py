"""Prometheus text-format exposition for the serving tier.

Renders every :meth:`ExecutionService.stats` counter, the disk store,
the work queue, the job store, and the per-tenant registry counters as
`Prometheus text format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
``# HELP`` / ``# TYPE`` comment pairs followed by ``name{labels} value``
sample lines.  The mapping is mechanical — numeric stats keys become
``repro_service_<key>`` gauges, string-valued keys collapse into one
``repro_service_info`` sample with label values — so any counter added
to ``stats()`` in a future PR is exported without touching this module.

Everything here is pure string formatting on snapshots taken by the
caller; no locks, no I/O.
"""

from __future__ import annotations

import numbers
from typing import Iterable, Mapping

__all__ = [
    "METRICS_CONTENT_TYPE",
    "escape_label_value",
    "render_samples",
    "serving_metrics",
]

METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "repro"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, quote, LF."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float | int | bool) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, numbers.Integral):
        return str(int(value))
    return repr(float(value))


def render_samples(
    samples: Iterable[tuple[str, Mapping[str, str] | None, float | int | bool]],
    *,
    help_text: Mapping[str, str] | None = None,
    types: Mapping[str, str] | None = None,
) -> str:
    """Render ``(name, labels, value)`` triples grouped under HELP/TYPE headers.

    Samples sharing a metric name are grouped (exposition format requires
    one contiguous block per name); first-seen name order is preserved.
    Unknown names default to ``gauge`` with a generated HELP line.
    """
    help_text = help_text or {}
    types = types or {}
    by_name: dict[str, list[tuple[Mapping[str, str] | None, float | int | bool]]] = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    lines: list[str] = []
    for name, rows in by_name.items():
        lines.append(f"# HELP {name} {help_text.get(name, name.replace('_', ' '))}")
        lines.append(f"# TYPE {name} {types.get(name, 'gauge')}")
        for labels, value in rows:
            if labels:
                rendered = ",".join(
                    f'{key}="{escape_label_value(val)}"'
                    for key, val in labels.items()
                )
                lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def serving_metrics(
    service_stats: Mapping[str, object] | None = None,
    store=None,
    queue_status: Mapping[str, object] | None = None,
    tenants=None,
    jobs=None,
) -> str:
    """Assemble the full /metrics payload from serving-tier snapshots.

    Every argument is optional so a bare ``CacheServer`` (no queue, no
    tenants) and a full ``EvalCoordinator`` share one code path.
    ``store`` is a :class:`DiskResultCache`, ``tenants`` a
    :class:`TenantRegistry`, ``jobs`` a :class:`JobStore`.
    """
    samples: list[tuple[str, Mapping[str, str] | None, float | int | bool]] = []
    types: dict[str, str] = {}

    if service_stats:
        info_labels: dict[str, str] = {}
        for key, value in service_stats.items():
            if isinstance(value, bool) or isinstance(value, numbers.Number):
                samples.append((f"{_PREFIX}_service_{key}", None, value))
            else:
                info_labels[key] = str(value)
        if info_labels:
            samples.append((f"{_PREFIX}_service_info", info_labels, 1))

    if store is not None:
        entries = store.entry_stats()
        samples.append((f"{_PREFIX}_store_entries", None, len(entries)))
        samples.append(
            (f"{_PREFIX}_store_bytes", None, sum(size for _, _, size in entries))
        )
        samples.append((f"{_PREFIX}_store_evictions_total", None, store.evictions))
        types[f"{_PREFIX}_store_evictions_total"] = "counter"

    if queue_status:
        for key, value in queue_status.items():
            if key == "lanes" and isinstance(value, Mapping):
                for lane, depth in value.items():
                    samples.append(
                        (
                            f"{_PREFIX}_work_lane_pending",
                            {"tenant": str(lane) or "default"},
                            depth,
                        )
                    )
            elif isinstance(value, numbers.Number):
                samples.append((f"{_PREFIX}_work_{key}", None, value))

    if jobs is not None:
        counts = jobs.counts()
        samples.append((f"{_PREFIX}_jobs_pending", None, counts["pending"]))
        samples.append((f"{_PREFIX}_jobs_done", None, counts["done"]))

    if tenants is not None:
        counter_keys = (
            "requests",
            "throttled",
            "quota_denials",
            "evictions",
        )
        for row in tenants.snapshot():
            label = {"tenant": row["name"]}
            for key in counter_keys:
                name = f"{_PREFIX}_tenant_{key}_total"
                samples.append((name, label, row[key]))
                types[name] = "counter"
            samples.append((f"{_PREFIX}_tenant_bytes_used", label, row["bytes_used"]))
            samples.append((f"{_PREFIX}_tenant_chunks_used", label, row["chunks_used"]))
            samples.append((f"{_PREFIX}_tenant_priority", label, row["priority"]))

    return render_samples(samples, types=types)
