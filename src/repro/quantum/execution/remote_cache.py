"""Remote HTTP tier of the execution result cache — fleet-scale sharing.

A :class:`CacheServer` exposes one content-addressed
:class:`~repro.quantum.execution.disk_cache.DiskResultCache` directory over
plain HTTP (stdlib ``http.server``, no dependencies), and a
:class:`RemoteResultCache` is the matching ``urllib`` client that
:class:`~repro.quantum.execution.cache.ResultCache` layers *behind* the
memory and disk tiers.  A fleet of eval workers on different machines then
shares one warm store: the first worker to execute a deterministic circuit
pays for the simulation, every other worker — including freshly provisioned
ones with empty local caches — downloads the counts instead.

Protocol (three routes, all JSON):

* ``GET /entry/<digest>``  — one entry document, exactly the bytes the disk
  tier persists (404 on a miss);
* ``PUT /entry/<digest>``  — upload one entry; the server decodes it,
  re-derives the digest from the embedded key, and rejects any mismatch with
  400, so an uploader can never plant content under a foreign address;
* ``GET /stats``           — ``{"entries": n, "bytes": n, "evictions": n}``.

Client guarantees:

* **offline fallback** — every request carries a short timeout; a dead,
  unreachable, or misbehaving server degrades to a cache *miss* (get) or a
  silent no-op (put), never an error.  After a few consecutive failures the
  client stops calling out for a cooldown window, so a downed server costs a
  handful of timeouts, not one per execution;
* **auth failures are loud** — the one exception to "never an error": a 401/403
  raises :class:`~repro.errors.BackendError` immediately.  A wrong or missing
  token is a configuration bug, and silently degrading it to misses-forever
  would make a misconfigured fleet look like a permanently cold one;
* **key verification on read** — downloaded entries are decoded against the
  requested key with the same
  :func:`~repro.quantum.execution.disk_cache.decode_entry` check the disk
  tier applies, so a stale or corrupted server can only ever produce misses.

The server may be given :class:`~repro.quantum.execution.disk_cache.CacheLimits`
to bound its store — uploads then evict LRU entries exactly like a local put —
and a shared ``token``: every endpoint (cache *and* the work-dispatch routes
layered on this transport by :mod:`~repro.quantum.execution.dispatch`) then
requires ``Authorization: Bearer <token>`` and answers 401 otherwise.  Clients
take the token explicitly or from ``REPRO_CACHE_TOKEN``.

Multi-tenant serving (PR 10): a server may additionally carry a
:class:`~repro.quantum.execution.tenants.TenantRegistry`; each tenant's
API key is then accepted as a bearer credential alongside the admin
token, and every authenticated tenant request is charged against that
tenant's token-bucket rate limit and byte quota.  Over-limit requests
answer ``429`` (with ``Retry-After`` for rate limits), which the clients
honor with a *bounded backoff* distinct from the offline breaker: a
throttled server is healthy, so 429 never counts towards ``errors``.
``GET /metrics`` exports every service/store/tenant counter in
Prometheus text format.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.errors import BackendError
from repro.quantum.execution.disk_cache import (
    CacheLimits,
    DiskResultCache,
    decode_entry,
    encode_entry,
    key_digest,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.quantum.execution.cache import CacheKey

#: Environment variable holding the fleet's shared cache/work auth token.
CACHE_TOKEN_ENV = "REPRO_CACHE_TOKEN"
#: Per-request timeout; cache traffic is tiny, so slow means broken.
DEFAULT_TIMEOUT = 2.0


def resolve_token(token: str | None) -> str | None:
    """An explicit token wins; ``None`` falls back to ``REPRO_CACHE_TOKEN``;
    empty strings mean "open"."""
    if token is None:
        return os.environ.get(CACHE_TOKEN_ENV, "").strip() or None
    return token or None


def bearer_headers(token: str | None, **extra: str) -> dict[str, str]:
    """Request headers carrying the shared token (when one is set)."""
    if token:
        extra["Authorization"] = f"Bearer {token}"
    return extra


def raise_auth_error(kind: str, base_url: str, code: int) -> None:
    """The one loud failure of the fleet clients: credential rejection."""
    raise BackendError(
        f"{kind} at {base_url} rejected credentials (HTTP {code}); "
        f"pass a matching token or set {CACHE_TOKEN_ENV}"
    )
#: Consecutive failures before the client declares the server offline.
OFFLINE_AFTER = 3
#: How long an offline server is left alone before the next probe.
RETRY_INTERVAL = 30.0
#: Backoff applied to a 429 without a Retry-After header.
DEFAULT_THROTTLE_BACKOFF = 1.0
#: Ceiling on the backoff a server-sent Retry-After can impose.
MAX_THROTTLE_BACKOFF = 60.0


def parse_retry_after(headers) -> float | None:
    """Delay-seconds form of ``Retry-After``; None when absent/unparseable."""
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is None:
        return None
    try:
        seconds = float(raw)
    except (TypeError, ValueError):
        return None  # HTTP-date form (or garbage) — fall back to the default
    return max(0.0, seconds)

_DIGEST = re.compile(r"/entry/([0-9a-f]{32})$")
#: Entry uploads beyond this size are rejected (a counts dict for any
#: realistic shot budget is far smaller; this bounds server memory).
MAX_ENTRY_BYTES = 16 * 1024 * 1024


class RemoteResultCache:
    """``urllib`` client for a :class:`CacheServer`; never raises on I/O.

    The one deliberate exception: an auth rejection (401/403) raises
    :class:`~repro.errors.BackendError` instead of degrading to a miss or
    feeding the offline breaker like a transient 5xx — a bad ``token`` must
    surface on the first request, not as a silently cold cache.  ``token``
    falls back to the ``REPRO_CACHE_TOKEN`` environment variable.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT,
        offline_after: int = OFFLINE_AFTER,
        retry_interval: float = RETRY_INTERVAL,
        token: str | None = None,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(
                f"remote cache URL must be http(s)://, got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.offline_after = offline_after
        self.retry_interval = retry_interval
        self.token = resolve_token(token)
        self.errors = 0
        self.throttles = 0
        self._consecutive = 0
        self._offline_until = 0.0
        self._lock = threading.Lock()

    def _headers(self, **extra: str) -> dict[str, str]:
        return bearer_headers(self.token, **extra)

    # -- store surface ---------------------------------------------------------------

    def get(self, key: "CacheKey") -> tuple[dict[str, int], list[str] | None] | None:
        """Fetch and verify one entry; any failure but auth is a miss."""
        if self._offline():
            return None
        request = urllib.request.Request(
            self._entry_url(key), method="GET", headers=self._headers()
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read(MAX_ENTRY_BYTES + 1)
        except urllib.error.HTTPError as exc:
            code, retry_after = exc.code, parse_retry_after(exc.headers)
            exc.close()
            self._record_http_status(code, retry_after)
            return None
        except (urllib.error.URLError, OSError, TimeoutError):
            self._record_failure()
            return None
        self._record_success()
        if len(body) > MAX_ENTRY_BYTES:
            return None
        try:
            entry = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        return decode_entry(entry, key)

    def put(
        self, key: "CacheKey", counts: dict[str, int], memory: list[str] | None
    ) -> None:
        """Upload one entry, best-effort; failures but auth are swallowed."""
        if self._offline():
            return
        body = json.dumps(
            encode_entry(key, counts, memory), separators=(",", ":")
        ).encode("utf-8")
        request = urllib.request.Request(
            self._entry_url(key),
            data=body,
            method="PUT",
            headers=self._headers(**{"Content-Type": "application/json"}),
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except urllib.error.HTTPError as exc:
            code, retry_after = exc.code, parse_retry_after(exc.headers)
            exc.close()
            self._record_http_status(code, retry_after)
        except (urllib.error.URLError, OSError, TimeoutError):
            self._record_failure()
        else:
            self._record_success()

    def stats(self) -> dict | None:
        """The server's ``/stats`` document, or ``None`` when unreachable.

        Failures are not silent: transport errors *and* a malformed (non-JSON)
        response body both count towards ``errors`` and the offline breaker,
        so a misbehaving proxy answering 200s full of HTML shows up in
        ``--exec-stats`` instead of being indistinguishable from "no stats".
        """
        request = urllib.request.Request(
            f"{self.base_url}/stats", headers=self._headers()
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            code, retry_after = exc.code, parse_retry_after(exc.headers)
            exc.close()
            self._record_http_status(code, retry_after)
            return None
        except (urllib.error.URLError, OSError, TimeoutError):
            self._record_failure()
            return None
        try:
            document = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._record_failure()
            return None
        self._record_success()
        return document

    # -- availability ----------------------------------------------------------------

    def _entry_url(self, key: "CacheKey") -> str:
        return f"{self.base_url}/entry/{key_digest(key)}"

    def _offline(self) -> bool:
        with self._lock:
            return time.monotonic() < self._offline_until

    def _record_http_status(self, code: int, retry_after: float | None = None) -> None:
        """4xx means the server is alive and spoke (a miss/rejection —
        nothing to retry); 5xx means it is broken and must count towards the
        offline breaker, or a dead proxy would cost one round-trip per
        execution forever.  401/403 is neither: the server is alive but the
        *client* is misconfigured, so raise rather than let an auth failure
        masquerade as a cold cache or trip the breaker like a transient 5xx.
        429 is a fourth thing — a healthy server asking this tenant to slow
        down — so it backs off for the advertised window (bounded) without
        ever counting as an error or feeding the breaker.
        """
        if code in (401, 403):
            self._raise_auth(code)
        if code == 429:
            self._record_throttle(retry_after)
        elif code >= 500:
            self._record_failure()
        else:
            self._record_success()

    def _raise_auth(self, code: int) -> None:
        raise_auth_error("remote cache", self.base_url, code)

    def _record_success(self) -> None:
        with self._lock:
            self._consecutive = 0

    def _record_failure(self) -> None:
        with self._lock:
            self.errors += 1
            self._consecutive += 1
            if self._consecutive >= self.offline_after:
                self._offline_until = time.monotonic() + self.retry_interval

    def _record_throttle(self, retry_after: float | None) -> None:
        """Bounded 429 backoff: sit out the advertised window, breaker untouched."""
        delay = DEFAULT_THROTTLE_BACKOFF if retry_after is None else retry_after
        delay = min(delay, MAX_THROTTLE_BACKOFF)
        with self._lock:
            self.throttles += 1
            self._consecutive = 0
            self._offline_until = max(
                self._offline_until, time.monotonic() + delay
            )

    def __repr__(self) -> str:
        return (
            f"RemoteResultCache(url='{self.base_url}', errors={self.errors}, "
            f"throttles={self.throttles})"
        )


#: Routes exempt from per-tenant rate limiting.  Heartbeats renew leases the
#: scheduler already granted — throttling them would expire leases and
#: requeue healthy work, turning a rate limit into a correctness hazard.
#: /metrics stays scrapeable precisely when a tenant is being throttled.
_THROTTLE_EXEMPT = frozenset({"/work/heartbeat", "/metrics"})


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/entry/<digest>``, ``/stats``, ``/metrics`` onto a store."""

    disk: DiskResultCache  # set by the per-server subclass
    token: str | None = None  # shared fleet token; None leaves the server open
    tenants = None  # TenantRegistry | None; tenant keys as bearer credentials
    stats_source = None  # () -> dict, service stats for /metrics
    quiet = True
    protocol_version = "HTTP/1.1"

    def _authorized(self) -> bool:
        """Authenticate and admit the request; answers 401/429 on failure.

        Every route of every server built on this transport — the cache
        endpoints here and the ``/work`` dispatch endpoints layered on in
        :mod:`~repro.quantum.execution.dispatch` — calls this first, so no
        endpoint can be forgotten when one grows a new verb.

        Credentials are the shared admin ``token`` or any tenant API key
        (both constant-time; the tenant scan never exits early).  A matched
        tenant is then charged: one token off its rate bucket (429 +
        ``Retry-After`` when empty) and, for uploads, the declared body
        size off its byte quota (429 without ``Retry-After`` — waiting
        does not refill a quota).  The admin token is never throttled.
        """
        self.tenant = None
        if not self.token and self.tenants is None:
            return True
        supplied = self.headers.get("Authorization", "")
        # Compare as bytes: compare_digest on str raises TypeError for
        # non-ASCII input, which would crash the handler instead of 401ing.
        admin = bool(self.token) and hmac.compare_digest(
            supplied.encode("utf-8", "surrogateescape"),
            f"Bearer {self.token}".encode("utf-8", "surrogateescape"),
        )
        tenant = (
            self.tenants.authenticate(supplied) if self.tenants is not None else None
        )
        if admin:
            return True
        if tenant is None:
            self._send_json(401, {"error": "unauthorized"})
            return False
        self.tenant = tenant
        return self._admit(tenant)

    def _admit(self, tenant) -> bool:
        """Charge an authenticated tenant's limits; answers 429 when over."""
        registry = self.tenants
        registry.count_request(tenant)
        if self.path in _THROTTLE_EXEMPT:
            return True
        retry_after = registry.throttle(tenant)
        if retry_after is not None:
            self._send_json(
                429,
                {"error": "rate limited", "retry_after": retry_after},
                headers={"Retry-After": str(int(retry_after))},
            )
            return False
        if self.command == "PUT":
            try:
                length = max(0, int(self.headers.get("Content-Length", "0")))
            except ValueError:
                length = 0
            if not registry.charge_bytes(tenant, length):
                self._send_json(429, {"error": "byte quota exhausted"})
                return False
        return True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            return
        if self.path == "/stats":
            self._send_json(
                200,
                {
                    "entries": len(self.disk),
                    "bytes": self.disk.size_bytes(),
                    "evictions": self.disk.evictions,
                },
            )
            return
        if self.path == "/metrics":
            self._send_metrics()
            return
        match = _DIGEST.search(self.path)
        if match is None:
            self._send_json(404, {"error": "unknown path"})
            return
        path = self.disk.cache_dir / f"{match.group(1)}.json"
        try:
            body = path.read_bytes()
        except OSError:
            self._send_json(404, {"error": "miss"})
            return
        # A download is a use: refresh the mtime so server-side LRU/age
        # eviction spares the fleet's hottest entries, not its coldest.
        self.disk._touch(path)
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        if not self._authorized():
            return
        match = _DIGEST.search(self.path)
        if match is None:
            self._send_json(404, {"error": "unknown path"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad content-length"})
            return
        if not 0 < length <= MAX_ENTRY_BYTES:
            self._send_json(400, {"error": "entry too large or empty"})
            return
        body = self.rfile.read(length)
        try:
            entry = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "not json"})
            return
        # Content-addressing is enforced server-side: the digest re-derived
        # from the embedded key must match the upload path.
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("key"), dict)
            or self._digest_of(entry) != match.group(1)
        ):
            self._send_json(400, {"error": "entry does not verify"})
            return
        evicted = self.disk.put_entry(entry)
        if evicted is None:
            self._send_json(400, {"error": "entry does not verify"})
            return
        if self.tenant is not None and evicted:
            # The uploads that pushed the store over its limits paid for the
            # evictions; attribute them so /metrics can name the tenant
            # churning a shared store.
            self.tenants.credit_evictions(self.tenant, evicted)
        self._send_json(200, {"stored": True, "evicted": evicted})

    @staticmethod
    def _digest_of(entry: dict) -> str | None:
        from repro.quantum.execution.cache import CacheKey

        try:
            return key_digest(CacheKey(**entry["key"]))
        except TypeError:
            return None

    def _send_metrics(self) -> None:
        """Serve the Prometheus exposition assembled from live snapshots."""
        from repro.quantum.execution.metrics import (
            METRICS_CONTENT_TYPE,
            serving_metrics,
        )

        source = self.stats_source
        if source is None:
            # Standalone servers export the process-default service, whose
            # counters the coordinator CLI already prints as --exec-stats.
            from repro.quantum.execution.service import default_service

            source = default_service().stats
        try:
            service_stats = source()
        except Exception:
            service_stats = None  # metrics must degrade, never 500 a scrape
        queue = getattr(self, "queue", None)
        body = serving_metrics(
            service_stats=service_stats,
            store=self.disk,
            queue_status=queue.status() if queue is not None else None,
            tenants=self.tenants,
            jobs=getattr(self, "job_store", None),
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths (401 auth, 400 malformed) may leave the request
            # body unread; on a keep-alive connection those stale bytes
            # would be parsed as the next request.  Drop the connection so
            # a pooling client re-connects cleanly.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)


class CacheServer:
    """A shared execution-result cache served over HTTP.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``) — used by tests and by co-located fleets that publish the URL
    out-of-band.  ``start()`` serves from a daemon thread;
    :meth:`serve_forever` blocks (the CLI path).  A non-empty ``token``
    requires ``Authorization: Bearer <token>`` on every endpoint; a
    :class:`~repro.quantum.execution.tenants.TenantRegistry` additionally
    accepts (and rate-limits / quota-charges) per-tenant API keys.
    ``service`` pins the :class:`ExecutionService` whose counters
    ``/metrics`` exports; the default is the process-default service at
    scrape time.

    Subclasses may serve extra routes by overriding :attr:`handler_class`
    (a :class:`_CacheRequestHandler` subclass) and :meth:`_handler_attrs`
    (extra class attributes bound onto the per-server handler) — this is how
    :class:`~repro.quantum.execution.dispatch.EvalCoordinator` layers the
    work-distribution endpoints onto the same transport, auth included.
    """

    handler_class: type[_CacheRequestHandler] = _CacheRequestHandler

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: CacheLimits | None = None,
        quiet: bool = True,
        token: str | None = None,
        tenants=None,
        service=None,
    ) -> None:
        self.disk = DiskResultCache(cache_dir, limits=limits)
        self.token = token or None
        self.tenants = tenants

        handler = type(
            f"_Bound{self.handler_class.__name__}",
            (self.handler_class,),
            {
                "disk": self.disk,
                "quiet": quiet,
                "token": self.token,
                "tenants": tenants,
                "stats_source": service.stats if service is not None else None,
                **self._handler_attrs(),
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._lifecycle = threading.Lock()
        self._serving = threading.Event()
        self._closed = False

    def _handler_attrs(self) -> dict:
        """Extra class attributes for the bound request handler (hook)."""
        return {}

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "CacheServer":
        """Serve in a background daemon thread; returns self for chaining."""
        if self._closed:
            raise BackendError("CacheServer is closed; construct a new one")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-cache-server", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._serving.set()
        try:
            self._httpd.serve_forever()
        finally:
            self._serving.clear()

    def stop(self) -> None:
        """Stop serving, join the serve thread, and release the socket.

        Safe to call in every lifecycle state, exactly once effective:
        before ``start()`` (socketserver's ``shutdown()`` would block
        forever waiting for a ``serve_forever`` loop that never ran — the
        ``_serving`` event gates it), during serving (foreground or the
        daemon thread), after the loop already exited, and repeatedly.
        The listening socket is always closed, so a back-to-back restart
        on the same fixed port never hits ``EADDRINUSE``.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        thread = self._thread
        if thread is not None and thread.is_alive():
            # start() was called but the loop may not have spun up yet;
            # wait for it so shutdown() has a loop to stop.
            self._serving.wait(timeout=5)
        if self._serving.is_set():
            self._httpd.shutdown()
        self._httpd.server_close()
        if thread is not None:
            thread.join(timeout=5)
        self._thread = None

    #: `close()` is the conventional name; `stop()` predates it.
    close = stop

    def __enter__(self) -> "CacheServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"CacheServer(url='{self.url}', entries={len(self.disk)})"
