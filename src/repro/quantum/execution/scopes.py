"""Scoped, attributable execution-stats counters.

``ExecutionService.stats()`` is a process-global view: diffing it before and
after a workload attributes *everything that happened in between* to that
workload, which is simply wrong the moment two evaluation arms (or any other
service users) overlap in time.  A :class:`StatsScope` fixes attribution at
the root: it is a thread-safe counter sink that receives exactly the
increments caused by work *initiated under it* —

* synchronous executions count on the calling thread;
* asynchronous submissions capture the scopes active at ``submit()`` time and
  credit them from the pool workers that actually run the circuits;
* cache lookups/fills credit the scopes of the caller that triggered them.

Scopes are ambient per thread (a stack, so they nest — an inner sandbox
scope and an outer evaluation-arm scope both see the same increment) and
explicitly portable across threads and processes:

* :func:`stats_scope` opens a fresh scope on the current thread::

      with stats_scope() as scope:
          service.run(qc, backend="ideal", shots=256, seed=1)
      scope.get("simulations")   # exactly this block's work

* :func:`use_scope` re-activates an existing scope on another thread, so a
  fan-out engine can attribute every worker's activity to one owner;
* :meth:`StatsScope.merge` folds a counter dict produced elsewhere (e.g. a
  worker process that ran its chunk under its own local scope) into this one.

The counter names mirror the keys of ``service.stats()`` /
``EvalResult.execution_stats`` so a scope snapshot drops straight into the
existing reporting surfaces.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping
from contextlib import contextmanager

#: Every counter a scope tracks, in reporting order.  Matches the per-arm
#: ``EvalResult.execution_stats`` keys exactly.
SCOPE_FIELDS = (
    "simulations",
    "simulations_deduped",
    "simulations_batched",
    "batch_groups",
    "cache_hits",
    "cache_misses",
    "cache_disk_hits",
    "cache_remote_hits",
    "cache_evictions",
    "programs_validated",
    "rejected_static",
    "rejected_unbound",
    "transpiles",
    "transpile_cache_hits",
)


class StatsScope:
    """A thread-safe sink of execution counters owned by one logical caller."""

    __slots__ = ("label", "_lock", "_counts")

    def __init__(self, label: str | None = None) -> None:
        self.label = label
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(SCOPE_FIELDS, 0)

    def add(self, field: str, amount: int = 1) -> None:
        """Credit ``amount`` to one counter (unknown fields are ignored)."""
        if amount and field in self._counts:
            with self._lock:
                self._counts[field] += amount

    def merge(self, counts: Mapping[str, int]) -> None:
        """Fold a counter dict (e.g. from a worker process) into this scope."""
        with self._lock:
            for field, amount in counts.items():
                if field in self._counts:
                    self._counts[field] += int(amount)

    def get(self, field: str) -> int:
        with self._lock:
            return self._counts[field]

    def as_dict(self) -> dict[str, int]:
        """An immutable-snapshot copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def __repr__(self) -> str:
        label = f"'{self.label}' " if self.label else ""
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"StatsScope({label}{body or 'empty'})"


def fold_counts(dicts: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum counter dicts into one complete ``SCOPE_FIELDS`` dict.

    The cross-process/cross-host half of scope accounting: a worker runs its
    chunk under a local scope, ships ``scope.as_dict()`` home (through a
    pickle pipe or the dispatch protocol's JSON — the dicts are plain
    ``str -> int``), and the engine folds the snapshots per owner.  Unknown
    fields are ignored and missing ones count as zero, so snapshots from a
    worker running a different build still fold safely.
    """
    totals = dict.fromkeys(SCOPE_FIELDS, 0)
    for counts in dicts:
        for field in SCOPE_FIELDS:
            totals[field] += int(counts.get(field, 0))
    return totals


_stack = threading.local()


def active_scopes() -> tuple[StatsScope, ...]:
    """The scopes active on the *current* thread, outermost first."""
    return tuple(getattr(_stack, "scopes", ()))


def credit(
    scopes: Iterable[StatsScope], field: str, amount: int = 1
) -> None:
    """Credit one counter on every scope in ``scopes``."""
    if not amount:
        return
    for scope in scopes:
        scope.add(field, amount)


@contextmanager
def use_scope(scope: StatsScope):
    """Activate an existing scope on the current thread (re-entrant).

    This is the cross-thread half of the API: a coordinator creates one
    scope, hands it to N workers, and each worker wraps its slice of the work
    in ``use_scope(scope)`` — the counters still add up exactly.  Entering a
    scope that is already active on this thread is a no-op, so re-entrant
    activation never double-credits an increment.
    """
    stack = getattr(_stack, "scopes", None)
    if stack is None:
        stack = _stack.scopes = []
    pushed = not any(existing is scope for existing in stack)
    if pushed:
        stack.append(scope)
    try:
        yield scope
    finally:
        if pushed:
            # Remove by identity from the end: exits may interleave only
            # within one thread, and contextmanager exits are LIFO per thread.
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is scope:
                    del stack[index]
                    break


@contextmanager
def stats_scope(label: str | None = None):
    """Open a fresh :class:`StatsScope` on the current thread."""
    with use_scope(StatsScope(label)) as scope:
        yield scope


@contextmanager
def isolated_scopes():
    """Temporarily clear the current thread's ambient scope stack.

    For engines that collect per-chunk counters and fold them into the
    caller's scopes *explicitly* (e.g. the parallel eval runner, whose
    chunks may run on the calling thread, a pool thread, or a forked
    worker): isolating the chunk makes ambient crediting identical across
    all three placements, so the explicit merge never double-counts.
    """
    previous = getattr(_stack, "scopes", None)
    _stack.scopes = []
    try:
        yield
    finally:
        _stack.scopes = previous if previous is not None else []
