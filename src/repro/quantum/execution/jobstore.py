"""Persistent job store: queued/leased work that survives a coordinator kill.

Each chunk a coordinator accepts for execution is recorded as one JSON
file, content-addressed by the BLAKE2b digest of its encoded payload,
in a directory *beside* the disk cache (never inside it — the disk
cache's eviction sweep globs ``*.json`` in its own directory and would
treat job files as corrupt entries).  Writes are atomic via the same
tmp-file + :func:`os.replace` idiom as
:class:`~repro.quantum.execution.disk_cache.DiskResultCache`, so a
coordinator killed mid-write leaves either the old record or the new
one, never a torn file.

Lifecycle of a record:

* ``record()``    — chunk accepted, state ``pending`` (an existing file
  is left untouched so a completed outcome is never demoted).
* ``complete()``  — outcome bytes persisted, state ``done``.  This runs
  *before* the in-memory fold, so a crash between the two re-serves the
  stored outcome on restart instead of re-executing.
* ``restore()``   — returns the decoded outcome for ``done`` records.
* ``forget()``    — the run folded every result; records are deleted.

A restarted coordinator therefore re-runs exactly the chunks that had
not completed, and re-folds completed ones bit-identically from disk.
"""

from __future__ import annotations

import base64
import hashlib
import os
import pickle
import threading
from pathlib import Path
from typing import Iterable

__all__ = ["JobStore"]

_STORE_VERSION = 1


def _plausible_outcome(outcome: object) -> bool:
    """Shape check mirroring dispatch's wire codec: ("ok", v) | ("err", e)."""
    return (
        isinstance(outcome, tuple)
        and len(outcome) == 2
        and outcome[0] in ("ok", "err")
    )


class JobStore:
    """JSON-per-job persistence for coordinator work, atomic and corruption-tolerant."""

    def __init__(self, job_dir: str | os.PathLike) -> None:
        self.job_dir = Path(job_dir)
        self.job_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    @staticmethod
    def digest_of(payload: bytes) -> str:
        """Content address of an encoded chunk payload."""
        return hashlib.blake2b(payload, digest_size=16).hexdigest()

    def _path(self, digest: str) -> Path:
        return self.job_dir / f"{digest}.json"

    def _read(self, path: Path) -> dict | None:
        """Best-effort read; a corrupt or torn file is discarded, not raised."""
        import json

        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if not isinstance(document, dict):
            return None
        return document

    def _write(self, path: Path, document: dict) -> None:
        """Atomic publish: write a sibling tmp file, then os.replace over."""
        import json

        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            # Persistence is best-effort (full disk must not fail the run);
            # the chunk simply re-executes after a restart.
            try:
                tmp.unlink()
            except OSError:
                pass

    def record(self, digest: str, payload: bytes, tenant: str = "") -> None:
        """Persist an accepted chunk as pending; never demotes a done record."""
        with self._lock:
            path = self._path(digest)
            if path.exists():
                return
            self._write(
                path,
                {
                    "version": _STORE_VERSION,
                    "digest": digest,
                    "tenant": tenant,
                    "payload": base64.b64encode(payload).decode("ascii"),
                    "state": "pending",
                    "outcome": None,
                },
            )

    def complete(self, digest: str, outcome: bytes, tenant: str = "") -> None:
        """Persist a chunk's outcome bytes and mark it done."""
        with self._lock:
            path = self._path(digest)
            document = self._read(path) or {
                "version": _STORE_VERSION,
                "digest": digest,
                "tenant": tenant,
                "payload": None,
            }
            document["state"] = "done"
            document["outcome"] = base64.b64encode(outcome).decode("ascii")
            self._write(path, document)

    def restore(self, digest: str) -> tuple | None:
        """Decoded outcome of a done record, or None (pending/missing/corrupt)."""
        with self._lock:
            document = self._read(self._path(digest))
        if not document or document.get("state") != "done":
            return None
        encoded = document.get("outcome")
        if not isinstance(encoded, str):
            return None
        try:
            outcome = pickle.loads(base64.b64decode(encoded.encode("ascii")))
        except Exception:
            return None
        if not _plausible_outcome(outcome):
            return None
        return outcome

    def pending(self) -> list[tuple[str, bytes, str]]:
        """All pending records as (digest, payload, tenant), digest-sorted."""
        rows: list[tuple[str, bytes, str]] = []
        with self._lock:
            for path in sorted(self.job_dir.glob("*.json")):
                document = self._read(path)
                if not document or document.get("state") != "pending":
                    continue
                encoded = document.get("payload")
                if not isinstance(encoded, str):
                    continue
                try:
                    payload = base64.b64decode(encoded.encode("ascii"))
                except ValueError:
                    continue
                rows.append(
                    (
                        str(document.get("digest", path.stem)),
                        payload,
                        str(document.get("tenant", "")),
                    )
                )
        return rows

    def forget(self, digests: Iterable[str]) -> None:
        """Delete records whose results have been folded and returned."""
        with self._lock:
            for digest in digests:
                try:
                    self._path(digest).unlink()
                except OSError:
                    pass

    def counts(self) -> dict[str, int]:
        """{"pending": n, "done": m} over readable records, for /metrics."""
        pending = done = 0
        with self._lock:
            for path in self.job_dir.glob("*.json"):
                document = self._read(path)
                if not document:
                    continue
                if document.get("state") == "done":
                    done += 1
                elif document.get("state") == "pending":
                    pending += 1
        return {"pending": pending, "done": done}

    def __len__(self) -> int:
        counts = self.counts()
        return counts["pending"] + counts["done"]
