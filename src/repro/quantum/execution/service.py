"""The ExecutionService: batched, cached, thread-pooled circuit execution.

This is the single funnel through which the repo runs circuits.  Every layer
above (agents, evalsuite, experiments, CLI, and the ``Backend.run``
compatibility shim) submits work here, which buys:

* **batching** — ``service.submit([qc1, qc2, ...], backend="fake_brisbane",
  shots=1024, seed=7)`` fans the circuits out across a worker pool and
  returns one :class:`~repro.quantum.execution.jobs.ExecutionJob` whose
  ``result()`` preserves submission order;
* **an async job lifecycle** — ``QUEUED -> RUNNING -> DONE/ERROR``, with
  ``job.result(timeout=...)`` and best-effort ``job.cancel()``;
* **content-addressed caching** — deterministic executions (``seed`` given)
  are keyed by circuit/backend/shots/seed/noise fingerprints, so repeated
  grading passes and re-run experiment arms skip re-simulation entirely; the
  hit/miss counters are surfaced via :meth:`ExecutionService.stats`;
* **a persistent cache tier** — ``ExecutionService(cache_dir=...)`` (or the
  ``REPRO_CACHE_DIR`` environment variable for the default service) layers a
  :class:`~repro.quantum.execution.disk_cache.DiskResultCache` behind the
  in-memory LRU, so a second process repeating the same deterministic work
  performs zero simulations; ``cache_limits=CacheLimits(max_bytes=...,
  max_entries=..., max_age_seconds=...)`` (or ``REPRO_CACHE_MAX_BYTES`` /
  ``REPRO_CACHE_MAX_ENTRIES`` / ``REPRO_CACHE_MAX_AGE``) bounds that store
  with LRU eviction enforced on every write;
* **a shared remote tier** — ``ExecutionService(remote_url="http://...")``
  (or ``REPRO_CACHE_URL``) layers a
  :class:`~repro.quantum.execution.remote_cache.RemoteResultCache` behind
  memory and disk, so a *fleet* of workers on different machines shares one
  warm store served by ``repro cache-server``; a dead server degrades to
  cache misses, never errors;
* **a pluggable executor strategy** — ``executor="thread"`` (default) keeps
  the GIL-sharing pool; ``executor="process"`` ships cache misses to a
  ``ProcessPoolExecutor`` as picklable work units (see
  :mod:`~repro.quantum.execution.pool`) for real parallelism on dense
  statevector sweeps, falling back to in-process execution for backends that
  cannot be reconstructed by name in a child; ``executor="batch"`` groups
  compatible misses (same compacted gate structure) and simulates each group
  on one vectorised batch axis (see :mod:`repro.quantum.batchsim`), with
  results bit-identical to the serial engine per ``(seed, circuit)`` and the
  ``simulations_batched`` / ``batch_groups`` counters reporting how much
  work took the vectorised path;
* **single-flight simulation** — concurrent misses on an identical cache key
  elect one leader to simulate while the rest wait for its cache fill
  (``simulations_deduped`` in :meth:`ExecutionService.stats`), so a batch of
  duplicate circuits never multiplies work;
* **attributable counters** — ``with service.stats_scope() as scope:``
  captures exactly the simulations/cache traffic caused by the work initiated
  under it (asynchronous submissions credit the scopes that were active at
  ``submit()`` time), so concurrent callers — e.g. two evaluation arms
  sharing the service — get exact, non-overlapping stats instead of the racy
  before/after diff of the global :meth:`ExecutionService.stats`.

Seed semantics: circuit *i* of a batch executes with ``seed`` itself for
``i == 0`` and ``derive_seed(seed, "batch", i)`` afterwards.  Index 0 matches
the pre-service behaviour of ``Backend.run`` (a fresh generator per call), so
single-circuit executions — the overwhelming majority — produce bit-identical
counts to the legacy path while every circuit stays independently cacheable.

Synchronous callers use :meth:`ExecutionService.run` (same semantics, same
cache, executed inline on the calling thread) or the module-level
:func:`execute` convenience on the shared :func:`default_service`.
"""

from __future__ import annotations

import os
import threading
import warnings
import weakref
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager

from repro.errors import BackendError, TranspilerError, ValidationError
from repro.quantum import batchsim
from repro.quantum.analysis import (
    Diagnostic,
    analyze_circuit,
    unbound_parameter_errors,
)
from repro.quantum.backend import Backend, Result
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution.cache import (
    CacheKey,
    ResultCache,
    circuit_fingerprint,
    noise_fingerprint,
)
from repro.quantum.execution.disk_cache import CacheLimits, DiskResultCache
from repro.quantum.execution.jobs import ExecutionJob, JobStatus
from repro.quantum.execution.pool import (
    EXECUTOR_KINDS,
    WorkUnit,
    make_process_pool,
    offloadable,
    run_work_unit,
)
from repro.quantum.execution.registry import resolve_backend
from repro.quantum.execution.remote_cache import RemoteResultCache
from repro.quantum.execution.scopes import (
    StatsScope,
    active_scopes,
    credit,
    stats_scope,
)
from repro.utils.rng import derive_seed

#: Environment variable that gives the *default* service a persistent cache.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Environment variable that points the default service at a cache server.
CACHE_URL_ENV = "REPRO_CACHE_URL"
#: Environment variable that picks the default service's executor strategy.
EXECUTOR_ENV = "REPRO_EXECUTOR"
#: Environment variable that picks the default service's pre-flight mode.
VALIDATE_ENV = "REPRO_VALIDATE"

#: Pre-flight validation modes: ``off`` skips the analyzer entirely,
#: ``warn`` surfaces diagnostics as warnings but still executes, ``strict``
#: raises :class:`~repro.errors.ValidationError` on any ``QA1xx`` error
#: before the submission reaches the cache, the pool, or a simulator.
VALIDATE_MODES = ("off", "warn", "strict")

#: Upper bound on worker threads; dense statevector math releases little of
#: the GIL, so a small pool captures most of the available overlap.
DEFAULT_MAX_WORKERS = 4

_ambient = threading.local()


@contextmanager
def ambient_seed(seed: int | None):
    """Give unseeded executions on this thread a deterministic default.

    Used by the sandbox to make generated programs (which call
    ``backend.run(qc, shots=...)`` without a seed) reproducible — and
    therefore cacheable: a repeated eval arm re-executes nothing.  Explicit
    seeds always win; ``None`` restores true entropy.

    Successive unseeded submissions inside one scope receive *distinct*
    seeds (the first gets ``seed`` itself, the n-th a derivation of it), so
    a program that runs the same circuit twice to average over shot noise
    still sees independent samples — the sequence is merely replayable.
    """
    previous = getattr(_ambient, "state", None)
    _ambient.state = None if seed is None else [seed, 0]
    try:
        yield
    finally:
        _ambient.state = previous


def _ambient_seed() -> int | None:
    state = getattr(_ambient, "state", None)
    if state is None:
        return None
    base, index = state
    state[1] += 1
    return base if index == 0 else derive_seed(base, "ambient", index)


class _Batch:
    """Book-keeping for one submitted job's outstanding circuits."""

    def __init__(
        self,
        job: ExecutionJob,
        size: int,
        backend: Backend,
        shots: int,
        seed: int | None,
        scopes: tuple[StatsScope, ...] = (),
    ) -> None:
        self.job = job
        self.backend = backend
        self.shots = shots
        self.seed = seed
        #: Stats scopes active on the *submitting* thread: pool workers credit
        #: these, so async work stays attributed to whoever submitted it.
        self.scopes = scopes
        self.slots: list[tuple[dict[str, int], list[str] | None] | None] = (
            [None] * size
        )
        self.pending = size
        self.lock = threading.Lock()


class ExecutionService:
    """Pooled execution engine with a shared (optionally persistent) cache."""

    def __init__(
        self,
        max_workers: int = DEFAULT_MAX_WORKERS,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        cache_dir: str | os.PathLike | None = None,
        cache_limits: CacheLimits | None = None,
        remote_url: str | None = None,
        executor: str = "thread",
        validate: str = "off",
    ) -> None:
        if max_workers <= 0:
            raise BackendError(f"max_workers must be positive, got {max_workers}")
        if executor not in EXECUTOR_KINDS:
            raise BackendError(
                f"executor must be one of {EXECUTOR_KINDS}, got {executor!r}"
            )
        if validate not in VALIDATE_MODES:
            raise BackendError(
                f"validate must be one of {VALIDATE_MODES}, got {validate!r}"
            )
        if cache is not None and (
            cache_dir is not None
            or cache_limits is not None
            or remote_url is not None
        ):
            raise BackendError(
                "pass either a prebuilt cache or cache_dir/cache_limits/"
                "remote_url, not both; attach the extra tiers via "
                "ResultCache(disk=..., remote=...)"
            )
        if cache_limits is not None and cache_dir is None:
            raise BackendError(
                "cache_limits bounds the persistent tier; pass cache_dir too"
            )
        if (cache_dir is not None or remote_url is not None) and not use_cache:
            raise BackendError(
                "cache_dir/remote_url require caching; drop use_cache=False "
                "to enable the persistent tiers"
            )
        self.max_workers = max_workers
        self.executor = executor
        self.validate = validate
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        self.remote_url = remote_url
        if cache is None and use_cache:
            disk = (
                DiskResultCache(cache_dir, limits=cache_limits)
                if cache_dir is not None
                else None
            )
            remote = (
                RemoteResultCache(remote_url) if remote_url is not None else None
            )
            cache = ResultCache(disk=disk, remote=remote)
        self.cache = cache
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None
        self._process_pool_broken = False
        self._lock = threading.Lock()
        self._inflight: dict[CacheKey, threading.Event] = {}
        self._jobs_submitted = 0
        self._circuits_executed = 0
        self._simulations = 0
        self._simulations_deduped = 0
        self._simulations_batched = 0
        self._batch_groups = 0
        self._programs_validated = 0
        self._rejected_static = 0
        self._rejected_unbound = 0
        self._transpiles = 0
        self._transpile_cache_hits = 0
        #: Template keys whose symbolic transpilation raised (e.g. ZYZ needs
        #: concrete angles); sweeps over these fall back to transpiling each
        #: bound point without retrying the template every time.
        self._untranspilable_templates: set[CacheKey] = set()
        _live_services.add(self)

    # -- public API --------------------------------------------------------------

    def submit(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        backend: Backend | str | None = None,
        shots: int = 1024,
        seed: int | None = None,
        memory: bool = False,
    ) -> ExecutionJob:
        """Asynchronously execute circuits; returns a live :class:`ExecutionJob`.

        Validation (circuit/backend compatibility, shot limits) happens
        eagerly so malformed submissions raise :class:`BackendError` here, not
        inside a worker.  Fully-cached submissions complete without touching
        the pool.
        """
        target, batch_circuits = self._prepare(circuits, backend, shots)
        if seed is None:
            seed = _ambient_seed()
        job = ExecutionJob(
            num_circuits=len(batch_circuits), backend_name=target.name
        )
        scopes = active_scopes()
        batch = _Batch(job, len(batch_circuits), target, shots, seed, scopes)
        misses: list[tuple[int, QuantumCircuit, CacheKey | None, int | None]] = []
        noise_fp = noise_fingerprint(target.noise_model)
        for index, qc in enumerate(batch_circuits):
            eff_seed = self._effective_seed(seed, index)
            key = self._cache_key(qc, target, shots, eff_seed, noise_fp, memory)
            cached = self.cache.get(key, scopes) if key is not None else None
            if cached is not None:
                batch.slots[index] = cached
                batch.pending -= 1
                job.cache_hits += 1
            else:
                misses.append((index, qc, key, eff_seed))
        self._account(len(batch_circuits))
        if not misses:
            self._finalize(batch)
            return job
        pool = self._ensure_pool()
        if self.executor == "batch":
            # One pool task per planned group: compatible misses simulate
            # together on the batch axis, everything else falls back to the
            # per-unit worker with identical semantics.
            for group in self._plan_misses(target, misses, shots):
                if group.kind == batchsim.SERIAL:
                    for unit in group.units:
                        pool.submit(
                            self._worker, batch, target, unit.index,
                            unit.circuit, unit.key, unit.seed, shots, memory,
                        )
                else:
                    pool.submit(self._batch_worker, batch, target, group, memory)
            return job
        for index, qc, key, eff_seed in misses:
            pool.submit(
                self._worker, batch, target, index, qc, key, eff_seed, shots, memory
            )
        return job

    def run(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        backend: Backend | str | None = None,
        shots: int = 1024,
        seed: int | None = None,
        memory: bool = False,
    ) -> ExecutionJob:
        """Synchronous path: same validation, cache and seed semantics as
        :meth:`submit`, executed inline; returns a finished job."""
        target, batch_circuits = self._prepare(circuits, backend, shots)
        if seed is None:
            seed = _ambient_seed()
        job = ExecutionJob(
            num_circuits=len(batch_circuits), backend_name=target.name
        )
        job._mark_running()
        scopes = active_scopes()
        noise_fp = noise_fingerprint(target.noise_model)
        if self.executor == "batch":
            counts_list, memory_list = self._run_batched(
                target, batch_circuits, shots, seed, memory, noise_fp, scopes, job
            )
            self._account(len(batch_circuits))
            job._mark_done(
                Result(counts_list, memory_list, target.name, shots, seed)
            )
            return job
        counts_list: list[dict[str, int]] = []
        memory_list: list[list[str] | None] = []
        for index, qc in enumerate(batch_circuits):
            eff_seed = self._effective_seed(seed, index)
            key = self._cache_key(qc, target, shots, eff_seed, noise_fp, memory)
            counts, mem, source = self._lookup_or_simulate(
                target, qc, shots, eff_seed, memory, key, scopes=scopes
            )
            if source == "hit":
                job.cache_hits += 1
            elif source == "dedup":
                job.deduped += 1
            counts_list.append(counts)
            memory_list.append(mem)
        self._account(len(batch_circuits))
        job._mark_done(
            Result(counts_list, memory_list, target.name, shots, seed)
        )
        return job

    def transpile(
        self,
        circuit: QuantumCircuit,
        backend: Backend | str | None = None,
        coupling_map=None,
        basis_gates: Sequence[str] | None = None,
        initial_layout: Sequence[int] | None = None,
        optimization_level: int | None = None,
    ) -> QuantumCircuit:
        """Content-addressed transpilation through the service's cache tiers.

        The key is ``(logical circuit fingerprint, coupling fingerprint,
        basis fingerprint, initial layout, optimization level)``; see
        :mod:`repro.quantum.execution.transpile_cache`.  Hits — from the
        memory LRU, the disk store, or the shared cache server, with the
        usual tier promotion — skip the pass manager entirely and count as
        ``transpile_cache_hits``; misses run the pass stack once, count as
        ``transpiles``, and write through to every tier, so a fleet of
        workers transpiles each logical circuit once, ever.

        Lookups use :meth:`ResultCache.peek`, so the execution-result
        ``cache_hits``/``cache_misses`` counters are untouched — the
        dedicated transpile counters (surfaced by :meth:`stats`, stats
        scopes, ``--exec-stats`` and ``repro backends``) carry the
        attribution instead.
        """
        from repro.quantum.transpiler.pipeline import (
            resolve_lowering,
            resolve_optimization_level,
            transpile_core,
        )
        from repro.quantum.execution.transpile_cache import (
            decode_transpiled,
            encode_transpiled,
            transpile_cache_key,
        )

        if isinstance(backend, str):
            backend = resolve_backend(backend)
        coupling_map, basis = resolve_lowering(backend, coupling_map, basis_gates)
        level = resolve_optimization_level(optimization_level)
        scopes = active_scopes()
        provenance = getattr(circuit, "_bound_from", None)
        if provenance is not None and provenance.matches(circuit):
            # Bound-template fast path: transpile the *unbound* structure once
            # (cached under the template's key), then bind the lowered output
            # with this point's values — an N-point sweep costs 1 transpile.
            # Symbolic lowering can legitimately fail (ZYZ resynthesis needs
            # concrete angles); such templates are negatively cached and their
            # sweep points fall through to concrete per-point transpilation.
            template_key = transpile_cache_key(
                provenance.template, coupling_map, basis, initial_layout, level
            )
            with self._lock:
                known_failure = template_key in self._untranspilable_templates
            if not known_failure:
                try:
                    lowered = self.transpile(
                        provenance.template,
                        backend=backend,
                        coupling_map=coupling_map,
                        basis_gates=basis,
                        initial_layout=initial_layout,
                        optimization_level=level,
                    )
                except TranspilerError:
                    with self._lock:
                        self._untranspilable_templates.add(template_key)
                else:
                    return lowered.bind(provenance.mapping, allow_unused=True)
        key = None
        if self.cache is not None:
            key = transpile_cache_key(
                circuit, coupling_map, basis, initial_layout, level
            )
            entry = self.cache.peek(key)
            if entry is not None:
                restored = decode_transpiled(entry[0], entry[1], circuit)
                if restored is not None:
                    with self._lock:
                        self._transpile_cache_hits += 1
                    credit(scopes, "transpile_cache_hits")
                    return restored
        out = transpile_core(circuit, coupling_map, basis, initial_layout, level)
        with self._lock:
            self._transpiles += 1
        credit(scopes, "transpiles")
        if key is not None:
            counts, payload = encode_transpiled(out)
            self.cache.put(key, counts, payload, scopes)
        return out

    def stats_scope(self, label: str | None = None):
        """Open an attributable counter scope on the current thread.

        Everything executed under the scope — synchronously, or submitted
        from this thread and run on pool workers — credits the yielded
        :class:`~repro.quantum.execution.scopes.StatsScope` exactly, even
        while other threads drive the same service.  This is the
        concurrency-safe replacement for diffing :meth:`stats` around a
        workload.  Scopes are ambient per thread, so the same scope also
        covers any other service the thread touches; see
        :func:`repro.quantum.execution.scopes.use_scope` for re-activating a
        scope on worker threads.
        """
        return stats_scope(label)

    def stats(self) -> dict[str, float | int | str]:
        """Service-level counters, including cache hit/miss totals.

        These are process-global; to attribute activity to one caller under
        concurrency use :meth:`stats_scope`, not a before/after diff.
        """
        with self._lock:
            out: dict[str, float | int | str] = {
                "jobs_submitted": self._jobs_submitted,
                "circuits_executed": self._circuits_executed,
                "simulations": self._simulations,
                "simulations_deduped": self._simulations_deduped,
                "simulations_batched": self._simulations_batched,
                "batch_groups": self._batch_groups,
                "programs_validated": self._programs_validated,
                "rejected_static": self._rejected_static,
                "rejected_unbound": self._rejected_unbound,
                "transpiles": self._transpiles,
                "transpile_cache_hits": self._transpile_cache_hits,
                "executor": self.executor,
                "validate": self.validate,
            }
        if self.cache is not None:
            snap = self.cache.stats.snapshot()
            out.update(
                cache_hits=snap.hits,
                cache_misses=snap.misses,
                cache_hit_rate=snap.hit_rate,
                cache_entries=len(self.cache),
            )
            if self.cache.disk is not None:
                # No disk entry count here: that is O(entries) directory I/O
                # and stats() sits on hot paths (the CLI prints it per eval).
                # `repro cache` reports entry counts on demand.
                out.update(
                    cache_disk_hits=snap.disk_hits,
                    cache_evictions=self.cache.disk.evictions,
                    cache_dir=str(self.cache.disk.cache_dir),
                )
            if self.cache.remote is not None:
                out.update(
                    cache_remote_hits=snap.remote_hits,
                    cache_remote_errors=self.cache.remote.errors,
                    cache_url=self.cache.remote.base_url,
                )
        return out

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pools (they restart lazily on the next submit)."""
        with self._lock:
            pool, self._pool = self._pool, None
            procs, self._process_pool = self._process_pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        if procs is not None:
            procs.shutdown(wait=wait)

    # -- internals ------------------------------------------------------------------

    def _prepare(
        self,
        circuits: QuantumCircuit | Sequence[QuantumCircuit],
        backend: Backend | str | None,
        shots: int,
    ) -> tuple[Backend, list[QuantumCircuit]]:
        target = resolve_backend(backend)
        if isinstance(circuits, QuantumCircuit):
            circuits = [circuits]
        batch = list(circuits)
        target.validate_batch(batch, shots)
        self._preflight(batch, target)
        return target, batch

    def _preflight(self, batch: list[QuantumCircuit], target: Backend) -> None:
        """Static pre-flight over a submission (``validate="warn"|"strict"``).

        Runs the analyzer on every circuit before any cache, pool or
        simulator traffic.  ``strict`` raises
        :class:`~repro.errors.ValidationError` on ``QA1xx`` errors (crediting
        ``rejected_static`` per defective circuit); ``warn`` emits one warning
        per diagnosed circuit and proceeds.  Both modes credit
        ``programs_validated`` per circuit analyzed.

        The ``QA105`` unbound-parameter check runs first and in **every**
        mode, including ``"off"``: executing a symbol is meaningless in any
        mode, so templates are rejected (crediting ``rejected_unbound`` per
        offending circuit) before any cache or pool traffic.
        """
        scopes = active_scopes()
        unbound: list[Diagnostic] = []
        unbound_rejected = 0
        for qc in batch:
            diags = unbound_parameter_errors(qc)
            if diags:
                unbound_rejected += 1
                unbound.extend(diags)
        if unbound:
            with self._lock:
                self._rejected_unbound += unbound_rejected
            credit(scopes, "rejected_unbound", unbound_rejected)
            rendered = "; ".join(d.render() for d in unbound)
            raise ValidationError(
                f"{unbound_rejected} of {len(batch)} circuit(s) carry unbound "
                f"symbolic parameters: {rendered}",
                diagnostics=unbound,
            )
        if self.validate == "off":
            return
        errors: list[Diagnostic] = []
        rejected = 0
        for position, qc in enumerate(batch):
            analysis = analyze_circuit(qc, max_qubits=target.max_active_qubits)
            if analysis.errors:
                rejected += 1
                errors.extend(analysis.errors)
            if self.validate == "warn" and not analysis.ok:
                rendered = "; ".join(d.render() for d in analysis.errors)
                warnings.warn(
                    f"circuit {position} ({qc.name or 'unnamed'}) failed "
                    f"static validation: {rendered}",
                    stacklevel=4,
                )
        with self._lock:
            self._programs_validated += len(batch)
        credit(scopes, "programs_validated", len(batch))
        if self.validate == "strict" and errors:
            with self._lock:
                self._rejected_static += rejected
            credit(scopes, "rejected_static", rejected)
            rendered = "; ".join(d.render() for d in errors)
            raise ValidationError(
                f"static analysis rejected {rejected} of {len(batch)} "
                f"circuit(s): {rendered}",
                diagnostics=errors,
            )

    @staticmethod
    def _effective_seed(seed: int | None, index: int) -> int | None:
        if seed is None or index == 0:
            return seed
        return derive_seed(seed, "batch", index)

    def _cache_key(
        self,
        circuit: QuantumCircuit,
        backend: Backend,
        shots: int,
        eff_seed: int | None,
        noise_fp: str,
        memory: bool,
    ) -> CacheKey | None:
        if self.cache is None or eff_seed is None:
            return None
        return CacheKey(
            circuit=circuit_fingerprint(circuit),
            backend=backend.name,
            shots=shots,
            seed=eff_seed,
            noise=noise_fp,
            memory=memory,
        )

    def _simulate(
        self,
        backend: Backend,
        circuit: QuantumCircuit,
        shots: int,
        eff_seed: int | None,
        memory: bool,
        scopes: tuple[StatsScope, ...] = (),
    ) -> tuple[dict[str, int], list[str] | None]:
        with self._lock:
            self._simulations += 1
        credit(scopes, "simulations")
        if self.executor == "process" and offloadable(backend):
            pool = self._ensure_process_pool()
            if pool is not None:
                unit = WorkUnit(
                    circuit=circuit,
                    backend_name=backend.name,
                    shots=shots,
                    seed=eff_seed,
                    noise_fp=noise_fingerprint(backend.noise_model),
                    memory=memory,
                )
                return pool.submit(run_work_unit, unit).result()
        return backend.execute_circuit(circuit, shots, eff_seed, memory)

    def _lookup_or_simulate(
        self,
        backend: Backend,
        circuit: QuantumCircuit,
        shots: int,
        eff_seed: int | None,
        memory: bool,
        key: CacheKey | None,
        probe: bool = True,
        scopes: tuple[StatsScope, ...] = (),
    ) -> tuple[dict[str, int], list[str] | None, str]:
        """One circuit through the cache: ``(counts, memory, source)``.

        ``source`` is ``"hit"`` (served from the cache lookup), ``"sim"``
        (actually simulated), or ``"dedup"`` (waited on — or arrived after —
        an identical in-flight execution and read its cache fill).

        The single execution path shared by the sync loop and the pool
        workers, so cache/seed semantics can never fork between them.
        ``probe=False`` skips the lookup (pool workers already missed at
        submit time; probing again would double-count the miss).  ``scopes``
        receive every increment this circuit causes, no matter which thread
        runs it.
        """
        cached = self.cache.get(key, scopes) if probe and key is not None else None
        if cached is not None:
            return cached[0], cached[1], "hit"
        if key is None:
            counts, mem = self._simulate(
                backend, circuit, shots, eff_seed, memory, scopes
            )
            return counts, mem, "sim"
        # Single-flight: concurrent misses on one key elect a leader; the
        # rest block on its cache fill instead of duplicating the simulation.
        while True:
            with self._lock:
                event = self._inflight.get(key)
                if event is None:
                    self._inflight[key] = threading.Event()
                    break
            event.wait()
            filled = self.cache.peek(key)
            if filled is not None:
                return self._deduped(filled, scopes)
            # The leader failed without filling the cache; compete to retry.
        try:
            # Re-probe silently: the key may have been filled between the
            # submit-time miss and this worker winning leadership (e.g. a
            # batch containing the same circuit twice on one worker thread).
            filled = self.cache.peek(key)
            if filled is not None:
                return self._deduped(filled, scopes)
            counts, mem = self._simulate(
                backend, circuit, shots, eff_seed, memory, scopes
            )
            self.cache.put(key, counts, mem, scopes)
            return counts, mem, "sim"
        finally:
            with self._lock:
                event = self._inflight.pop(key)
            event.set()

    def _deduped(
        self,
        entry: tuple[dict[str, int], list[str] | None],
        scopes: tuple[StatsScope, ...] = (),
    ) -> tuple[dict[str, int], list[str] | None, str]:
        with self._lock:
            self._simulations_deduped += 1
        credit(scopes, "simulations_deduped")
        return entry[0], entry[1], "dedup"

    def _account(self, num_circuits: int) -> None:
        with self._lock:
            self._jobs_submitted += 1
            self._circuits_executed += num_circuits

    def _worker(
        self,
        batch: _Batch,
        backend: Backend,
        index: int,
        circuit: QuantumCircuit,
        key: CacheKey | None,
        eff_seed: int | None,
        shots: int,
        memory: bool,
    ) -> None:
        job = batch.job
        if not job._mark_running():
            return  # cancelled (or already failed) before this circuit started
        try:
            counts, mem, source = self._lookup_or_simulate(
                backend, circuit, shots, eff_seed, memory, key,
                probe=False, scopes=batch.scopes,
            )
        except BaseException as exc:  # noqa: BLE001 - relayed via job.result()
            job._mark_error(exc)
            return
        with batch.lock:
            if source == "dedup":
                job.deduped += 1
            batch.slots[index] = (counts, mem)
            batch.pending -= 1
            last = batch.pending == 0
        if last:
            self._finalize(batch)

    # -- batch executor strategy ------------------------------------------------

    def _plan_misses(
        self,
        target: Backend,
        misses: list[tuple[int, QuantumCircuit, CacheKey | None, int | None]],
        shots: int,
    ) -> list["batchsim.PlannedGroup"]:
        units = [
            batchsim.make_unit(index, qc, key, eff_seed, shots)
            for index, qc, key, eff_seed in misses
        ]
        return batchsim.plan(target, units)

    def _run_batched(
        self,
        target: Backend,
        circuits: list[QuantumCircuit],
        shots: int,
        seed: int | None,
        memory: bool,
        noise_fp: str,
        scopes: tuple[StatsScope, ...],
        job: ExecutionJob,
    ) -> tuple[list[dict[str, int]], list[list[str] | None]]:
        """Synchronous batch execution: probe everything up front, then run
        the planner's groups inline on the calling thread."""
        slots: list[tuple[dict[str, int], list[str] | None] | None] = (
            [None] * len(circuits)
        )
        misses: list[tuple[int, QuantumCircuit, CacheKey | None, int | None]] = []
        for index, qc in enumerate(circuits):
            eff_seed = self._effective_seed(seed, index)
            key = self._cache_key(qc, target, shots, eff_seed, noise_fp, memory)
            cached = self.cache.get(key, scopes) if key is not None else None
            if cached is not None:
                slots[index] = cached
                job.cache_hits += 1
            else:
                misses.append((index, qc, key, eff_seed))
        for group in self._plan_misses(target, misses, shots):
            if group.kind == batchsim.SERIAL:
                for unit in group.units:
                    counts, mem, source = self._lookup_or_simulate(
                        target, unit.circuit, unit.shots, unit.seed, memory,
                        unit.key, probe=False, scopes=scopes,
                    )
                    if source == "dedup":
                        job.deduped += 1
                    slots[unit.index] = (counts, mem)
            else:
                resolved = self._execute_group(target, group, memory, scopes)
                for index, (counts, mem, source) in resolved.items():
                    if source == "dedup":
                        job.deduped += 1
                    slots[index] = (counts, mem)
        return (
            [slot[0] for slot in slots],  # type: ignore[index]
            [slot[1] for slot in slots],  # type: ignore[index]
        )

    def _batch_worker(
        self,
        batch: _Batch,
        backend: Backend,
        group: "batchsim.PlannedGroup",
        memory: bool,
    ) -> None:
        """Pool task that fills every slot of one planned group."""
        job = batch.job
        if not job._mark_running():
            return  # cancelled (or already failed) before this group started
        try:
            resolved = self._execute_group(backend, group, memory, batch.scopes)
        except BaseException as exc:  # noqa: BLE001 - relayed via job.result()
            job._mark_error(exc)
            return
        with batch.lock:
            for index, (counts, mem, source) in resolved.items():
                if source == "dedup":
                    job.deduped += 1
                batch.slots[index] = (counts, mem)
                batch.pending -= 1
            last = batch.pending == 0
        if last:
            self._finalize(batch)

    def _execute_group(
        self,
        backend: Backend,
        group: "batchsim.PlannedGroup",
        memory: bool,
        scopes: tuple[StatsScope, ...],
    ) -> dict[int, tuple[dict[str, int], list[str] | None, str]]:
        """One batchable group through the cache and single-flight contracts.

        Leadership is acquired *non-blocking* per unit: contested units —
        some other thread is already simulating the identical key — are
        deferred to the normal single-flight wait until after the group has
        simulated and released every flight it leads, so this thread never
        blocks while holding a leadership (no deadlock between two groups
        contending for overlapping key sets).  Returns ``{submission index:
        (counts, memory, source)}`` covering every unit of the group.
        """
        results: dict[int, tuple[dict[str, int], list[str] | None, str]] = {}
        leaders: list[batchsim.PlannedUnit] = []
        deferred: list[batchsim.PlannedUnit] = []
        for unit in group.units:
            if unit.key is None:
                leaders.append(unit)  # uncacheable: nothing to coordinate
                continue
            if self._try_lead(unit.key):
                # Re-probe silently, as _lookup_or_simulate does: the key may
                # have been filled since the submit-time miss.
                filled = self.cache.peek(unit.key)
                if filled is not None:
                    self._release_flight(unit.key)
                    results[unit.index] = self._deduped(filled, scopes)
                else:
                    leaders.append(unit)
            else:
                deferred.append(unit)
        try:
            if leaders:
                with self._lock:
                    self._simulations += len(leaders)
                    self._simulations_batched += len(leaders)
                    self._batch_groups += 1
                credit(scopes, "simulations", len(leaders))
                credit(scopes, "simulations_batched", len(leaders))
                credit(scopes, "batch_groups")
                executed = batchsim.dispatch(
                    backend, batchsim.PlannedGroup(group.kind, leaders), memory
                )
                for unit, (counts, mem) in zip(leaders, executed):
                    if unit.key is not None:
                        self.cache.put(unit.key, counts, mem, scopes)
                    results[unit.index] = (counts, mem, "sim")
        finally:
            # On engine failure the flights release unfilled; waiters observe
            # a failed leader and compete to retry, exactly as serially.
            for unit in leaders:
                if unit.key is not None:
                    self._release_flight(unit.key)
        for unit in deferred:
            results[unit.index] = self._lookup_or_simulate(
                backend, unit.circuit, unit.shots, unit.seed, memory, unit.key,
                probe=False, scopes=scopes,
            )
        return results

    def _try_lead(self, key: CacheKey) -> bool:
        """Claim single-flight leadership for ``key`` without blocking."""
        with self._lock:
            if key in self._inflight:
                return False
            self._inflight[key] = threading.Event()
            return True

    def _release_flight(self, key: CacheKey) -> None:
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def _finalize(self, batch: _Batch) -> None:
        job = batch.job
        if job.done():
            return
        counts_list = [slot[0] for slot in batch.slots if slot is not None]
        memory_list = [slot[1] for slot in batch.slots if slot is not None]
        if len(counts_list) != len(batch.slots):  # pragma: no cover - invariant
            job._mark_error(BackendError("internal error: incomplete batch"))
            return
        if job.status() is JobStatus.QUEUED:
            job._mark_running()
        job._mark_done(
            Result(
                counts_list, memory_list, batch.backend.name, batch.shots, batch.seed
            )
        )

    def _reset_for_child(self) -> None:
        """Repair state after ``fork()``: worker threads do not survive into
        the child, so inherited pools would queue work forever, and a lock
        another parent thread held at fork time would deadlock.  Counters and
        the (warm) cache contents are kept — inheriting them is exactly why
        eval workers fork."""
        self._lock = threading.Lock()
        self._pool = None
        self._process_pool = None
        self._process_pool_broken = False
        # Parent-side leaders will never set their events in this process.
        self._inflight = {}
        if self.cache is not None:
            self.cache._reset_for_child()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-exec",
                )
            return self._pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor | None:
        """The worker-process pool, or ``None`` when the platform lacks one
        (the caller then simulates in-process instead)."""
        with self._lock:
            if self._process_pool_broken:
                return None
            if self._process_pool is None:
                try:
                    self._process_pool = make_process_pool(self.max_workers)
                except (OSError, NotImplementedError, ValueError):
                    self._process_pool_broken = True
                    return None
            return self._process_pool


# -- fork safety --------------------------------------------------------------------

#: Every live service, so forked children can repair inherited state.
_live_services: "weakref.WeakSet[ExecutionService]" = weakref.WeakSet()


def _reset_services_after_fork() -> None:
    global _default_lock
    _default_lock = threading.Lock()
    for service in list(_live_services):
        service._reset_for_child()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix containers
    os.register_at_fork(after_in_child=_reset_services_after_fork)


# -- process-wide default service ---------------------------------------------------

_default: ExecutionService | None = None
_default_lock = threading.Lock()


def executor_from_env(default: str = "thread") -> str:
    """The executor strategy named by ``REPRO_EXECUTOR`` (or ``default``).

    Shared by every entry point that builds its *own* service — the CLI eval
    command, distributed eval workers, the fleet example — so one environment
    variable picks the strategy uniformly across a fleet.  Validation stays
    in :class:`ExecutionService` (unknown names raise there).
    """
    return os.environ.get(EXECUTOR_ENV, "").strip().lower() or default


def validate_from_env(default: str = "off") -> str:
    """The pre-flight mode named by ``REPRO_VALIDATE`` (or ``default``).

    Same contract as :func:`executor_from_env`: one environment variable
    turns on static validation uniformly across a fleet; unknown values
    raise inside :class:`ExecutionService`.
    """
    return os.environ.get(VALIDATE_ENV, "").strip().lower() or default


def default_service() -> ExecutionService:
    """The shared process-wide :class:`ExecutionService` (lazily created).

    Honours ``REPRO_CACHE_DIR`` (persistent disk cache tier, bounded by
    ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_CACHE_MAX_ENTRIES`` /
    ``REPRO_CACHE_MAX_AGE``), ``REPRO_CACHE_URL`` (shared remote tier) and
    ``REPRO_EXECUTOR`` (``thread``/``process``/``batch`` strategy) so
    headless runs — CI, ``repro report``, repeated evalsuite arms, fleet
    workers — can be warm-started and parallelised without touching call
    sites.  Explicitly constructed services ignore the environment.
    """
    global _default
    with _default_lock:
        if _default is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV, "").strip() or None
            remote_url = os.environ.get(CACHE_URL_ENV, "").strip() or None
            executor = executor_from_env()
            _default = ExecutionService(
                cache_dir=cache_dir,
                cache_limits=(
                    CacheLimits.from_env() if cache_dir is not None else None
                ),
                remote_url=remote_url,
                executor=executor,
                validate=validate_from_env(),
            )
        return _default


def set_default_service(
    service: ExecutionService | None, shutdown_previous: bool = False
) -> None:
    """Replace the shared service (``None`` resets to a fresh default).

    ``shutdown_previous=True`` also stops the displaced service's worker
    pools — for callers that permanently retire it (e.g. the CLI swapping in
    a configured service).  The default leaves the previous instance running,
    so tests can swap services in and out and restore them afterwards.
    """
    global _default
    with _default_lock:
        previous, _default = _default, service
    if shutdown_previous and previous is not None and previous is not service:
        previous.shutdown()


def execute(
    circuits: QuantumCircuit | Sequence[QuantumCircuit],
    backend: Backend | str | None = None,
    shots: int = 1024,
    seed: int | None = None,
    memory: bool = False,
) -> Result:
    """One-call synchronous execution on the shared default service."""
    return default_service().run(
        circuits, backend=backend, shots=shots, seed=seed, memory=memory
    ).result()
