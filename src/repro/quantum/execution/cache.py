"""Content-addressed result cache for circuit execution.

Execution results are keyed by everything that determines them:

    (circuit fingerprint, backend name, shots, seed, noise fingerprint, memory)

so a cache hit is *exactly* a repeated simulation — the multi-pass refinement
loop re-grading an unchanged program, an evalsuite arm re-run under the same
seeds, or two experiment drivers sharing a reference circuit all short-circuit
to the stored counts.  Entries are immutable snapshots (counts dicts are
copied on the way in and out), the store is a bounded LRU, and every lookup
updates the hit/miss counters that the service and the evalsuite surface in
their reports.

Executions with ``seed=None`` are inherently non-reproducible and are never
cached (they would poison determinism guarantees).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel
from repro.utils.rng import stable_hash

#: Default number of distinct executions retained by a :class:`ResultCache`.
DEFAULT_CACHE_SIZE = 512


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit's executable structure.

    Covers register widths and the full instruction stream (names, qubits,
    clbits, parameters, conditions) — everything the simulator reads.  Circuit
    names and metadata are deliberately excluded: two identically-built
    circuits with different labels are the same execution.
    """
    payload = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits, inst.params, inst.condition)
            for inst in circuit
        ),
    )
    return f"{stable_hash('circuit', payload):016x}"


def noise_fingerprint(noise: NoiseModel | None) -> str:
    """Stable content hash of a noise model (``'ideal'`` for no noise)."""
    if noise is None or noise.is_trivial:
        return "ideal"
    return noise.fingerprint()


@dataclass(frozen=True)
class CacheKey:
    """The full identity of one deterministic circuit execution."""

    circuit: str
    backend: str
    shots: int
    seed: int
    noise: str
    memory: bool


@dataclass
class CacheStats:
    """Hit/miss counters; snapshots are cheap value copies."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return CacheStats(self.hits - earlier.hits, self.misses - earlier.misses)

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


class ResultCache:
    """Thread-safe bounded LRU of ``(counts, memory)`` execution outcomes."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._store: OrderedDict[
            CacheKey, tuple[dict[str, int], list[str] | None]
        ] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(self, key: CacheKey) -> tuple[dict[str, int], list[str] | None] | None:
        """Look up one execution; counts towards hit/miss statistics."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._store.move_to_end(key)
            self.stats.hits += 1
            counts, mem = entry
            return dict(counts), (list(mem) if mem is not None else None)

    def put(
        self, key: CacheKey, counts: dict[str, int], memory: list[str] | None
    ) -> None:
        with self._lock:
            self._store[key] = (dict(counts), list(memory) if memory else memory)
            self._store.move_to_end(key)
            while len(self._store) > self.maxsize:
                self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()

    def __repr__(self) -> str:
        return f"ResultCache(size={len(self)}/{self.maxsize}, {self.stats!r})"
