"""Content-addressed result cache for circuit execution.

Execution results are keyed by everything that determines them:

    (circuit fingerprint, backend name, shots, seed, noise fingerprint, memory)

so a cache hit is *exactly* a repeated simulation — the multi-pass refinement
loop re-grading an unchanged program, an evalsuite arm re-run under the same
seeds, or two experiment drivers sharing a reference circuit all short-circuit
to the stored counts.  Entries are immutable snapshots (counts dicts are
copied on the way in and out), the store is a bounded LRU, and every lookup
updates the hit/miss counters that the service and the evalsuite surface in
their reports.

The LRU may be layered over a persistent
:class:`~repro.quantum.execution.disk_cache.DiskResultCache` tier and a
shared :class:`~repro.quantum.execution.remote_cache.RemoteResultCache`
tier: lookups that miss in memory consult the disk store, then the remote
server, promote what they find into every faster tier, and count as hits
(``CacheStats.disk_hits`` / ``remote_hits`` track the serving tier); every
``put`` writes through to all tiers.  The disk tier is what makes report
regeneration and CI warm-started across process restarts; the remote tier is
what lets a fleet of workers on different machines share one warm store.

Executions with ``seed=None`` are inherently non-reproducible and are never
cached (they would poison determinism guarantees).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution.disk_cache import DiskResultCache
from repro.quantum.execution.remote_cache import RemoteResultCache
from repro.quantum.execution.scopes import StatsScope, credit
from repro.quantum.noise import NoiseModel
from repro.utils.rng import stable_hash

#: Default number of distinct executions retained by a :class:`ResultCache`.
DEFAULT_CACHE_SIZE = 512


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable content hash of a circuit's executable structure.

    Covers register widths and the full instruction stream (names, qubits,
    clbits, parameters, conditions) — everything the simulator reads.  Circuit
    names and metadata are deliberately excluded: two identically-built
    circuits with different labels are the same execution.

    Circuits produced by :meth:`QuantumCircuit.bind` take a fast path: their
    identity is ``(template structure, binding vector)``, so an N-point sweep
    hashes the instruction stream once (on the template) and each point costs
    only a digest over its values.  The binding vector is exactly what
    distinguishes two sweep points, so the result-cache key still separates
    them; a bound circuit and an identically-built concrete circuit may carry
    different fingerprints (two cache keys for one execution — harmless,
    since results are deterministic under the seed either way).
    """
    provenance = getattr(circuit, "_bound_from", None)
    if provenance is not None and provenance.matches(circuit):
        template_fp = circuit_fingerprint(provenance.template)
        return (
            f"{stable_hash('bound-circuit', template_fp, provenance.values):016x}"
        )
    size = len(circuit._instructions)
    memo = getattr(circuit, "_circuit_fp_memo", None)
    if memo is not None and memo[0] == size:
        return memo[1]
    payload = (
        circuit.num_qubits,
        circuit.num_clbits,
        tuple(
            (inst.name, inst.qubits, inst.clbits, inst.params, inst.condition)
            for inst in circuit
        ),
    )
    fp = f"{stable_hash('circuit', payload):016x}"
    circuit._circuit_fp_memo = (size, fp)
    return fp


def noise_fingerprint(noise: NoiseModel | None) -> str:
    """Stable content hash of a noise model (``'ideal'`` for no noise)."""
    if noise is None or noise.is_trivial:
        return "ideal"
    return noise.fingerprint()


@dataclass(frozen=True)
class CacheKey:
    """The full identity of one deterministic circuit execution."""

    circuit: str
    backend: str
    shots: int
    seed: int
    noise: str
    memory: bool


@dataclass
class CacheStats:
    """Hit/miss counters shared across cache tiers; snapshots are cheap copies.

    ``disk_hits`` counts the subset of ``hits`` that were served from the
    persistent tier (and promoted back into the in-memory LRU);
    ``remote_hits`` the subset downloaded from a shared cache server (and
    promoted into both local tiers).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    remote_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.disk_hits, self.remote_hits)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since an ``earlier`` snapshot."""
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.disk_hits - earlier.disk_hits,
            self.remote_hits - earlier.remote_hits,
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"disk_hits={self.disk_hits}, remote_hits={self.remote_hits}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


class ResultCache:
    """Thread-safe bounded LRU of ``(counts, memory)`` execution outcomes.

    When constructed with a ``disk`` and/or ``remote`` tier, in-memory
    misses fall through to the persistent store, then to the shared cache
    server (promoting what they find into every faster tier), and writes go
    to all tiers.  One :class:`CacheStats` object covers the layered whole.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_CACHE_SIZE,
        disk: DiskResultCache | None = None,
        remote: RemoteResultCache | None = None,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.disk = disk
        self.remote = remote
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._store: OrderedDict[
            CacheKey, tuple[dict[str, int], list[str] | None]
        ] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def get(
        self,
        key: CacheKey,
        scopes: tuple[StatsScope, ...] = (),
    ) -> tuple[dict[str, int], list[str] | None] | None:
        """Look up one execution; counts towards hit/miss statistics.

        ``scopes`` are the :class:`~repro.quantum.execution.scopes.StatsScope`
        sinks this lookup is attributable to — they receive the same hit/miss
        increments as the global counters, which is what makes per-caller
        stats exact under concurrency.
        """
        entry = self._lookup(key)
        with self._lock:
            if entry is None:
                self.stats.misses += 1
                credit(scopes, "cache_misses")
                return None
            self.stats.hits += 1
            credit(scopes, "cache_hits")
            if entry[2] == "disk":
                self.stats.disk_hits += 1
                credit(scopes, "cache_disk_hits")
            elif entry[2] == "remote":
                self.stats.remote_hits += 1
                credit(scopes, "cache_remote_hits")
        counts, mem, _tier = entry
        return dict(counts), (list(mem) if mem is not None else None)

    def peek(self, key: CacheKey) -> tuple[dict[str, int], list[str] | None] | None:
        """Like :meth:`get` but without touching the hit/miss counters.

        Used by the service's single-flight path to re-probe for a
        concurrently-filled entry without double-counting the lookup that was
        already recorded at submit time.
        """
        entry = self._lookup(key)
        if entry is None:
            return None
        counts, mem, _tier = entry
        return dict(counts), (list(mem) if mem is not None else None)

    def _lookup(
        self, key: CacheKey
    ) -> tuple[dict[str, int], list[str] | None, str] | None:
        """Memory tier first, then disk, then remote (each hit promotes into
        every faster tier); no stats accounting.  The third element names the
        serving tier: ``"memory"``, ``"disk"``, or ``"remote"``."""
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store.move_to_end(key)
                return entry[0], entry[1], "memory"
        if self.disk is not None:
            persisted = self.disk.get(key)  # file I/O outside the lock
            if persisted is not None:
                counts, mem = persisted
                with self._lock:
                    self._insert(key, counts, mem)
                return counts, mem, "disk"
        if self.remote is not None:
            downloaded = self.remote.get(key)  # network I/O outside the lock
            if downloaded is not None:
                counts, mem = downloaded
                with self._lock:
                    self._insert(key, counts, mem)
                if self.disk is not None:
                    self.disk.put(key, counts, mem)
                return counts, mem, "remote"
        return None

    def put(
        self,
        key: CacheKey,
        counts: dict[str, int],
        memory: list[str] | None,
        scopes: tuple[StatsScope, ...] = (),
    ) -> None:
        with self._lock:
            self._insert(key, counts, memory)
        if self.disk is not None:
            # Disk-tier evictions are attributable to the write that pushed
            # the store over its budget, i.e. to this caller's scopes.
            credit(scopes, "cache_evictions", self.disk.put(key, counts, memory))
        if self.remote is not None:
            self.remote.put(key, counts, memory)

    def _insert(
        self, key: CacheKey, counts: dict[str, int], memory: list[str] | None
    ) -> None:
        # Defensive copies on the way in: `memory == []` must store a fresh
        # list too, never alias the caller's own object.
        self._store[key] = (
            dict(counts),
            list(memory) if memory is not None else None,
        )
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all *local* entries (memory + disk) and reset the counters.

        The remote tier is deliberately left untouched: it is a store shared
        by a whole fleet, and one worker resetting its local state must not
        cold-start everyone else (``repro cache-server`` owns its own
        directory and can be cleared there).
        """
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()
        if self.disk is not None:
            self.disk.clear()

    def _reset_for_child(self) -> None:
        """Replace locks after ``fork()``: another thread of the parent may
        have held them at fork time, which would deadlock the child.  The
        stored entries are kept — an inherited warm cache is the point of
        forking eval workers."""
        self._lock = threading.Lock()
        if self.disk is not None:
            self.disk._reset_for_child()

    def __repr__(self) -> str:
        disk = f", disk={self.disk!r}" if self.disk is not None else ""
        remote = f", remote={self.remote!r}" if self.remote is not None else ""
        return (
            f"ResultCache(size={len(self)}/{self.maxsize}, "
            f"{self.stats!r}{disk}{remote})"
        )
