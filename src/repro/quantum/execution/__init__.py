"""``repro.quantum.execution`` — the unified circuit-execution subsystem.

The cooperating pieces (see the per-module docstrings for detail):

* :mod:`~repro.quantum.execution.registry` — a :class:`BackendProvider`
  registry of named, lazily-constructed backends
  (``get_backend("fake_brisbane")``, ``register_backend(...)``, aliases);
* :mod:`~repro.quantum.execution.service` — the :class:`ExecutionService`
  worker pool that accepts batched submissions and returns async
  :class:`ExecutionJob` handles (``QUEUED -> RUNNING -> DONE/ERROR``), with
  a pluggable ``executor="thread"|"process"|"batch"`` strategy (``batch``
  groups compatible misses onto the vectorised engine in
  :mod:`repro.quantum.batchsim`) and single-flight deduplication of
  concurrent identical executions;
* :mod:`~repro.quantum.execution.cache` — a content-addressed
  :class:`ResultCache` keyed by circuit/backend/shots/seed/noise fingerprints,
  with hit/miss counters surfaced through ``service.stats()``;
* :mod:`~repro.quantum.execution.disk_cache` — the persistent
  :class:`DiskResultCache` tier (``ExecutionService(cache_dir=...)`` /
  ``REPRO_CACHE_DIR``) that warm-starts repeated work across processes,
  bounded by a :class:`CacheLimits` retention policy
  (``cache_limits=...`` / ``REPRO_CACHE_MAX_BYTES``, enforced on every
  write and via ``repro cache --prune``);
* :mod:`~repro.quantum.execution.remote_cache` — the shared HTTP tier: a
  stdlib :class:`CacheServer` (``repro cache-server``) plus the
  :class:`RemoteResultCache` client (``ExecutionService(remote_url=...)`` /
  ``REPRO_CACHE_URL``) that lets a fleet of workers on different machines
  share one warm store;
* :mod:`~repro.quantum.execution.dispatch` — distributed work dispatch over
  the same transport: a lease-based :class:`WorkQueue`, the
  :class:`EvalCoordinator` (``repro eval-server`` — cache + work endpoints on
  one port, one shared token) and the :func:`run_worker` loop behind ``repro
  eval-worker``, which ship the eval engine's picklable episode chunks to
  remote machines with results bit-identical to the serial runner;
* :mod:`~repro.quantum.execution.tenants` — multi-tenant admission
  control for the serving tier: per-tenant API keys (``tenants.json`` /
  ``--tenant-file``), token-bucket rate limits, byte/simulation quotas,
  and fair-share priorities that become :class:`WorkQueue` lane weights;
* :mod:`~repro.quantum.execution.jobstore` — the :class:`JobStore`
  persisting queued coordinator work as atomic JSON-per-job records, so
  a killed coordinator restarts and resumes bit-identically;
* :mod:`~repro.quantum.execution.metrics` — Prometheus text rendering
  behind the servers' ``GET /metrics`` endpoint (every ``stats()``
  counter plus per-tenant request/throttle/eviction counts);
* :mod:`~repro.quantum.execution.transpile_cache` — content addressing for
  the cached transpile stage: ``service.transpile(...)`` keys transpiled
  circuits by (circuit, coupling, basis, layout, level) fingerprints and
  stores them through the same three cache tiers, so a fleet transpiles each
  logical circuit once, ever;
* :mod:`~repro.quantum.execution.pool` — picklable :class:`WorkUnit`\\ s and
  the child-process worker behind the process executor;
* :mod:`~repro.quantum.execution.scopes` — attributable per-caller counters:
  ``with service.stats_scope() as scope:`` captures exactly the work a block
  initiated (sync or async), so concurrent users — e.g. two evaluation arms —
  get exact, non-overlapping execution stats.

Quickstart::

    from repro.quantum import QuantumCircuit
    from repro.quantum.execution import default_service, get_backend

    backend = get_backend("brisbane")            # alias of fake_brisbane
    job = default_service().submit([qc1, qc2], backend=backend, shots=1024, seed=7)
    counts = job.result(timeout=30).get_counts(0)

``Backend.run`` remains available and now delegates here, so legacy call
sites transparently share the same cache and counters.
"""

from repro.quantum.execution.cache import (
    CacheKey,
    CacheStats,
    ResultCache,
    circuit_fingerprint,
    noise_fingerprint,
)
from repro.quantum.execution.disk_cache import CacheLimits, DiskResultCache
from repro.quantum.execution.dispatch import (
    DispatchClient,
    EvalCoordinator,
    WorkQueue,
    run_worker,
)
from repro.quantum.execution.jobs import ExecutionJob, JobStatus
from repro.quantum.execution.jobstore import JobStore
from repro.quantum.execution.metrics import METRICS_CONTENT_TYPE, serving_metrics
from repro.quantum.execution.pool import EXECUTOR_KINDS, WorkUnit, run_work_unit
from repro.quantum.execution.remote_cache import (
    CACHE_TOKEN_ENV,
    CacheServer,
    RemoteResultCache,
)
from repro.quantum.execution.registry import (
    BackendProvider,
    get_backend,
    list_backends,
    provider,
    register_backend,
    resolve_backend,
)
from repro.quantum.execution.scopes import (
    StatsScope,
    stats_scope,
    use_scope,
)
from repro.quantum.execution.tenants import (
    TENANT_FILE_ENV,
    Tenant,
    TenantRegistry,
    TokenBucket,
    load_tenants,
)
from repro.quantum.execution.transpile_cache import (
    basis_fingerprint,
    coupling_fingerprint,
    transpile_cache_key,
)
from repro.quantum.execution.service import (
    VALIDATE_ENV,
    VALIDATE_MODES,
    ExecutionService,
    ambient_seed,
    default_service,
    execute,
    executor_from_env,
    set_default_service,
    validate_from_env,
)

__all__ = [
    "BackendProvider",
    "CACHE_TOKEN_ENV",
    "CacheKey",
    "CacheLimits",
    "CacheServer",
    "DispatchClient",
    "EvalCoordinator",
    "ambient_seed",
    "CacheStats",
    "DiskResultCache",
    "RemoteResultCache",
    "EXECUTOR_KINDS",
    "ExecutionJob",
    "ExecutionService",
    "JobStatus",
    "JobStore",
    "METRICS_CONTENT_TYPE",
    "TENANT_FILE_ENV",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "load_tenants",
    "serving_metrics",
    "ResultCache",
    "StatsScope",
    "stats_scope",
    "use_scope",
    "VALIDATE_ENV",
    "VALIDATE_MODES",
    "WorkQueue",
    "WorkUnit",
    "run_worker",
    "run_work_unit",
    "basis_fingerprint",
    "circuit_fingerprint",
    "coupling_fingerprint",
    "transpile_cache_key",
    "default_service",
    "execute",
    "executor_from_env",
    "get_backend",
    "list_backends",
    "noise_fingerprint",
    "provider",
    "register_backend",
    "resolve_backend",
    "set_default_service",
    "validate_from_env",
]
