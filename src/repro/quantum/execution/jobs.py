"""Job lifecycle for asynchronous circuit execution.

An :class:`ExecutionJob` is the handle returned by
:meth:`~repro.quantum.execution.service.ExecutionService.submit`: it tracks a
batch of circuits through ``QUEUED -> RUNNING -> DONE`` (or ``ERROR`` /
``CANCELLED``), exposes a blocking :meth:`ExecutionJob.result` with an
optional timeout, and supports best-effort cancellation of work that has not
started.  Jobs are also constructed already-finished by the synchronous
compatibility path (``Backend.run``), so every consumer sees one uniform
job/result surface regardless of how the execution was scheduled.
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum

from repro.errors import BackendError
from repro.quantum.backend import Result

_job_ids = itertools.count(1)


def next_job_id() -> str:
    """Monotonically increasing process-unique job identifier."""
    return f"exec-{next(_job_ids):06d}"


class JobStatus(str, Enum):
    """Lifecycle states of an :class:`ExecutionJob`."""

    QUEUED = "QUEUED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    ERROR = "ERROR"
    CANCELLED = "CANCELLED"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.ERROR, JobStatus.CANCELLED)


class ExecutionJob:
    """Handle on one batched submission to the :class:`ExecutionService`.

    The service owns the state transitions; consumers only read ``status()``,
    block on ``result()`` and may request ``cancel()``.
    """

    def __init__(
        self,
        job_id: str | None = None,
        num_circuits: int = 1,
        backend_name: str = "?",
    ) -> None:
        self.job_id = job_id or next_job_id()
        self.num_circuits = num_circuits
        self.backend_name = backend_name
        #: Circuit indices served straight from the result cache.
        self.cache_hits: int = 0
        #: Circuit indices whose simulation was deduplicated by the service's
        #: single-flight path (an identical execution was already in flight;
        #: this job read its cache fill instead of re-simulating).
        self.deduped: int = 0
        self._status = JobStatus.QUEUED
        self._result: Result | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._finished = threading.Event()

    # -- consumer surface ---------------------------------------------------------

    def status(self) -> JobStatus:
        return self._status

    def done(self) -> bool:
        return self._status.is_terminal

    def cancelled(self) -> bool:
        return self._status is JobStatus.CANCELLED

    def error(self) -> BaseException | None:
        """The exception that failed the job, when ``status() == ERROR``."""
        return self._error

    def result(self, timeout: float | None = None) -> Result:
        """Block until the job finishes and return its :class:`Result`.

        Raises:
            BackendError: on timeout or cancellation.
            Exception: re-raises the original failure for ``ERROR`` jobs.
        """
        if not self._finished.wait(timeout):
            raise BackendError(
                f"job '{self.job_id}' did not finish within {timeout}s "
                f"(status {self._status.value})"
            )
        if self._status is JobStatus.CANCELLED:
            raise BackendError(f"job '{self.job_id}' was cancelled")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or timeout); returns ``done()``."""
        self._finished.wait(timeout)
        return self.done()

    def cancel(self) -> bool:
        """Cancel the job; succeeds only if execution has not started."""
        with self._lock:
            if self._status is JobStatus.QUEUED:
                self._finish(JobStatus.CANCELLED)
                return True
            return self._status is JobStatus.CANCELLED

    # -- service-side transitions ---------------------------------------------------

    def _mark_running(self) -> bool:
        """QUEUED -> RUNNING; returns False when cancellation won the race."""
        with self._lock:
            if self._status is JobStatus.QUEUED:
                self._status = JobStatus.RUNNING
            return self._status is JobStatus.RUNNING

    def _mark_done(self, result: Result) -> None:
        with self._lock:
            self._result = result
            self._finish(JobStatus.DONE)

    def _mark_error(self, exc: BaseException) -> None:
        with self._lock:
            self._error = exc
            self._finish(JobStatus.ERROR)

    def _mark_cancelled(self) -> None:
        with self._lock:
            self._finish(JobStatus.CANCELLED)

    def _finish(self, status: JobStatus) -> None:
        if not self._status.is_terminal:
            self._status = status
        self._finished.set()

    def __repr__(self) -> str:
        return (
            f"ExecutionJob(id='{self.job_id}', backend='{self.backend_name}', "
            f"circuits={self.num_circuits}, status={self._status.value})"
        )
