"""Multi-tenant admission control for the serving tier.

The fleet transport (:mod:`repro.quantum.execution.remote_cache`,
:mod:`repro.quantum.execution.dispatch`) historically authenticated one
trusted caller with a single shared bearer token.  This module adds the
per-tenant layer on top:

* :class:`Tenant` — one API key plus its rate limit, quotas, fair-share
  priority, and usage counters.
* :class:`TokenBucket` — the classic token-bucket limiter on an
  injectable monotonic clock, so throttle edges are testable without
  sleeping.
* :class:`TenantRegistry` — loads a ``tenants.json`` file, authenticates
  ``Authorization`` headers in constant time over *all* keys, and
  serialises every counter mutation behind one lock so HTTP handler
  threads can charge quotas concurrently.

The registry never raises on admission decisions — it answers them — so
the HTTP handlers own the status codes (``401`` unknown key, ``429``
throttled or over quota).
"""

from __future__ import annotations

import hmac
import json
import math
import re
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "TENANT_FILE_ENV",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "load_tenants",
]

# Environment fallback for --tenant-file, mirroring REPRO_CACHE_TOKEN.
TENANT_FILE_ENV = "REPRO_TENANT_FILE"

# Tenant names become scheduler lane keys and Prometheus label values, so
# they are restricted to characters that need no escaping in either.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

# Fields accepted per tenant entry in tenants.json.  Unknown fields are a
# hard error: a typo like "max_byte" silently granting unlimited quota is
# exactly the kind of misconfiguration a serving tier must refuse.
_KNOWN_FIELDS = frozenset(
    {"name", "key", "rate_per_sec", "burst", "priority", "max_bytes", "max_chunks"}
)


class TokenBucket:
    """Token-bucket rate limiter with an injectable monotonic clock.

    The bucket starts full (``burst`` tokens) and refills continuously at
    ``rate`` tokens per second.  :meth:`try_acquire` admits a request when
    at least ``cost`` tokens are available — *exactly* at the boundary
    counts as available — and otherwise returns the number of seconds
    until the deficit refills, suitable for a ``Retry-After`` header.

    The bucket itself is not thread-safe; :class:`TenantRegistry` wraps
    every call in its own lock.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not rate > 0.0:
            raise ValueError(f"token bucket rate must be > 0, got {rate!r}")
        if not burst >= 1.0:
            raise ValueError(f"token bucket burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; return 0.0 if admitted, else seconds to wait."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate

    def peek(self) -> float:
        """Current token balance (after refill), for stats/metrics."""
        self._refill()
        return self._tokens


class Tenant:
    """One API-key principal: identity, limits, and usage counters.

    ``rate_per_sec=None`` disables rate limiting, ``max_bytes=None`` /
    ``max_chunks=None`` disable the respective quota.  ``priority`` is the
    fair-share weight of this tenant's scheduler lane: a priority-3 lane
    is offered up to three chunks per round-robin turn.
    """

    def __init__(
        self,
        name: str,
        key: str,
        *,
        rate_per_sec: float | None = None,
        burst: float | None = None,
        priority: int = 1,
        max_bytes: int | None = None,
        max_chunks: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not _NAME_RE.match(name or ""):
            raise ValueError(
                f"tenant name {name!r} must match {_NAME_RE.pattern}"
            )
        if not isinstance(key, str) or not key:
            raise ValueError(f"tenant {name!r} needs a non-empty string key")
        if priority < 1:
            raise ValueError(f"tenant {name!r} priority must be >= 1, got {priority}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"tenant {name!r} max_bytes must be >= 0")
        if max_chunks is not None and max_chunks < 0:
            raise ValueError(f"tenant {name!r} max_chunks must be >= 0")
        self.name = name
        self.key = key
        self.priority = int(priority)
        self.max_bytes = max_bytes
        self.max_chunks = max_chunks
        self.bucket: TokenBucket | None = None
        if rate_per_sec is not None:
            self.bucket = TokenBucket(
                rate_per_sec,
                burst if burst is not None else max(rate_per_sec, 1.0),
                clock=clock,
            )
        elif burst is not None:
            raise ValueError(f"tenant {name!r} sets burst without rate_per_sec")
        # Usage counters, mutated only under the registry lock.
        self.requests = 0
        self.throttled = 0
        self.quota_denials = 0
        self.bytes_used = 0
        self.chunks_used = 0
        self.evictions = 0

    def snapshot(self) -> dict:
        """Counter snapshot for /stats and /metrics (call via the registry)."""
        return {
            "name": self.name,
            "priority": self.priority,
            "requests": self.requests,
            "throttled": self.throttled,
            "quota_denials": self.quota_denials,
            "bytes_used": self.bytes_used,
            "chunks_used": self.chunks_used,
            "evictions": self.evictions,
            "max_bytes": self.max_bytes,
            "max_chunks": self.max_chunks,
        }


def _parse_tenant(entry: Mapping, clock: Callable[[], float]) -> Tenant:
    if not isinstance(entry, Mapping):
        raise ValueError(f"tenant entry must be an object, got {type(entry).__name__}")
    unknown = set(entry) - _KNOWN_FIELDS
    if unknown:
        raise ValueError(
            f"tenant entry has unknown fields {sorted(unknown)}; "
            f"known fields are {sorted(_KNOWN_FIELDS)}"
        )
    rate = entry.get("rate_per_sec")
    burst = entry.get("burst")
    return Tenant(
        str(entry.get("name", "")),
        entry.get("key", ""),
        rate_per_sec=float(rate) if rate is not None else None,
        burst=float(burst) if burst is not None else None,
        priority=int(entry.get("priority", 1)),
        max_bytes=int(entry["max_bytes"]) if entry.get("max_bytes") is not None else None,
        max_chunks=int(entry["max_chunks"]) if entry.get("max_chunks") is not None else None,
        clock=clock,
    )


class TenantRegistry:
    """Authenticates API keys and arbitrates per-tenant limits.

    One lock serialises every admission decision and counter update;
    handler threads call into the registry concurrently.  Authentication
    compares the supplied header against *every* tenant key with
    :func:`hmac.compare_digest` and never exits early, so timing does not
    reveal which (if any) key prefix matched.
    """

    def __init__(
        self,
        tenants: Iterable[Tenant],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._tenants: list[Tenant] = list(tenants)
        self._clock = clock
        self._lock = threading.Lock()
        names = [t.name for t in self._tenants]
        keys = [t.key for t in self._tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in registry: {sorted(names)}")
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate tenant API keys in registry")
        # Precomputed expected Authorization header bytes per tenant.
        self._expected = [
            (t, f"Bearer {t.key}".encode("utf-8", "surrogateescape"))
            for t in self._tenants
        ]

    @classmethod
    def from_file(
        cls, path: str | Path, clock: Callable[[], float] = time.monotonic
    ) -> "TenantRegistry":
        """Load ``tenants.json``: ``{"tenants": [...]}`` or a bare list."""
        raw = Path(path).read_text(encoding="utf-8")
        try:
            document = json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"tenant file {path} is not valid JSON: {exc}") from exc
        if isinstance(document, Mapping):
            entries = document.get("tenants")
        else:
            entries = document
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise ValueError(
                f"tenant file {path} must hold a list of tenant objects "
                '(top-level or under a "tenants" key)'
            )
        return cls((_parse_tenant(entry, clock) for entry in entries), clock=clock)

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> list[str]:
        return [t.name for t in self._tenants]

    def priorities(self) -> dict[str, int]:
        """Fair-share lane weights, keyed by tenant name."""
        return {t.name: t.priority for t in self._tenants}

    def authenticate(self, authorization: str) -> Tenant | None:
        """Match an ``Authorization`` header to a tenant, in constant time.

        Every registered key is compared regardless of earlier matches so
        the comparison count never depends on the supplied value.
        """
        supplied = (authorization or "").encode("utf-8", "surrogateescape")
        matched: Tenant | None = None
        for tenant, expected in self._expected:
            if hmac.compare_digest(supplied, expected):
                matched = tenant
        return matched

    # -- admission primitives (each takes the lock once) ------------------

    def count_request(self, tenant: Tenant) -> None:
        with self._lock:
            tenant.requests += 1

    def throttle(self, tenant: Tenant) -> float | None:
        """Charge one request against the tenant's rate limit.

        Returns ``None`` when admitted, otherwise the (ceil'd, >= 1)
        ``Retry-After`` seconds until a token is available.
        """
        with self._lock:
            if tenant.bucket is None:
                return None
            wait = tenant.bucket.try_acquire(1.0)
            if wait <= 0.0:
                return None
            tenant.throttled += 1
            return float(max(1, math.ceil(wait)))

    def charge_bytes(self, tenant: Tenant, nbytes: int) -> bool:
        """Charge an upload against the byte quota; False when exhausted."""
        with self._lock:
            if (
                tenant.max_bytes is not None
                and tenant.bytes_used + nbytes > tenant.max_bytes
            ):
                tenant.quota_denials += 1
                return False
            tenant.bytes_used += nbytes
            return True

    def try_charge_chunk(self, tenant: Tenant) -> bool:
        """Reserve one chunk lease against the chunk quota; False when spent."""
        with self._lock:
            if (
                tenant.max_chunks is not None
                and tenant.chunks_used + 1 > tenant.max_chunks
            ):
                tenant.quota_denials += 1
                return False
            tenant.chunks_used += 1
            return True

    def refund_chunk(self, tenant: Tenant) -> None:
        """Return a reserved chunk (the lease came back empty)."""
        with self._lock:
            if tenant.chunks_used > 0:
                tenant.chunks_used -= 1

    def credit_evictions(self, tenant: Tenant, count: int) -> None:
        """Attribute disk-cache evictions triggered by this tenant's upload."""
        if count <= 0:
            return
        with self._lock:
            tenant.evictions += count

    def snapshot(self) -> list[dict]:
        """Per-tenant counter snapshots, in registry order."""
        with self._lock:
            return [t.snapshot() for t in self._tenants]


def load_tenants(
    path: str | Path | None,
    clock: Callable[[], float] = time.monotonic,
) -> TenantRegistry | None:
    """Resolve a tenant registry from an explicit path or $REPRO_TENANT_FILE."""
    import os

    candidate = path or os.environ.get(TENANT_FILE_ENV) or None
    if not candidate:
        return None
    return TenantRegistry.from_file(candidate, clock=clock)
