"""Backend provider registry: named, lazily-constructed execution targets.

Call sites stop hard-coding ``FakeBrisbane()`` / ``LocalSimulator()`` and ask
the registry instead::

    from repro.quantum.execution import get_backend

    backend = get_backend("fake_brisbane")      # canonical name
    backend = get_backend("brisbane")           # alias
    backend = get_backend("ideal")              # alias of local_simulator

Backends are constructed on first lookup and memoised, so every consumer
shares one instance per name — which also makes the execution result cache
maximally effective (one backend name + one noise fingerprint).  New targets
register a zero-argument factory::

    register_backend("my_device", lambda: NoisySimulator(model), aliases=("mine",))

Unknown names raise :class:`~repro.errors.BackendError` listing close matches.
"""

from __future__ import annotations

import difflib
import threading
from typing import Callable

from repro.errors import BackendError
from repro.quantum.backend import (
    Backend,
    FakeBrisbane,
    FakeFalcon,
    LocalSimulator,
    NoisySimulator,
)
from repro.quantum.noise import NoiseModel

BackendFactory = Callable[[], Backend]


class BackendProvider:
    """A registry of named backend factories with aliases and lazy instances."""

    def __init__(self) -> None:
        self._factories: dict[str, BackendFactory] = {}
        self._aliases: dict[str, str] = {}
        self._instances: dict[str, Backend] = {}
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: BackendFactory | Backend,
        aliases: tuple[str, ...] | list[str] = (),
        overwrite: bool = False,
    ) -> None:
        """Register a factory (or a ready instance) under ``name`` + aliases.

        Registration is atomic: every name/alias conflict is checked before
        anything is written, so a rejected call leaves the registry unchanged.
        """
        canonical = self._normalize(name)
        alias_keys = [self._normalize(alias) for alias in aliases]
        with self._lock:
            if not overwrite and (
                canonical in self._factories or canonical in self._aliases
            ):
                raise BackendError(f"backend '{canonical}' is already registered")
            for alias_key in alias_keys:
                if (
                    not overwrite
                    and self._aliases.get(alias_key, canonical) != canonical
                ):
                    raise BackendError(
                        f"alias '{alias_key}' already points at "
                        f"'{self._aliases[alias_key]}'"
                    )
                if alias_key in self._factories:
                    raise BackendError(
                        f"alias '{alias_key}' collides with a registered backend"
                    )
            if isinstance(factory, Backend):
                instance = factory
                self._factories[canonical] = lambda: instance
                self._instances[canonical] = instance
            else:
                self._factories[canonical] = factory
                self._instances.pop(canonical, None)
            for alias_key in alias_keys:
                self._aliases[alias_key] = canonical

    def unregister(self, name: str) -> None:
        canonical = self.resolve_name(name)
        with self._lock:
            self._factories.pop(canonical, None)
            self._instances.pop(canonical, None)
            for alias in [a for a, t in self._aliases.items() if t == canonical]:
                del self._aliases[alias]

    # -- lookup ---------------------------------------------------------------------

    def resolve_name(self, name: str) -> str:
        """Canonical backend name for ``name`` (which may be an alias)."""
        key = self._normalize(name)
        with self._lock:
            if key in self._factories:
                return key
            if key in self._aliases:
                return self._aliases[key]
            candidates = sorted(set(self._factories) | set(self._aliases))
        suggestions = difflib.get_close_matches(key, candidates, n=3, cutoff=0.4)
        hint = f"; did you mean {suggestions}?" if suggestions else ""
        raise BackendError(
            f"unknown backend '{name}'; registered: {candidates}{hint}"
        )

    def get(self, name: str, fresh: bool = False) -> Backend:
        """The (memoised) backend instance for ``name``.

        ``fresh=True`` bypasses the memo and builds a new instance without
        storing it — for callers that intend to mutate the backend.
        """
        canonical = self.resolve_name(name)
        with self._lock:
            if fresh:
                return self._factories[canonical]()
            instance = self._instances.get(canonical)
            if instance is None:
                instance = self._factories[canonical]()
                self._instances[canonical] = instance
            return instance

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._factories)

    def aliases_of(self, name: str) -> list[str]:
        canonical = self.resolve_name(name)
        with self._lock:
            return sorted(a for a, t in self._aliases.items() if t == canonical)

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise BackendError(f"backend name must be a non-empty string, got {name!r}")
        return name.strip().lower()


def _default_noisy_simulator() -> Backend:
    """A generic noisy target: mid-range depolarizing + readout error."""
    return NoisySimulator(
        NoiseModel.uniform_depolarizing(p_1q=1e-3, p_2q=1e-2, p_readout=1e-2)
    )


def _builtin_provider() -> BackendProvider:
    provider = BackendProvider()
    provider.register(
        "local_simulator",
        LocalSimulator,
        aliases=("local", "ideal", "simulator", "statevector", "aer_simulator"),
    )
    provider.register(
        "fake_brisbane", FakeBrisbane, aliases=("brisbane", "ibm_brisbane")
    )
    provider.register("fake_falcon", FakeFalcon, aliases=("falcon",))
    provider.register("noisy_simulator", _default_noisy_simulator, aliases=("noisy",))
    return provider


#: The process-wide registry that `get_backend`/`register_backend` operate on.
_PROVIDER = _builtin_provider()


def provider() -> BackendProvider:
    """The process-wide :class:`BackendProvider`."""
    return _PROVIDER


def get_backend(name: str, fresh: bool = False) -> Backend:
    """Look up a backend by canonical name or alias (lazy, memoised)."""
    return _PROVIDER.get(name, fresh=fresh)


def register_backend(
    name: str,
    factory: BackendFactory | Backend,
    aliases: tuple[str, ...] | list[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a backend factory/instance on the process-wide registry."""
    _PROVIDER.register(name, factory, aliases=aliases, overwrite=overwrite)


def list_backends() -> list[str]:
    """Canonical names of every registered backend."""
    return _PROVIDER.names()


def resolve_backend(backend: Backend | str | None) -> Backend:
    """Coerce a backend argument: instance passes through, str hits the
    registry, ``None`` means the ideal local simulator."""
    if backend is None:
        return _PROVIDER.get("local_simulator")
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        return _PROVIDER.get(backend)
    raise BackendError(
        f"expected a Backend, backend name, or None; got {type(backend).__name__}"
    )
