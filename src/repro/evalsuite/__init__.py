"""Evaluation: graded task banks, runners, pass@k, reporting."""

from repro.evalsuite.passk import mean_pass_at_k, pass_at_k
from repro.evalsuite.qhe import build_qhe, qhe_cases
from repro.evalsuite.reporting import (
    accuracy_bars,
    comparison_table,
    execution_stats_table,
    per_family_table,
    progress_printer,
)
from repro.evalsuite.runner import (
    EvalResult,
    LocalChunkSource,
    PipelineSettings,
    RemoteChunkSource,
    TaskOutcome,
    distributed,
    evaluate,
    evaluate_many,
)
from repro.evalsuite.suite import Task, build_suite, build_task

__all__ = [
    "EvalResult",
    "LocalChunkSource",
    "PipelineSettings",
    "RemoteChunkSource",
    "Task",
    "TaskOutcome",
    "accuracy_bars",
    "build_qhe",
    "build_suite",
    "build_task",
    "comparison_table",
    "distributed",
    "evaluate",
    "evaluate_many",
    "execution_stats_table",
    "mean_pass_at_k",
    "pass_at_k",
    "per_family_table",
    "progress_printer",
    "qhe_cases",
]
