"""Evaluation engine: drive the pipeline over a task bank, in parallel.

``evaluate`` is the engine under Figure 3, Table I and the multi-pass sweep:
it runs one pipeline configuration over a bank, with ``samples_per_task``
seeds each, and returns per-task outcomes plus the aggregate metrics the
paper reports (overall accuracy, syntactic accuracy, per-tier breakdown,
pass@k).

**Parallelism.**  Every (task, sample) episode is independent: its seed is
derived from ``(base_seed, arm label, case id, sample index)`` alone, so
episodes can run in any order — or concurrently — and produce bit-identical
outcomes.  ``evaluate(..., workers=N)`` (or ``PipelineSettings.workers`` /
``REPRO_EVAL_WORKERS``) fans per-task chunks across a worker pool:
``fork``-based processes by default (the work is GIL-holding Python + numpy;
children inherit the warm in-memory execution cache), with transparent
fallback to threads and then to the inline serial loop.  ``evaluate_many``
extends the same fan-out across *independent arms*, which is how the
experiment drivers (Table I, Figure 3, the multi-pass sweep) run all their
arms concurrently.

**Exact stats attribution.**  Each chunk counts its execution-service
activity in its own :class:`~repro.quantum.execution.scopes.StatsScope` and
the engine sums the chunk scopes per arm, so ``EvalResult.execution_stats``
is exact even when arms overlap in time — the racy before/after diff of the
global ``service.stats()`` is gone.

**Distribution.**  The engine is agnostic about *where* chunks run: a
:class:`ChunkSource` maps ``_run_task_chunk`` over the ``(settings, task)``
calls, and one folding loop consumes the ordered results.
:class:`LocalChunkSource` is the in-process pool above;
:class:`RemoteChunkSource` ships the same picklable chunks to ``repro
eval-worker`` processes through an
:class:`~repro.quantum.execution.dispatch.EvalCoordinator`'s lease queue
(``evaluate(..., distribution="remote", coordinator=...)``, or ambient via
:func:`distributed`).  Chunk determinism makes the two paths — and any mix
of remote workers, local fallback, crashes and lease-expiry requeues —
bit-identical.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.semantic import SemanticAnalyzerAgent
from repro.evalsuite.passk import mean_pass_at_k
from repro.evalsuite.suite import Task
from repro.llm.faults import ModelConfig
from repro.llm.model import SimulatedCodeLLM
from repro.prompts.generator import ScaffoldGenerator
from repro.quantum.execution.scopes import (
    active_scopes,
    fold_counts,
    isolated_scopes,
    stats_scope,
)
from repro.quantum.transpiler import ambient_optimization_level
from repro.rag.retriever import Retriever
from repro.utils.parallel import parallel_map, resolve_workers
from repro.utils.rng import derive_seed
from repro.utils.stats import binomial_confidence_interval


@dataclass(frozen=True)
class PipelineSettings:
    """One experimental arm: a model config plus pipeline switches."""

    config: ModelConfig
    max_passes: int = 1
    semantic_feedback: bool = False
    samples_per_task: int = 4
    base_seed: int = 1234
    label: str | None = None
    #: Override the string used in per-sample seed derivation.  Arms that
    #: should see *paired* generations (e.g. the multi-pass sweep, where only
    #: the repair budget differs) share one seed_label.
    seed_label: str | None = None
    #: Worker-pool size for this arm's episodes; ``None`` falls back to the
    #: ``workers`` argument of :func:`evaluate`, then ``REPRO_EVAL_WORKERS``,
    #: then the serial default of 1.  Results are bit-identical for any N.
    workers: int | None = None
    #: Pin the transpiler optimization level for every transpile performed
    #: inside this arm's episodes (generated programs included, via the
    #: ambient level).  ``None`` leaves the pipeline's own default (level 1)
    #: in place.  Arms that differ only in level and share a ``seed_label``
    #: see *paired* generations, isolating what routing quality buys.
    optimization_level: int | None = None

    def display_label(self) -> str:
        if self.label:
            return self.label
        label = self.config.label()
        if self.max_passes > 1:
            label += f"+MP{self.max_passes}"
        if self.optimization_level is not None:
            label += f"+O{self.optimization_level}"
        return label

    def seed_scope(self) -> str:
        return self.seed_label if self.seed_label is not None else self.display_label()


@dataclass
class TaskOutcome:
    """All samples of one task under one arm."""

    case_id: str
    tier: str
    family: str
    samples: int
    syntactic_successes: int
    full_successes: int
    passes_used: list[int] = field(default_factory=list)
    #: Samples that ran clean but could not be graded semantically (no
    #: reference and no checker).  These are *included* in
    #: ``full_successes`` — the historical accuracy definition — but
    #: surfaced here so reports can show how much of an arm's accuracy is
    #: ungraded instead of silently folding it in.
    semantic_unknown: int = 0
    #: Samples rejected by static analysis (``QA1xx``): the model emitted an
    #: ill-formed circuit, caught without running a single simulation.  Kept
    #: apart from runtime errors — "wrote ill-formed code" and "code ran and
    #: answered wrong" are different failure modes — and never counted as
    #: syntactic or full successes.
    static_errors: int = 0


@dataclass
class EvalResult:
    """Aggregated evaluation of one arm over one bank."""

    label: str
    outcomes: list[TaskOutcome]
    #: ExecutionService activity attributable to this arm (simulations run,
    #: result-cache hits/misses) — exact under concurrency, see
    #: :func:`evaluate`.
    execution_stats: dict[str, int] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return len(self.outcomes)

    def accuracy(self) -> float:
        """Fraction of samples both syntactically and semantically valid."""
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.full_successes for o in self.outcomes)
        return good / total if total else 0.0

    def syntactic_accuracy(self) -> float:
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.syntactic_successes for o in self.outcomes)
        return good / total if total else 0.0

    def semantic_unknown_count(self) -> int:
        """Samples counted as successes without a semantic verdict."""
        return sum(o.semantic_unknown for o in self.outcomes)

    def static_error_count(self) -> int:
        """Samples statically rejected (``QA1xx``) before any simulation."""
        return sum(o.static_errors for o in self.outcomes)

    def semantic_unknown_rate(self) -> float:
        total = sum(o.samples for o in self.outcomes)
        return self.semantic_unknown_count() / total if total else 0.0

    def accuracy_by_tier(self) -> dict[str, float]:
        """Per-tier accuracy; tiers with zero samples get *no* entry.

        (They used to be masked to a fake ``0.0`` via ``max(1, total)``,
        which made an empty tier indistinguishable from an all-failing one.)
        """
        tiers: dict[str, list[TaskOutcome]] = {}
        for o in self.outcomes:
            tiers.setdefault(o.tier, []).append(o)
        accuracies: dict[str, float] = {}
        for tier, group in sorted(tiers.items()):
            samples = sum(o.samples for o in group)
            if samples:
                accuracies[tier] = (
                    sum(o.full_successes for o in group) / samples
                )
        return accuracies

    def pass_at_k(self, k: int = 1) -> float:
        return mean_pass_at_k(
            [(o.samples, o.full_successes) for o in self.outcomes], k
        )

    def confidence_interval(self) -> tuple[float, float]:
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.full_successes for o in self.outcomes)
        return binomial_confidence_interval(good, total)

    def mean_passes(self) -> float:
        passes = [p for o in self.outcomes for p in o.passes_used]
        return sum(passes) / len(passes) if passes else 0.0


def build_pipeline(settings: PipelineSettings) -> tuple[CodeGenerationAgent, SemanticAnalyzerAgent]:
    """Construct the two evaluation-relevant agents for one arm."""
    model = SimulatedCodeLLM(settings.config)
    retriever = None
    if settings.config.rag_docs or settings.config.rag_guides:
        datasets = tuple(
            name
            for name, enabled in (
                ("docs", settings.config.rag_docs),
                ("guides", settings.config.rag_guides),
            )
            if enabled
        )
        retriever = Retriever(datasets=datasets)
    codegen = CodeGenerationAgent(model, retriever=retriever, scaffolds=ScaffoldGenerator())
    return codegen, SemanticAnalyzerAgent()


# -- the chunked episode engine ---------------------------------------------------

#: Pipelines memoised per thread, keyed by arm settings: a worker process or
#: the serial caller reuses one pipeline for every chunk of an arm (matching
#: the historical one-pipeline-per-arm behaviour), while thread-pool workers
#: each get their own instances so no pipeline is shared across threads.
#: Thread-locality also means no lock, no cross-thread ident aliasing, and
#: nothing to repair after fork (the child's main thread inherits the
#: forking thread's warm cache).
_pipelines = threading.local()
_PIPELINE_CACHE_MAX = 16


def _cached_pipeline(
    settings: PipelineSettings,
) -> tuple[CodeGenerationAgent, SemanticAnalyzerAgent]:
    cache = getattr(_pipelines, "cache", None)
    if cache is None:
        cache = _pipelines.cache = {}
    pipeline = cache.get(settings)
    if pipeline is None:
        if len(cache) >= _PIPELINE_CACHE_MAX:
            cache.clear()
        pipeline = cache[settings] = build_pipeline(settings)
    return pipeline


def _run_task_chunk(settings: PipelineSettings, task: Task) -> tuple:
    """All samples of one task under one arm; the unit of parallel work.

    Deterministic given ``(settings, task)`` — every episode seed is derived
    from stable identifiers, the sandbox pins its ambient seed, and grading
    uses a fixed seed — so the engine is free to run chunks in any order, on
    any thread, or in any worker process and still produce outcomes
    bit-identical to the serial loop.  Returns plain picklable data:
    ``(syntactic, full, semantic_unknown, static_errors, passes_used,
    stats_dict)``.

    The chunk runs with the ambient scope stack *isolated*: whether it
    executes on the calling thread, a pool thread, or a forked worker, any
    scopes of the surrounding caller see nothing directly — the engine
    merges the returned stats into them explicitly, identically in every
    mode.
    """
    codegen, analyzer = _cached_pipeline(settings)
    with (
        isolated_scopes(),
        stats_scope(settings.display_label()) as scope,
        ambient_optimization_level(settings.optimization_level),
    ):
        syntactic = 0
        full = 0
        semantic_unknown = 0
        static_errors = 0
        passes_used: list[int] = []
        for sample in range(settings.samples_per_task):
            seed = derive_seed(
                settings.base_seed, settings.seed_scope(), task.case_id, sample
            )
            request = GenerationRequest(
                prompt_text=task.case.text,
                params=dict(task.case.params),
                seed=seed,
            )
            completion, _rendered = codegen.generate(request)
            refinement = analyzer.refine(
                codegen,
                request,
                completion,
                reference_code=task.reference_code,
                checker=task.checker,
                max_passes=settings.max_passes,
                semantic_feedback=settings.semantic_feedback,
            )
            report = refinement.report
            if report.static_error:
                static_errors += 1
            if report.syntactic_ok:
                syntactic += 1
            if report.syntactic_ok and report.semantic_ok is not False:
                full += 1
                if report.semantic_ok is None:
                    semantic_unknown += 1
            passes_used.append(refinement.passes_used)
    return (
        syntactic,
        full,
        semantic_unknown,
        static_errors,
        passes_used,
        scope.as_dict(),
    )


# -- where chunks run: the ChunkSource abstraction ---------------------------------


@dataclass
class LocalChunkSource:
    """Run chunks on the in-process pool (fork → threads → inline serial)."""

    workers: int = 1

    def map(self, fn, calls, on_result=None) -> list:
        return parallel_map(fn, calls, self.workers, on_result=on_result)


class RemoteChunkSource:
    """Run chunks through an :class:`~repro.quantum.execution.dispatch.
    EvalCoordinator`'s lease queue: remote ``repro eval-worker`` processes
    execute them (the coordinator's local fork pool takes over when none
    attach), and results fold back in input order.

    A payload that does not pickle (e.g. a task carrying a closure checker)
    downgrades the whole run to the local thread pool — the same rule
    :func:`~repro.utils.parallel.parallel_map` applies to its process pool —
    so remote distribution never changes *whether* an evaluation succeeds,
    only where it runs.
    """

    def __init__(self, coordinator, workers: int = 1) -> None:
        self.coordinator = coordinator
        self.workers = workers

    def map(self, fn, calls, on_result=None) -> list:
        from repro.quantum.execution.dispatch import encode_chunk

        try:
            payloads = [encode_chunk(fn, args) for args in calls]
        except Exception:  # noqa: BLE001 - any pickling failure → run locally
            return parallel_map(
                fn, calls, self.workers, on_result=on_result, prefer="thread"
            )
        return self.coordinator.run_chunks(payloads, on_result=on_result)


_distribution = threading.local()


@contextmanager
def distributed(coordinator):
    """Route this thread's ``evaluate``/``evaluate_many`` calls through a
    coordinator (``repro report --distributed`` wraps the whole experiment
    sweep in one of these, so every driver distributes without new plumbing).
    """
    previous = getattr(_distribution, "coordinator", None)
    _distribution.coordinator = coordinator
    try:
        yield coordinator
    finally:
        _distribution.coordinator = previous


def ambient_coordinator():
    """The coordinator installed by :func:`distributed` on this thread."""
    return getattr(_distribution, "coordinator", None)


def _resolve_chunk_source(
    distribution: str | None, coordinator, workers: int
):
    if coordinator is None and distribution in (None, "remote"):
        coordinator = ambient_coordinator()
    if distribution is None:
        distribution = "remote" if coordinator is not None else "local"
    if distribution == "local":
        return LocalChunkSource(workers)
    if distribution == "remote":
        if coordinator is None:
            raise ValueError(
                "distribution='remote' needs a coordinator: pass one, or "
                "wrap the call in `with distributed(coordinator):`"
            )
        return RemoteChunkSource(coordinator, workers)
    raise ValueError(
        f"distribution must be 'local' or 'remote', got {distribution!r}"
    )


def evaluate_many(
    settings_list: list[PipelineSettings],
    tasks: list[Task],
    workers: int | None = None,
    progress=None,
    distribution: str | None = None,
    coordinator=None,
) -> list[EvalResult]:
    """Run several independent arms over one bank, sharing a worker pool.

    All (arm, task) chunks fan out together, so a multi-arm experiment keeps
    every worker busy even while one arm's last task drains.  ``workers``
    falls back to the largest per-arm ``PipelineSettings.workers``, then
    ``REPRO_EVAL_WORKERS``, then 1 (inline serial execution — the reference
    the parallel paths are bit-identical to).  ``progress(done, total)`` is
    called as chunks complete.

    ``distribution="remote"`` (or just passing/ambiently installing a
    ``coordinator``) leases the identical chunks to remote eval workers via
    the dispatch protocol instead; one folding loop consumes either source,
    so outcomes and per-arm stats stay bit-identical to the serial run for
    any worker topology — including crashed workers and expired leases,
    which merely re-run a deterministic chunk.

    Per-arm ``execution_stats`` are the sum of the per-chunk stats scopes:
    exact and non-overlapping even though the arms run concurrently.  Any
    scopes ambient on the *calling* thread receive the same totals (via an
    explicit merge — chunks run scope-isolated), so ``with
    service.stats_scope() as s: evaluate(...)`` observes identical numbers
    whether the episodes ran inline, on threads, in worker processes, or on
    another host.
    """
    arms = list(settings_list)
    caller_scopes = active_scopes()
    setting_workers = [s.workers for s in arms if s.workers is not None]
    resolved = resolve_workers(
        workers, max(setting_workers) if setting_workers else None
    )
    source = _resolve_chunk_source(distribution, coordinator, resolved)
    calls = [(settings, task) for settings in arms for task in tasks]
    on_result = None
    if progress is not None:
        total = len(calls)
        on_result = lambda done, _result: progress(done, total)  # noqa: E731
    chunk_results = source.map(_run_task_chunk, calls, on_result=on_result)
    results = []
    for arm_index, settings in enumerate(arms):
        outcomes = []
        arm_chunks = chunk_results[
            arm_index * len(tasks) : (arm_index + 1) * len(tasks)
        ]
        for task, chunk in zip(tasks, arm_chunks):
            syntactic, full, unknown, static, passes_used, _chunk_stats = chunk
            outcomes.append(
                TaskOutcome(
                    case_id=task.case_id,
                    tier=task.tier,
                    family=task.case.family,
                    samples=settings.samples_per_task,
                    syntactic_successes=syntactic,
                    full_successes=full,
                    passes_used=passes_used,
                    semantic_unknown=unknown,
                    static_errors=static,
                )
            )
        stats = fold_counts(chunk[5] for chunk in arm_chunks)
        for scope in caller_scopes:
            scope.merge(stats)
        results.append(
            EvalResult(
                label=settings.display_label(),
                outcomes=outcomes,
                execution_stats=stats,
            )
        )
    return results


def evaluate(
    settings: PipelineSettings,
    tasks: list[Task],
    workers: int | None = None,
    progress=None,
    distribution: str | None = None,
    coordinator=None,
) -> EvalResult:
    """Run one arm over a bank; deterministic given ``settings.base_seed``.

    ``workers=N`` fans the per-task chunks across N workers with outcomes
    **bit-identical** to the serial runner for any N (per-sample seeds are
    order-independent via ``derive_seed``); ``distribution="remote"`` with a
    running :class:`~repro.quantum.execution.dispatch.EvalCoordinator` ships
    the same chunks to remote eval workers with the same guarantee.  Grading
    runs through the shared ExecutionService under per-chunk stats scopes, so
    the result carries the arm's own simulation and cache counters — exact
    even while other arms run concurrently — and a repeat run of an identical
    arm is served almost entirely from the result cache.
    """
    return evaluate_many(
        [settings],
        tasks,
        workers=workers,
        progress=progress,
        distribution=distribution,
        coordinator=coordinator,
    )[0]
