"""Evaluation runner: drive the pipeline over a task bank and aggregate.

``evaluate`` is the engine under Figure 3, Table I and the multi-pass sweep:
it runs one pipeline configuration over a bank, with ``samples_per_task``
seeds each, and returns per-task outcomes plus the aggregate metrics the
paper reports (overall accuracy, syntactic accuracy, per-tier breakdown,
pass@k).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.semantic import SemanticAnalyzerAgent
from repro.evalsuite.passk import mean_pass_at_k
from repro.evalsuite.suite import Task
from repro.llm.faults import ModelConfig
from repro.llm.model import SimulatedCodeLLM
from repro.prompts.generator import ScaffoldGenerator
from repro.quantum.execution import default_service
from repro.rag.retriever import Retriever
from repro.utils.rng import derive_seed
from repro.utils.stats import binomial_confidence_interval


@dataclass(frozen=True)
class PipelineSettings:
    """One experimental arm: a model config plus pipeline switches."""

    config: ModelConfig
    max_passes: int = 1
    semantic_feedback: bool = False
    samples_per_task: int = 4
    base_seed: int = 1234
    label: str | None = None
    #: Override the string used in per-sample seed derivation.  Arms that
    #: should see *paired* generations (e.g. the multi-pass sweep, where only
    #: the repair budget differs) share one seed_label.
    seed_label: str | None = None

    def display_label(self) -> str:
        if self.label:
            return self.label
        label = self.config.label()
        if self.max_passes > 1:
            label += f"+MP{self.max_passes}"
        return label

    def seed_scope(self) -> str:
        return self.seed_label if self.seed_label is not None else self.display_label()


@dataclass
class TaskOutcome:
    """All samples of one task under one arm."""

    case_id: str
    tier: str
    family: str
    samples: int
    syntactic_successes: int
    full_successes: int
    passes_used: list[int] = field(default_factory=list)


@dataclass
class EvalResult:
    """Aggregated evaluation of one arm over one bank."""

    label: str
    outcomes: list[TaskOutcome]
    #: ExecutionService activity attributable to this arm (simulations run,
    #: result-cache hits/misses) — see :func:`evaluate`.
    execution_stats: dict[str, int] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return len(self.outcomes)

    def accuracy(self) -> float:
        """Fraction of samples both syntactically and semantically valid."""
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.full_successes for o in self.outcomes)
        return good / total if total else 0.0

    def syntactic_accuracy(self) -> float:
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.syntactic_successes for o in self.outcomes)
        return good / total if total else 0.0

    def accuracy_by_tier(self) -> dict[str, float]:
        tiers: dict[str, list[TaskOutcome]] = {}
        for o in self.outcomes:
            tiers.setdefault(o.tier, []).append(o)
        return {
            tier: sum(o.full_successes for o in group)
            / max(1, sum(o.samples for o in group))
            for tier, group in sorted(tiers.items())
        }

    def pass_at_k(self, k: int = 1) -> float:
        return mean_pass_at_k(
            [(o.samples, o.full_successes) for o in self.outcomes], k
        )

    def confidence_interval(self) -> tuple[float, float]:
        total = sum(o.samples for o in self.outcomes)
        good = sum(o.full_successes for o in self.outcomes)
        return binomial_confidence_interval(good, total)

    def mean_passes(self) -> float:
        passes = [p for o in self.outcomes for p in o.passes_used]
        return sum(passes) / len(passes) if passes else 0.0


def build_pipeline(settings: PipelineSettings) -> tuple[CodeGenerationAgent, SemanticAnalyzerAgent]:
    """Construct the two evaluation-relevant agents for one arm."""
    model = SimulatedCodeLLM(settings.config)
    retriever = None
    if settings.config.rag_docs or settings.config.rag_guides:
        datasets = tuple(
            name
            for name, enabled in (
                ("docs", settings.config.rag_docs),
                ("guides", settings.config.rag_guides),
            )
            if enabled
        )
        retriever = Retriever(datasets=datasets)
    codegen = CodeGenerationAgent(model, retriever=retriever, scaffolds=ScaffoldGenerator())
    return codegen, SemanticAnalyzerAgent()


def evaluate(settings: PipelineSettings, tasks: list[Task]) -> EvalResult:
    """Run one arm over a bank; deterministic given settings.base_seed.

    Grading runs through the shared ExecutionService, so each result carries
    the arm's simulation and cache counters — a repeat run of an identical
    arm is served almost entirely from the result cache.
    """
    before = default_service().stats()
    codegen, analyzer = build_pipeline(settings)
    outcomes = []
    for task in tasks:
        syntactic = 0
        full = 0
        passes_used: list[int] = []
        for sample in range(settings.samples_per_task):
            seed = derive_seed(
                settings.base_seed, settings.seed_scope(), task.case_id, sample
            )
            request = GenerationRequest(
                prompt_text=task.case.text,
                params=dict(task.case.params),
                seed=seed,
            )
            completion, _rendered = codegen.generate(request)
            refinement = analyzer.refine(
                codegen,
                request,
                completion,
                reference_code=task.reference_code,
                checker=task.checker,
                max_passes=settings.max_passes,
                semantic_feedback=settings.semantic_feedback,
            )
            report = refinement.report
            if report.syntactic_ok:
                syntactic += 1
            if report.syntactic_ok and report.semantic_ok is not False:
                full += 1
            passes_used.append(refinement.passes_used)
        outcomes.append(
            TaskOutcome(
                case_id=task.case_id,
                tier=task.tier,
                family=task.case.family,
                samples=settings.samples_per_task,
                syntactic_successes=syntactic,
                full_successes=full,
                passes_used=passes_used,
            )
        )
    after = default_service().stats()
    execution_stats = {
        key: int(after.get(key, 0) - before.get(key, 0))
        for key in (
            "simulations",
            "simulations_deduped",
            "cache_hits",
            "cache_misses",
            "cache_disk_hits",
            "cache_remote_hits",
            "cache_evictions",
        )
    }
    return EvalResult(
        label=settings.display_label(),
        outcomes=outcomes,
        execution_stats=execution_stats,
    )
