"""The unbiased pass@k estimator (Chen et al., 2021 — paper reference [20]).

pass@k = E[1 - C(n - c, k) / C(n, k)] over tasks, where n samples were drawn
per task and c of them were correct.
"""

from __future__ import annotations

import math

from repro.errors import EvaluationError


def pass_at_k(num_samples: int, num_correct: int, k: int) -> float:
    """Unbiased single-task pass@k."""
    if num_samples < 1 or k < 1:
        raise EvaluationError("pass@k needs num_samples >= 1 and k >= 1")
    if num_correct < 0 or num_correct > num_samples:
        raise EvaluationError(
            f"num_correct {num_correct} out of range for {num_samples} samples"
        )
    if k > num_samples:
        raise EvaluationError(f"k={k} exceeds num_samples={num_samples}")
    if num_samples - num_correct < k:
        return 1.0
    return 1.0 - math.comb(num_samples - num_correct, k) / math.comb(num_samples, k)


def mean_pass_at_k(results: list[tuple[int, int]], k: int) -> float:
    """Average pass@k across tasks given [(n, c), ...].

    An empty bank yields 0.0 — consistent with ``EvalResult.accuracy()`` —
    so reporting over a filtered-empty tier never crashes.
    """
    if not results:
        return 0.0
    return sum(pass_at_k(n, c, k) for n, c in results) / len(results)
