"""Graded task construction for the paper-style test suite.

A :class:`Task` is a prompt case plus its *answer*: the canonical reference
program (the prompt-answer pairs of paper Section III-B) and, for I/O-style
families, a custom namespace checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.llm.synthesis import synthesize
from repro.prompts.bank import PromptCase, suite_cases
from repro.quantum.circuit import QuantumCircuit

Checker = Callable[[dict], bool]


@dataclass(frozen=True)
class Task:
    """One gradeable unit: prompt + reference + optional custom checker."""

    case: PromptCase
    reference_code: str
    checker: Checker | None = None

    @property
    def case_id(self) -> str:
        return self.case.case_id

    @property
    def tier(self) -> str:
        return self.case.tier


def _qasm_checker(namespace: dict) -> bool:
    """The qasm_io family grader: the round trip must reproduce the circuit.

    Checks: a circuit ``qc`` with the expected Bell+measure structure exists,
    and ``qc2`` (parsed back from the exported text) equals it.
    """
    qc = namespace.get("qc")
    qc2 = namespace.get("qc2")
    text = namespace.get("qasm_text")
    if not isinstance(qc, QuantumCircuit) or not isinstance(qc2, QuantumCircuit):
        return False
    if not isinstance(text, str) or "OPENQASM" not in text:
        return False
    if qc2 != qc:
        return False
    names = [i.name for i in qc if i.name != "barrier"]
    return names[:2] == ["h", "cx"] and names.count("measure") == 2 and (
        qc.instructions[1].qubits == (0, 1)
    )


_CHECKERS: dict[str, Checker] = {
    "qasm_io": _qasm_checker,
}


def build_task(case: PromptCase) -> Task:
    """Attach the canonical answer and checker to a prompt case."""
    reference = synthesize(case.family, dict(case.params), "correct")
    return Task(
        case=case,
        reference_code=reference,
        checker=_CHECKERS.get(case.family),
    )


def build_suite() -> list[Task]:
    """All 34 graded tasks of the paper-style suite."""
    return [build_task(case) for case in suite_cases()]
