"""A Qiskit-HumanEval-style benchmark bank (paper reference [21], Table I).

QHE's published character: 151 handwritten tasks, heavily weighted toward
library usage (circuit construction, execution, transpilation, serialisation)
rather than deep algorithmic reasoning — which is why the paper's models show
*lower* scores here than on the semantics-heavy custom suite, and why RAG
over API docs helps QHE more (Section V-C).

This bank mirrors that composition at reproducible scale: 40 tasks with a
60/30/10 basic/intermediate/advanced mix, graded identically to the custom
suite, and evaluated with the ``qhe`` fault profile.
"""

from __future__ import annotations

from repro.evalsuite.suite import Task, build_task
from repro.prompts.bank import PromptCase

_QHE_TEMPLATES: list[tuple[str, str, str, dict]] = [
    # (family, tier, text, params) — texts phrased the terse QHE way.
    ("superposition", "basic",
     "Write a function body that creates a one-qubit circuit in equal "
     "superposition using a hadamard and measures it, returning counts.", {}),
    ("superposition", "basic",
     "Construct a single qubit circuit showing 50/50 measurement statistics "
     "with a hadamard gate and simulator counts.", {}),
    ("bell", "basic",
     "Create a bell state on qubits 0 and 1, measure both, return the "
     "counts dictionary.", {}),
    ("bell", "basic",
     "Build the Phi+ bell pair circuit with measurement and execute it on "
     "the simulator for the counts.", {}),
    ("ghz", "basic",
     "Prepare a 3 qubit GHZ cat state circuit with measurements and run it.",
     {"n": 3}),
    ("ghz", "basic",
     "Write code producing a 5-qubit GHZ cat state and measuring every "
     "qubit.", {"n": 5}),
    ("basis_prep", "basic",
     "Initialize the computational basis state 011 by applying X gates, "
     "measure all qubits.", {"bits": "011"}),
    ("basis_prep", "basic",
     "Prepare basis state 1001 on four qubits with X gates and measure.",
     {"bits": "1001"}),
    ("rotation", "basic",
     "Apply ry rotation with angle theta=0.9 to qubit 0 and measure the "
     "rotated qubit.", {"theta": 0.9}),
    ("rotation", "basic",
     "Rotate a qubit about Y by 1.5 radians and sample its measurement "
     "distribution.", {"theta": 1.5}),
    ("statevector", "basic",
     "Return the statevector of the two-qubit circuit preparing 10 without "
     "measuring.", {"label": "10"}),
    ("statevector", "basic",
     "Get the state vector amplitudes of a three-qubit circuit preparing "
     "001.", {"label": "001"}),
    ("device_run", "basic",
     "Transpile a 3-qubit entangling circuit for the Brisbane backend and "
     "run it on the device.", {"n": 3}),
    ("device_run", "basic",
     "Submit a 2-qubit circuit to the fake Brisbane hardware backend, "
     "respecting its coupling map.", {"n": 2}),
    ("qasm_io", "basic",
     "Export a measured bell circuit to OpenQASM 2 and parse it back.", {}),
    ("qasm_io", "basic",
     "Serialize a two-qubit circuit to qasm text and reload it as a "
     "circuit object.", {}),
    ("superposition", "basic",
     "Make a quantum coin flip: hadamard a qubit, measure, run 2048 shots "
     "and return counts.", {}),
    ("bell", "basic",
     "Entangle two qubits so their measurements are perfectly correlated; "
     "return simulator counts.", {}),
    ("ghz", "basic",
     "Create a 4 qubit GHZ cat state with a hadamard and a CNOT chain, then "
     "measure all qubits.", {"n": 4}),
    ("basis_prep", "basic",
     "Prepare the basis state 110 and verify via measurement counts.",
     {"bits": "110"}),
    ("rotation", "basic",
     "Use an ry gate with angle 2.2 and estimate P(1) from measurement "
     "counts.", {"theta": 2.2}),
    ("statevector", "basic",
     "Compute the statevector of circuit preparing state 11 without "
     "measurement.", {"label": "11"}),
    ("device_run", "basic",
     "Run a GHZ-3 circuit on the fake Brisbane device backend after "
     "transpiling.", {"n": 3}),
    ("qasm_io", "basic",
     "Round-trip a bell circuit through OpenQASM serialization.", {}),
    # -- intermediate ---------------------------------------------------------
    ("qft", "intermediate",
     "Implement the 3-qubit quantum fourier transform with final swaps and "
     "return its statevector.", {"n": 3}),
    ("qft", "intermediate",
     "Build the QFT circuit on 4 qubits using controlled phase gates.",
     {"n": 4}),
    ("deutsch_jozsa", "intermediate",
     "Implement deutsch-jozsa with a constant-1 oracle on 3 inputs and "
     "measure the input register.", {"n": 3, "kind": "constant1"}),
    ("deutsch_jozsa", "intermediate",
     "Write the deutsch-jozsa circuit for a balanced oracle over 2 input "
     "qubits.", {"n": 2, "kind": "balanced"}),
    ("bernstein_vazirani", "intermediate",
     "Find the secret string 110 with one bernstein-vazirani query.",
     {"secret": "110"}),
    ("bernstein_vazirani", "intermediate",
     "Implement bernstein-vazirani to reveal the hidden bitstring 1010.",
     {"secret": "1010"}),
    ("grover", "intermediate",
     "Run grover search for the marked element 10 on two qubits.",
     {"marked": "10"}),
    ("grover", "intermediate",
     "Use grover amplitude amplification on 3 qubits to find 111.",
     {"marked": "111"}),
    ("qft", "intermediate",
     "Apply a 2-qubit quantum fourier transform and return the "
     "statevector.", {"n": 2}),
    ("deutsch_jozsa", "intermediate",
     "Determine whether a constant-0 oracle on two inputs is constant or "
     "balanced with deutsch-jozsa.", {"n": 2, "kind": "constant0"}),
    ("bernstein_vazirani", "intermediate",
     "Recover secret 011 using the bernstein-vazirani oracle circuit.",
     {"secret": "011"}),
    ("grover", "intermediate",
     "Search for the marked state 01 using grover iterations on 2 qubits.",
     {"marked": "01"}),
    # -- advanced ----------------------------------------------------------------
    ("teleportation", "advanced",
     "Teleport the state u(0.8, 0.3, 0)|0> from alice's qubit to bob's "
     "using a bell measurement and conditioned corrections.",
     {"theta": 0.8, "phi": 0.3}),
    ("superdense", "advanced",
     "Transmit the classical bits 11 with superdense coding over a shared "
     "bell pair.", {"bits": "11"}),
    ("phase_estimation", "advanced",
     "Use quantum phase estimation with 3 counting qubits to estimate the "
     "phase 0.125.", {"phase": 0.125, "n": 3}),
    ("quantum_walk", "advanced",
     "Simulate a 2-step coined quantum walk on a 4-cycle and measure the "
     "walker position.", {"steps": 2}),
]


def qhe_cases() -> list[PromptCase]:
    """The QHE-style prompt cases."""
    return [
        PromptCase(f"qhe-{i:02d}", tier, family, text, params)
        for i, (family, tier, text, params) in enumerate(_QHE_TEMPLATES, start=1)
    ]


def build_qhe() -> list[Task]:
    """All graded QHE-style tasks."""
    return [build_task(case) for case in qhe_cases()]
