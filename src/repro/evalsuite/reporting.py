"""Rendering evaluation results as the paper's tables and bar charts."""

from __future__ import annotations

import sys

from repro.evalsuite.runner import EvalResult
from repro.utils.tables import AsciiTable, format_histogram


def progress_printer(label: str, stream=None):
    """A ``progress(done, total)`` callback that renders a one-line meter.

    Suitable for :func:`repro.evalsuite.runner.evaluate`'s ``progress``
    hook: writes carriage-return updates to ``stream`` (stderr by default)
    and finishes the line when the last chunk lands.  Thread-safe in the
    sense that the engine invokes it from the collecting thread only.
    """
    if stream is None:
        stream = sys.stderr

    def progress(done: int, total: int) -> None:
        width = 24
        filled = int(width * done / total) if total else width
        bar = "#" * filled + "-" * (width - filled)
        end = "\n" if done >= total else ""
        stream.write(f"\r{label} [{bar}] {done}/{total} chunks{end}")
        stream.flush()

    return progress


def comparison_table(
    results: list[EvalResult], title: str = "Accuracy by technique"
) -> AsciiTable:
    """One row per arm: accuracy, syntactic accuracy, per-tier split.

    Tiers without samples render as ``-`` (no fake 0.0), the Ungraded
    column counts samples folded into accuracy without a semantic verdict,
    and StaticErr counts samples rejected by static analysis (``QA1xx``) —
    kept apart from runtime failures, and graded without a single simulation.
    """
    table = AsciiTable(
        [
            "Arm",
            "Accuracy",
            "Syntactic",
            "Ungraded",
            "StaticErr",
            "Basic",
            "Intermediate",
            "Advanced",
        ],
        title=title,
    )

    def tier_cell(tiers: dict[str, float], tier: str) -> str:
        return f"{tiers[tier]:.1%}" if tier in tiers else "-"

    for result in results:
        tiers = result.accuracy_by_tier()
        low, high = result.confidence_interval()
        table.add_row(
            [
                result.label,
                f"{result.accuracy():.1%} [{low:.0%},{high:.0%}]",
                f"{result.syntactic_accuracy():.1%}",
                str(result.semantic_unknown_count()),
                str(result.static_error_count()),
                tier_cell(tiers, "basic"),
                tier_cell(tiers, "intermediate"),
                tier_cell(tiers, "advanced"),
            ]
        )
    return table


def accuracy_bars(results: list[EvalResult], title: str) -> str:
    """Figure-3 style horizontal bar chart of arm accuracies."""
    return format_histogram(
        {r.label: max(r.accuracy(), 1e-9) for r in results},
        title=title,
        sort_by_key=False,
    )


def execution_stats_table(
    results: list[EvalResult], title: str = "Execution service activity"
) -> AsciiTable:
    """Per-arm simulation and result-cache counters (ExecutionService)."""
    table = AsciiTable(
        [
            "Arm",
            "Simulations",
            "Deduped",
            "Batched",
            "Validated",
            "Rejected",
            "Cache hits",
            "Disk hits",
            "Remote hits",
            "Cache misses",
            "Hit rate",
            "Transpiles",
            "T-cache hits",
        ],
        title=title,
    )
    for result in results:
        stats = result.execution_stats or {}
        hits = stats.get("cache_hits", 0)
        misses = stats.get("cache_misses", 0)
        lookups = hits + misses
        table.add_row(
            [
                result.label,
                stats.get("simulations", 0),
                stats.get("simulations_deduped", 0),
                stats.get("simulations_batched", 0),
                stats.get("programs_validated", 0),
                stats.get("rejected_static", 0),
                hits,
                stats.get("cache_disk_hits", 0),
                stats.get("cache_remote_hits", 0),
                misses,
                f"{hits / lookups:.1%}" if lookups else "-",
                stats.get("transpiles", 0),
                stats.get("transpile_cache_hits", 0),
            ]
        )
    return table


def per_family_table(result: EvalResult) -> AsciiTable:
    """Per-family success detail for one arm (debugging aid)."""
    table = AsciiTable(
        ["Family", "Tasks", "Samples", "Syntactic", "Full"],
        title=f"Per-family detail: {result.label}",
    )
    by_family: dict[str, list] = {}
    for o in result.outcomes:
        by_family.setdefault(o.family, []).append(o)
    for family, group in sorted(by_family.items()):
        samples = sum(o.samples for o in group)
        table.add_row(
            [
                family,
                len(group),
                samples,
                f"{sum(o.syntactic_successes for o in group) / samples:.0%}",
                f"{sum(o.full_successes for o in group) / samples:.0%}",
            ]
        )
    return table
