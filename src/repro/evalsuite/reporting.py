"""Rendering evaluation results as the paper's tables and bar charts."""

from __future__ import annotations

from repro.evalsuite.runner import EvalResult
from repro.utils.tables import AsciiTable, format_histogram


def comparison_table(
    results: list[EvalResult], title: str = "Accuracy by technique"
) -> AsciiTable:
    """One row per arm: accuracy, syntactic accuracy, per-tier split."""
    table = AsciiTable(
        ["Arm", "Accuracy", "Syntactic", "Basic", "Intermediate", "Advanced"],
        title=title,
    )
    for result in results:
        tiers = result.accuracy_by_tier()
        low, high = result.confidence_interval()
        table.add_row(
            [
                result.label,
                f"{result.accuracy():.1%} [{low:.0%},{high:.0%}]",
                f"{result.syntactic_accuracy():.1%}",
                f"{tiers.get('basic', 0.0):.1%}",
                f"{tiers.get('intermediate', 0.0):.1%}",
                f"{tiers.get('advanced', 0.0):.1%}",
            ]
        )
    return table


def accuracy_bars(results: list[EvalResult], title: str) -> str:
    """Figure-3 style horizontal bar chart of arm accuracies."""
    return format_histogram(
        {r.label: max(r.accuracy(), 1e-9) for r in results},
        title=title,
        sort_by_key=False,
    )


def execution_stats_table(
    results: list[EvalResult], title: str = "Execution service activity"
) -> AsciiTable:
    """Per-arm simulation and result-cache counters (ExecutionService)."""
    table = AsciiTable(
        [
            "Arm",
            "Simulations",
            "Deduped",
            "Cache hits",
            "Disk hits",
            "Remote hits",
            "Cache misses",
            "Hit rate",
        ],
        title=title,
    )
    for result in results:
        stats = result.execution_stats or {}
        hits = stats.get("cache_hits", 0)
        misses = stats.get("cache_misses", 0)
        lookups = hits + misses
        table.add_row(
            [
                result.label,
                stats.get("simulations", 0),
                stats.get("simulations_deduped", 0),
                hits,
                stats.get("cache_disk_hits", 0),
                stats.get("cache_remote_hits", 0),
                misses,
                f"{hits / lookups:.1%}" if lookups else "-",
            ]
        )
    return table


def per_family_table(result: EvalResult) -> AsciiTable:
    """Per-family success detail for one arm (debugging aid)."""
    table = AsciiTable(
        ["Family", "Tasks", "Samples", "Syntactic", "Full"],
        title=f"Per-family detail: {result.label}",
    )
    by_family: dict[str, list] = {}
    for o in result.outcomes:
        by_family.setdefault(o.family, []).append(o)
    for family, group in sorted(by_family.items()):
        samples = sum(o.samples for o in group)
        table.add_row(
            [
                family,
                len(group),
                samples,
                f"{sum(o.syntactic_successes for o in group) / samples:.0%}",
                f"{sum(o.full_successes for o in group) / samples:.0%}",
            ]
        )
    return table
