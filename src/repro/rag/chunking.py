"""Document chunking strategies.

The paper notes (Section V-C) that it used "a basic RAG splitting technique,
which does not take into account code structure, so we could see better
accuracy if we used a more intelligent method".  Both strategies are
implemented so the ablation benchmark can quantify exactly that gap:

* :func:`naive_chunks` — fixed-size character windows with overlap (what the
  paper used);
* :func:`code_aware_chunks` — splits at blank lines / definition boundaries /
  markdown headers so a chunk never severs an API example mid-signature.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class Chunk:
    """A retrievable piece of a source document."""

    doc_id: str
    text: str
    start: int
    strategy: str


def naive_chunks(
    doc_id: str, text: str, size: int = 400, overlap: int = 50
) -> list[Chunk]:
    """Fixed-size character windows; boundary-oblivious (the paper's method)."""
    if size <= 0 or overlap >= size:
        raise ValueError(f"bad chunking parameters size={size}, overlap={overlap}")
    chunks = []
    step = size - overlap
    for start in range(0, max(1, len(text)), step):
        piece = text[start : start + size]
        if piece.strip():
            chunks.append(Chunk(doc_id, piece, start, "naive"))
        if start + size >= len(text):
            break
    return chunks


_BOUNDARY_RE = re.compile(r"\n(?=(?:def |class |#{1,4} |@|\n))")


def code_aware_chunks(
    doc_id: str, text: str, max_size: int = 600
) -> list[Chunk]:
    """Split at structural boundaries, merging small pieces up to ``max_size``."""
    pieces = [p for p in _BOUNDARY_RE.split(text) if p.strip()]
    if not pieces:
        return []
    chunks: list[Chunk] = []
    buffer = ""
    offset = 0
    for piece in pieces:
        if buffer and len(buffer) + len(piece) > max_size:
            chunks.append(Chunk(doc_id, buffer, offset, "code_aware"))
            offset += len(buffer)
            buffer = piece
        else:
            buffer = buffer + "\n" + piece if buffer else piece
    if buffer.strip():
        chunks.append(Chunk(doc_id, buffer, offset, "code_aware"))
    return chunks
