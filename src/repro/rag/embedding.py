"""Text embeddings for retrieval: hashed TF-IDF vectors.

Tokens are hashed into a fixed-dimension vector (the "hashing trick"), with
IDF weights learned from the indexed corpus.  No external model is needed,
and similarity behaves the way retrieval needs it to: documents sharing rare
technical terms (gate names, API symbols) score far above documents sharing
stopwords.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.errors import RAGError
from repro.llm.tokenizer import tokenize
from repro.utils.rng import stable_hash


class TfidfEmbedder:
    """Hashed TF-IDF embedding with cosine similarity."""

    def __init__(self, dim: int = 512) -> None:
        if dim < 16:
            raise RAGError(f"embedding dimension too small: {dim}")
        self.dim = dim
        self._doc_freq: Counter = Counter()
        self._num_docs = 0

    # -- fitting -------------------------------------------------------------

    def fit(self, documents: list[str]) -> "TfidfEmbedder":
        """Learn IDF statistics from the corpus to be indexed."""
        for doc in documents:
            self._doc_freq.update(set(self._terms(doc)))
        self._num_docs += len(documents)
        return self

    def _terms(self, text: str) -> list[str]:
        return [t.lower() for t in tokenize(text) if t.strip() and t != "\n"]

    def _idf(self, term: str) -> float:
        df = self._doc_freq.get(term, 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    # -- embedding ---------------------------------------------------------------

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm vector."""
        vec = np.zeros(self.dim)
        counts = Counter(self._terms(text))
        if not counts:
            return vec
        for term, tf in counts.items():
            slot = stable_hash("tfidf", term) % self.dim
            sign = 1.0 if stable_hash("sign", term) % 2 == 0 else -1.0
            vec[slot] += sign * (1 + math.log(tf)) * self._idf(term)
        norm = np.linalg.norm(vec)
        return vec / norm if norm > 0 else vec

    @staticmethod
    def similarity(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity of two (already normalised) embeddings."""
        return float(np.dot(a, b))
