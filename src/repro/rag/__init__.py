"""Retrieval-augmented generation: embeddings, chunking, store, retriever."""

from repro.rag.chunking import Chunk, code_aware_chunks, naive_chunks
from repro.rag.docs import ALGORITHM_GUIDES, API_DOCS
from repro.rag.embedding import TfidfEmbedder
from repro.rag.retriever import Retriever
from repro.rag.store import Hit, VectorStore

__all__ = [
    "ALGORITHM_GUIDES",
    "API_DOCS",
    "Chunk",
    "Hit",
    "Retriever",
    "TfidfEmbedder",
    "VectorStore",
    "code_aware_chunks",
    "naive_chunks",
]
