"""The two bundled RAG corpora (paper Section IV-C).

* :data:`API_DOCS` — "the documentation for the latest Qiskit version":
  current-API reference pages *including migration notes* for every removed
  symbol.  Retrieval hits on these notes are what mechanically suppress
  legacy-API emissions.
* :data:`ALGORITHM_GUIDES` — "guides and tutorials explaining the ideas
  behind and structures of a collection of quantum algorithms".

Both are plain strings keyed by document id so chunking strategies can be
ablated over identical content.
"""

from __future__ import annotations

API_DOCS: dict[str, str] = {
    "circuits": """\
# Building circuits

QuantumCircuit(num_qubits, num_clbits) constructs a circuit. Gates are added
with builder methods: qc.h(q), qc.x(q), qc.cx(control, target),
qc.cz(control, target), qc.ccx(c1, c2, target), qc.swap(a, b),
qc.rx(theta, q), qc.ry(theta, q), qc.rz(theta, q), qc.p(lam, q),
qc.u(theta, phi, lam, q), qc.cp(lam, control, target).

Measurement: qc.measure(qubit, clbit) or qc.measure_all().
Conditioned gates: qc.append("x", [q], condition=(clbit, 1)).

## Migration notes (removed in v1)
- QuantumCircuit.cu1(lam, c, t) was removed: use qc.cp(lam, c, t).
- QuantumCircuit.u1(lam, q) was removed: use qc.p(lam, q).
- QuantumCircuit.u2(phi, lam, q) was removed: use qc.u(pi/2, phi, lam, q).
- QuantumCircuit.u3(theta, phi, lam, q) was removed: use qc.u(theta, phi, lam, q).
- QuantumCircuit.toffoli(a, b, t) was removed: use qc.ccx(a, b, t).
- QuantumCircuit.fredkin(c, a, b) was removed: use qc.cswap(c, a, b).
- QuantumCircuit.cnot(c, t) was removed: use qc.cx(c, t).
- QuantumCircuit.iden(q) was removed: use qc.id(q).
""",
    "execution": """\
# Running circuits

Instantiate a backend and call run(); results come from the job object:

    from repro.quantum import LocalSimulator
    backend = LocalSimulator()
    job = backend.run(qc, shots=1024, seed=7)
    counts = job.result().get_counts()

Device-style backends (FakeBrisbane, FakeFalcon) enforce a coupling map and
basis gates; transpile first:

    from repro.quantum import FakeBrisbane, transpile
    backend = FakeBrisbane()
    tqc = transpile(qc, backend=backend)
    counts = backend.run(tqc, shots=1024).result().get_counts()

## Migration notes (removed in v1)
- execute(circuit, backend, shots) was removed: use
  backend.run(circuit, shots=...) and job.result().
- Aer.get_backend("qasm_simulator") was removed: instantiate
  LocalSimulator() directly.
- BasicAer was removed: instantiate LocalSimulator() directly.
- IBMQ provider access was removed: use FakeBrisbane() or another Backend.
- result.get_statevector() was removed: use Statevector.from_circuit(qc).
""",
    "statevector": """\
# Statevector analysis

Statevector.from_circuit(qc) simulates the unitary part of a circuit
(trailing measurements are ignored). Useful methods:
probabilities_dict(), sample_counts(shots, rng), expectation_value("ZZI"),
fidelity(other), equiv(other).

Statevector.from_label("01+") builds product states.
""",
    "transpiler": """\
# Transpilation

transpile(circuit, backend=...) lowers a circuit to the backend's basis
gates and coupling map: gate decomposition, qubit layout, SWAP routing and
peephole optimization. Options: coupling_map, basis_gates, initial_layout,
optimization_level (0-2).

The transpiled circuit lives on physical qubit indices;
circuit.metadata["layout"] records the logical-to-physical mapping.

## Migration notes (removed in v1)
- compile_circuit(...) was removed: use transpile(circuit, backend=...).
""",
    "noise": """\
# Noise models

NoiseModel.uniform_depolarizing(p_1q, p_2q, p_readout) builds a device-style
model. Channels: PauliNoise.depolarizing(p), .bit_flip(p), .phase_flip(p);
ReadoutError.symmetric(p). Attach to NoisySimulator(noise_model) or scale an
existing model with noise_model.scaled(factor).
""",
    "qasm": """\
# OpenQASM

circuit_to_qasm(qc) serialises to OpenQASM 2; qasm_to_circuit(text) parses a
subset back. Supported: the standard gate set, measure, reset, barrier and
single-bit if-conditions.
""",
}


ALGORITHM_GUIDES: dict[str, str] = {
    "bell_ghz": """\
# Entangled states

A Bell pair is a Hadamard followed by a CNOT; measuring both qubits yields
00 or 11 with equal probability. The n-qubit GHZ state generalises this:
H on qubit 0, then CNOTs chained qubit-to-qubit down the register.
""",
    "deutsch_jozsa": """\
# Deutsch-Jozsa

Decides whether a promise oracle is constant or balanced with one query.
Structure: flip the ancilla with X and Hadamard everything so the ancilla is
in the minus state; apply the oracle (phase kickback); Hadamard the input
register again and measure. All-zeros means constant; anything else means
balanced.
""",
    "grover": """\
# Grover search

Amplitude amplification around the marked states. Start from the uniform
superposition; each iteration applies the phase oracle then the diffuser
(H on all, X on all, multi-controlled Z, X on all, H on all). The optimal
iteration count is about pi/4 * sqrt(N/M); overshooting reduces the success
probability again.
""",
    "qft_qpe": """\
# QFT and phase estimation

The QFT applies H plus controlled-phase rotations pi/2^k between qubit
pairs, then swaps for bit order. Phase estimation prepares counting qubits
in plus states, applies controlled powers of the unitary (controlled-P with
angle 2 pi phase 2^k from counting qubit k), then the INVERSE QFT on the
counting register before measuring. Forgetting the inverse QFT is the most
common mistake.
""",
    "teleport_superdense": """\
# Teleportation and superdense coding

Teleportation: share a Bell pair (qubits 1,2); Bell-measure the message
qubit 0 with qubit 1 (CNOT then H, measure both); apply X to qubit 2 if the
second bit fired and Z if the first did. Superdense coding is the reverse
direction: encode two classical bits by applying X (high bit) and Z (low
bit) to your Bell half; decode with CNOT and H, then measure.
""",
    "walk_annealing": """\
# Quantum walks and annealing

A discrete-time walk on a cycle uses position qubits plus a coin: Hadamard
the coin, then increment the position conditioned on coin=1 and decrement
conditioned on coin=0 (controlled adders built from CCX and CX).
Annealing-style evolution Trotterises H(s) = (1-s) X-driver + s ZZ-problem:
RZZ couplings then RX fields per slice, ramping s from 0 to 1, starting from
the all-plus state.
""",
}
