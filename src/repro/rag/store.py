"""An in-memory vector store over document chunks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RAGError
from repro.rag.chunking import Chunk
from repro.rag.embedding import TfidfEmbedder


@dataclass(frozen=True)
class Hit:
    """One retrieval result."""

    chunk: Chunk
    score: float


class VectorStore:
    """Chunk index with cosine top-k search."""

    def __init__(self, embedder: TfidfEmbedder | None = None) -> None:
        self.embedder = embedder or TfidfEmbedder()
        self._chunks: list[Chunk] = []
        self._matrix: np.ndarray | None = None

    def add(self, chunks: list[Chunk]) -> None:
        """Index chunks; refits IDF over everything indexed so far."""
        if not chunks:
            return
        self._chunks.extend(chunks)
        self.embedder.fit([c.text for c in chunks])
        # Re-embed everything: IDF changed.  Corpora here are small (docs +
        # guides), so a full rebuild is cheaper than being clever.
        self._matrix = np.stack([self.embedder.embed(c.text) for c in self._chunks])

    def __len__(self) -> int:
        return len(self._chunks)

    def search(self, query: str, top_k: int = 4) -> list[Hit]:
        """Return the ``top_k`` most similar chunks to the query."""
        if top_k < 1:
            raise RAGError(f"top_k must be >= 1, got {top_k}")
        if not self._chunks or self._matrix is None:
            return []
        q = self.embedder.embed(query)
        scores = self._matrix @ q
        order = np.argsort(-scores)[:top_k]
        return [
            Hit(self._chunks[int(i)], float(scores[int(i)]))
            for i in order
            if scores[int(i)] > 0.0
        ]
