"""The retrieval pipeline: corpora -> chunks -> vector store -> context.

``Retriever`` assembles the two bundled datasets with a chosen chunking
strategy and exposes :meth:`retrieve`, which the code-generation agent calls
to augment prompts (paper Section IV-C: langchain/ragatouille's role in the
original system).
"""

from __future__ import annotations

from repro.errors import RAGError
from repro.rag.chunking import Chunk, code_aware_chunks, naive_chunks
from repro.rag.docs import ALGORITHM_GUIDES, API_DOCS
from repro.rag.store import Hit, VectorStore

DATASETS = {"docs": API_DOCS, "guides": ALGORITHM_GUIDES}
STRATEGIES = ("naive", "code_aware")


class Retriever:
    """Top-k chunk retrieval over the bundled documentation corpora."""

    def __init__(
        self,
        datasets: tuple[str, ...] = ("docs", "guides"),
        strategy: str = "naive",
        chunk_size: int = 400,
        top_k: int = 4,
    ) -> None:
        if strategy not in STRATEGIES:
            raise RAGError(f"unknown chunking strategy '{strategy}'")
        unknown = [d for d in datasets if d not in DATASETS]
        if unknown:
            raise RAGError(f"unknown datasets {unknown}; choose from {sorted(DATASETS)}")
        self.datasets = datasets
        self.strategy = strategy
        self.top_k = top_k
        self.store = VectorStore()
        chunks: list[Chunk] = []
        for name in datasets:
            for doc_id, text in DATASETS[name].items():
                if strategy == "naive":
                    chunks.extend(naive_chunks(f"{name}/{doc_id}", text, chunk_size))
                else:
                    chunks.extend(
                        code_aware_chunks(f"{name}/{doc_id}", text, chunk_size + 200)
                    )
        self.store.add(chunks)

    def retrieve(self, query: str, top_k: int | None = None) -> list[Hit]:
        """Top-k hits for a prompt."""
        return self.store.search(query, top_k or self.top_k)

    def retrieve_texts(self, query: str, top_k: int | None = None) -> list[str]:
        """Hit texts only — the shape the generation model consumes."""
        return [hit.chunk.text for hit in self.retrieve(query, top_k)]

    #: Standing API queries: code-generation RAG pipelines pin the core API
    #: reference (building + executing circuits) into every context window —
    #: algorithm-flavoured prompts alone rarely retrieve the migration notes
    #: that actually fix stale-API emissions.
    API_CONTEXT_QUERIES = (
        "backend run job result get_counts execute Aer removed migration",
        "QuantumCircuit gate methods cu1 u3 toffoli removed migration",
    )

    def retrieve_context(self, query: str, top_k: int | None = None) -> list[str]:
        """Prompt-driven hits plus the pinned API-reference context."""
        texts = self.retrieve_texts(query, top_k)
        if "docs" in self.datasets:
            for api_query in self.API_CONTEXT_QUERIES:
                for text in self.retrieve_texts(api_query, 1):
                    if text not in texts:
                        texts.append(text)
        return texts

    def augment_prompt(self, prompt: str, top_k: int | None = None) -> str:
        """Render the paper-style augmented prompt (context + question)."""
        hits = self.retrieve(prompt, top_k)
        if not hits:
            return prompt
        context = "\n---\n".join(hit.chunk.text for hit in hits)
        return (
            "Use the following documentation context to answer.\n"
            f"### Context\n{context}\n### Task\n{prompt}"
        )
