"""Integration tests: experiment drivers and cross-layer flows at small scale."""

import numpy as np
import pytest

from repro.experiments import ablations, figure2, figure3, figure4, multipass, table1


class TestExperimentDrivers:
    def test_figure3_small(self):
        experiment, results = figure3.run(samples_per_task=1, base_seed=5)
        assert len(results) == 6
        assert len(experiment.rows) >= 6
        rendered = experiment.render()
        assert "figure3" in rendered

    def test_table1_small(self):
        experiment, results = table1.run(samples_per_task=1, base_seed=5)
        assert len(results) == 5
        assert any("syntactic" in row.name for row in experiment.rows)

    def test_multipass_small(self):
        experiment, results = multipass.run(
            max_passes=3, samples_per_task=1, base_seed=5
        )
        curve = [r.accuracy() for r in results]
        assert len(curve) == 3
        # Paired seeds: repair never hurts at small scale either.
        assert curve[-1] >= curve[0] - 1e-9

    def test_figure2_trace(self):
        experiment = figure2.run(shots_for_stats=40)
        assert experiment.measured("decoder clears the final syndrome") == 100.0
        trace = experiment.extras[0]
        assert "(a)" in trace and "(c)" in trace

    def test_figure4(self):
        experiment = figure4.run(shots=1024, seed=2)
        assert experiment.measured(
            "P(|000>) after QEC corrections (c)"
        ) >= experiment.measured("P(|000>) on noisy Brisbane (b)") - 1.0

    def test_topology_ablation(self):
        experiment = ablations.topology_ablation()
        assert experiment.measured("grid-5x5") == 100.0
        assert experiment.measured("brisbane") == 0.0


class TestCrossLayerFlows:
    def test_generated_code_runs_on_real_backend_stack(self):
        """Code emitted by the LLM executes against the actual SDK."""
        from repro.agents.sandbox import run_code
        from repro.llm.model import make_model

        model = make_model(fine_tuned=True, prompt_style="scot")
        clean = 0
        for seed in range(20):
            completion = model.generate(
                "Prepare a 3-qubit GHZ cat state, measure every qubit",
                np.random.default_rng(seed),
                params={"n": 3},
            )
            if completion.is_clean:
                result = run_code(completion.code)
                assert result.ok
                counts = result.artifact("counts")
                assert set(counts) <= {"000", "111"}
                clean += 1
        assert clean > 8

    def test_full_pipeline_with_qec_on_grid_device(self):
        from repro.agents import Orchestrator, QECAgent
        from repro.llm.model import make_model
        from repro.llm.synthesis import synthesize
        from repro.quantum.backend import NoisySimulator
        from repro.quantum.noise import NoiseModel
        from repro.quantum.topology import CouplingMap

        backend = NoisySimulator(
            NoiseModel.uniform_depolarizing(3e-4, 8e-3, 1e-2),
            CouplingMap.grid(5, 5),
            name="grid-device",
        )
        orchestrator = Orchestrator(
            model=make_model(fine_tuned=True, prompt_style="scot"),
            qec_agent=QECAgent(distance=3, shots=80, seed=3),
            max_passes=3,
        )
        artifact = orchestrator.run_episode(
            "Create a Bell state (the Phi+ EPR pair) on two qubits, measure "
            "both qubits, and run the circuit on a simulator.",
            reference_code=synthesize("bell", {}, "correct"),
            seed=11,
            target_backend=backend,
            apply_qec=True,
        )
        assert artifact.qec is not None
        assert 0 < artifact.qec.suppression_factor <= 1.0

    def test_finetuned_lm_prefers_modern_api(self):
        """The trained n-gram model scores modern idioms better than legacy
        ones rarely seen after filtering."""
        from repro.llm.corpus import build_corpus
        from repro.llm.finetune import fine_tune

        model, report = fine_tune(build_corpus(seed=3))
        modern = model.perplexity(
            "backend = LocalSimulator()\ncounts = backend.run(qc).result().get_counts()\n"
        )
        gibberish = model.perplexity("zzz qqq www flibber jabber wock\n")
        assert modern < gibberish
        assert report.legacy_share < 0.05
