"""The EXPERIMENTS.md generator renders a complete report."""

from repro.experiments.generate_report import COMMANDS, HEADER, render
from repro.experiments.common import ExperimentResult


def test_render_structure():
    exp = ExperimentResult("figure3", "demo title")
    exp.add("row", 10.0, 11.0)
    text = render([("Figure 3 — demo", exp)])
    assert text.startswith("# EXPERIMENTS")
    assert "## Figure 3 — demo" in text
    assert COMMANDS["Figure 3"] in text
    assert "10.0%" in text and "11.0%" in text
    assert "Notes on fidelity" in text


def test_every_command_module_exists():
    import importlib

    for cmd in COMMANDS.values():
        module = cmd.split()[-1]
        assert importlib.import_module(module)
