"""Distributed evaluation: end-to-end parity and fault injection.

Acceptance for the dispatch tentpole: ``evaluate`` with a localhost
``eval-worker`` produces **bit-identical** ``EvalResult``s (outcomes *and*
per-arm execution stats) to the ``workers=1`` serial run — including under
injected faults: workers that die mid-chunk, return corrupt payloads,
double-complete a lease, or heartbeat and then vanish.  The coordinator must
requeue exactly once per fault and never fold an outcome twice.
"""

import base64
import pickle
import threading

import pytest

from repro.evalsuite.runner import (
    PipelineSettings,
    _run_task_chunk,
    distributed,
    evaluate,
)
from repro.evalsuite.suite import build_suite
from repro.llm.faults import ModelConfig
from repro.quantum.execution import ExecutionService, set_default_service
from repro.quantum.execution.dispatch import (
    DispatchClient,
    EvalCoordinator,
    run_chunk_payload,
    run_worker,
)
from tests.evalsuite.test_parallel_eval import outcome_key


@pytest.fixture
def fresh_service():
    """A cold shared service per test, restored afterwards."""
    service = ExecutionService()
    set_default_service(service)
    yield service
    set_default_service(None, shutdown_previous=True)


@pytest.fixture(scope="module")
def bank():
    return build_suite()[:3]


@pytest.fixture(scope="module")
def settings():
    return PipelineSettings(
        ModelConfig("3b", True), samples_per_task=1, label="dist"
    )


@pytest.fixture(scope="module")
def serial_reference(bank, settings):
    """The ground truth every distributed topology must reproduce, computed
    once on its own cold service."""
    service = ExecutionService()
    set_default_service(service)
    try:
        return evaluate(settings, bank, workers=1)
    finally:
        set_default_service(None, shutdown_previous=True)


def make_coordinator(tmp_path, **kwargs) -> EvalCoordinator:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("fallback_workers", 0)  # force remote execution
    kwargs.setdefault("lease_timeout", 0.4)
    return EvalCoordinator(tmp_path / "store", **kwargs).start()


def evaluate_in_background(settings, bank, coordinator):
    """Kick off the coordinator-side evaluate; returns (thread, result box)."""
    box = {}

    def run():
        box["result"] = evaluate(settings, bank, coordinator=coordinator)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


def assert_identical(result, reference):
    assert outcome_key(result) == outcome_key(reference)
    assert result.execution_stats == reference.execution_stats
    assert result.label == reference.label
    assert result.accuracy() == reference.accuracy()


class TestParity:
    def test_localhost_worker_bit_identical_to_serial(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """The acceptance criterion: a real worker over real HTTP, results
        byte-for-byte equal to the serial runner — outcomes and stats.

        (One sequential worker: like the serial loop it executes chunks one
        at a time against one service, so even the hit/miss/dedup split is
        reproduced exactly, not just the outcomes.)"""
        coordinator = make_coordinator(tmp_path)
        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker,
            args=(coordinator.url,),
            kwargs=dict(
                workers=1, poll_interval=0.02, heartbeat_interval=0.1,
                stop=stop,
            ),
            daemon=True,
        )
        worker.start()
        try:
            result = evaluate(settings, bank, coordinator=coordinator)
        finally:
            stop.set()
            worker.join(timeout=10)
            coordinator.stop()
        assert_identical(result, serial_reference)
        status = coordinator.queue.status()
        assert status["done"] == status["total"] == len(bank)
        assert status["requeues"] == 0

    def test_local_fallback_when_no_worker_attaches(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """No fleet, no problem: the coordinator's own pool drains the queue
        after the grace period, bit-identical to serial."""
        coordinator = make_coordinator(
            tmp_path, fallback_workers=1, fallback_grace=0.05
        )
        try:
            result = evaluate(settings, bank, coordinator=coordinator)
        finally:
            coordinator.stop()
        assert_identical(result, serial_reference)

    def test_ambient_distribution_routes_through_coordinator(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        coordinator = make_coordinator(
            tmp_path, fallback_workers=1, fallback_grace=0.05
        )
        try:
            with distributed(coordinator):
                result = evaluate(settings, bank)
        finally:
            coordinator.stop()
        assert_identical(result, serial_reference)
        assert coordinator.queue.status()["done"] == len(bank)

    def test_remote_requires_a_coordinator(self, bank, settings):
        with pytest.raises(ValueError, match="coordinator"):
            evaluate(settings, bank, distribution="remote")

    def test_unpicklable_chunks_downgrade_to_local(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """A payload the dispatch transport cannot ship (closure checker)
        must run locally, not crash the evaluation."""
        import dataclasses

        bad_bank = list(bank)
        # A non-picklable item anywhere in the calls downgrades the run.
        bad_bank[0] = dataclasses.replace(
            bad_bank[0], checker=lambda namespace: True
        )
        coordinator = make_coordinator(tmp_path, fallback_workers=1)
        try:
            result = evaluate(settings, bad_bank, coordinator=coordinator)
        finally:
            coordinator.stop()
        # Nothing ever reached the queue: the run completed locally.
        assert coordinator.queue.status()["total"] == 0
        assert len(result.outcomes) == len(bank)


class TestFaultInjection:
    def test_worker_dies_mid_chunk_requeues_exactly_once(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """A worker leases a chunk and crashes: after lease expiry the chunk
        is requeued (exactly once) and a healthy worker completes the run
        with results still bit-identical to serial."""
        coordinator = make_coordinator(tmp_path, lease_timeout=0.3)
        thread, box = evaluate_in_background(settings, bank, coordinator)
        client = DispatchClient(coordinator.url)
        # The doomed worker takes one chunk to its grave.
        doomed = _lease_retrying(client, "doomed")
        dead_chunk = doomed["chunk"]
        # A healthy worker drains everything else — and, once the dead
        # worker's lease expires, its requeued chunk too.
        stop = threading.Event()
        healthy = threading.Thread(
            target=run_worker,
            args=(coordinator.url,),
            kwargs=dict(
                workers=1, poll_interval=0.02, heartbeat_interval=0.1,
                stop=stop, worker_id="healthy",
            ),
            daemon=True,
        )
        healthy.start()
        thread.join(timeout=60)
        stop.set()
        healthy.join(timeout=10)
        coordinator.stop()
        assert not thread.is_alive()
        assert_identical(box["result"], serial_reference)
        assert coordinator.queue.requeues == {dead_chunk: 1}
        # The dead worker's stale completion would now be rejected.
        assert client.complete(int(doomed["lease"]), b"zombie") is False

    def test_heartbeat_then_vanish_requeues_after_expiry(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """Heartbeats keep a lease alive; silence kills it."""
        coordinator = make_coordinator(tmp_path, lease_timeout=0.4)
        thread, box = evaluate_in_background(settings, bank, coordinator)
        client = DispatchClient(coordinator.url)
        flaky = _lease_retrying(client, "flaky")
        lease_id = int(flaky["lease"])
        # Prove heartbeats extend the lease well past its original deadline.
        import time

        for _ in range(4):
            time.sleep(0.2)
            assert client.heartbeat(lease_id, "flaky") is True
        assert coordinator.queue.status()["leased"] >= 1
        # ...then vanish without completing.  Finish the run with a healthy
        # worker; the vanished chunk comes back via expiry.
        stop = threading.Event()
        healthy = threading.Thread(
            target=run_worker,
            args=(coordinator.url,),
            kwargs=dict(
                workers=1, poll_interval=0.02, heartbeat_interval=0.1,
                stop=stop, worker_id="healthy",
            ),
            daemon=True,
        )
        healthy.start()
        thread.join(timeout=60)
        stop.set()
        healthy.join(timeout=10)
        coordinator.stop()
        assert_identical(box["result"], serial_reference)
        assert coordinator.queue.requeues == {int(flaky["chunk"]): 1}

    def test_corrupt_result_payload_is_rejected_and_requeued(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """A byzantine worker uploads garbage: the coordinator must reject
        it (HTTP 400), requeue the chunk exactly once, and fold only the
        healthy re-execution."""
        import json
        import urllib.error
        import urllib.request

        coordinator = make_coordinator(tmp_path, lease_timeout=5.0)
        thread, box = evaluate_in_background(settings, bank, coordinator)
        client = DispatchClient(coordinator.url)
        byzantine = _lease_retrying(client, "byzantine")
        lease_id = int(byzantine["lease"])
        body = json.dumps(
            {
                "lease": lease_id,
                "result": base64.b64encode(b"not a pickle").decode(),
            }
        ).encode()
        request = urllib.request.Request(
            f"{coordinator.url}/work/complete", data=body, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=5)
        assert info.value.code == 400
        # The chunk went straight back to pending — no expiry wait needed.
        chunk = int(byzantine["chunk"])
        assert coordinator.queue.requeues == {chunk: 1}
        stop = threading.Event()
        healthy = threading.Thread(
            target=run_worker,
            args=(coordinator.url,),
            kwargs=dict(
                workers=1, poll_interval=0.02, heartbeat_interval=0.1,
                stop=stop, worker_id="healthy",
            ),
            daemon=True,
        )
        healthy.start()
        thread.join(timeout=60)
        stop.set()
        healthy.join(timeout=10)
        coordinator.stop()
        assert_identical(box["result"], serial_reference)
        assert coordinator.queue.requeues == {chunk: 1}

    def test_double_complete_folds_exactly_once(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """A worker retrying its completion (network flake, duplicate POST)
        must not double-count the outcome."""
        coordinator = make_coordinator(tmp_path, lease_timeout=10.0)
        thread, box = evaluate_in_background(settings, bank, coordinator)
        client = DispatchClient(coordinator.url)
        # Run every chunk by hand, completing each one twice.
        completed = 0
        while completed < len(bank):
            doc = client.lease("dup")
            if doc is None or doc.get("empty"):
                import time

                time.sleep(0.02)
                continue
            outcome = run_chunk_payload(base64.b64decode(doc["payload"]))
            assert client.complete(int(doc["lease"]), outcome, "dup") is True
            assert client.complete(int(doc["lease"]), outcome, "dup") is False
            completed += 1
        thread.join(timeout=60)
        coordinator.stop()
        assert_identical(box["result"], serial_reference)
        status = coordinator.queue.status()
        assert status["done"] == status["total"] == len(bank)
        assert status["requeues"] == 0

    def test_expired_then_both_complete_single_fold(self, tmp_path):
        """The classic split-brain: worker A's lease expires, worker B
        re-leases the chunk, then *both* complete.  Exactly one fold wins and
        the folded result is byte-identical either way (deterministic
        chunks)."""
        coordinator = make_coordinator(tmp_path, lease_timeout=0.2)
        try:
            queue = coordinator.queue
            payload = pickle.dumps((_double, (21,)))
            queue.add_chunks([payload])
            client = DispatchClient(coordinator.url)
            a = client.lease("worker-a")
            import time

            time.sleep(0.3)  # lease A expires
            b = client.lease("worker-b")
            assert b is not None and not b.get("empty")
            assert int(b["lease"]) > int(a["lease"])  # monotonic re-lease
            outcome = run_chunk_payload(payload)
            assert client.complete(int(b["lease"]), outcome) is True
            assert client.complete(int(a["lease"]), outcome) is False
            assert queue.status()["done"] == 1
            assert queue.requeues == {0: 1}
            # The HTTP layer folded the decoded outcome exactly once.
            assert queue.next_result(timeout=1) == (0, ("ok", 42))
        finally:
            coordinator.stop()


class TestRestartResume:
    def test_killed_coordinator_resumes_bit_identically_from_job_store(
        self, tmp_path, fresh_service, bank, settings, serial_reference
    ):
        """Acceptance for the job-store tentpole: a coordinator killed with
        queued *and* leased chunks (one outcome already persisted) is
        restarted over the same job store, and the resumed evaluation is
        bit-identical to the uninterrupted serial run — the persisted chunk
        re-folds from disk, the rest re-execute."""
        from repro.quantum.execution.dispatch import encode_chunk
        from repro.quantum.execution.jobstore import JobStore

        job_dir = tmp_path / "jobs"
        # The exact payloads evaluate() will build for this settings/bank.
        payloads = [
            encode_chunk(_run_task_chunk, (settings, task)) for task in bank
        ]
        digests = [JobStore.digest_of(p) for p in payloads]

        # --- first life: accept every chunk, complete exactly one ---------
        first = EvalCoordinator(
            tmp_path / "store1", fallback_workers=0, job_store=job_dir,
            lease_timeout=30.0,
        ).start()
        for digest, payload in zip(digests, payloads):
            first.job_store.record(digest, payload)
        first.queue.add_chunks(payloads)
        client = DispatchClient(first.url)
        # A real worker executes chunk 0 over HTTP and the outcome is
        # persisted (the folding loop writes the store *before* folding)...
        done = client.lease("worker-1")
        outcome = run_chunk_payload(base64.b64decode(done["payload"]))
        assert client.complete(int(done["lease"]), outcome, "worker-1")
        folded = first.queue.next_result(timeout=5)
        assert folded is not None and folded[0] == int(done["chunk"])
        first.job_store.complete(
            digests[folded[0]],
            pickle.dumps(folded[1], protocol=pickle.HIGHEST_PROTOCOL),
        )
        # ...a second chunk is mid-execution (leased, never completed)...
        leased = client.lease("worker-2")
        assert leased and not leased.get("empty")
        # ...and the coordinator dies: in-memory queue and leases vanish,
        # only the job store survives.
        first.stop()
        assert JobStore(job_dir).counts() == {"pending": 2, "done": 1}

        # --- second life: same job store, fresh everything else -----------
        second = make_coordinator(
            tmp_path, job_store=job_dir, fallback_workers=1,
            fallback_grace=0.05,
        )
        try:
            result = evaluate(settings, bank, coordinator=second)
        finally:
            second.stop()
        assert_identical(result, serial_reference)
        # Only the two unfinished chunks were ever queued for execution;
        # the completed one was restored from disk, not re-run.
        assert second.queue.status()["total"] == len(bank) - 1
        # A cleanly resumed run retires its records.
        assert len(JobStore(job_dir)) == 0


class TestChunkCodec:
    def test_failing_chunk_reraises_at_fold_time(self, tmp_path):
        from repro.quantum.execution.dispatch import decode_result, encode_chunk

        blob = run_chunk_payload(encode_chunk(_explode, ()))
        with pytest.raises(RuntimeError, match="boom"):
            decode_result(blob)

    def test_run_task_chunk_payload_roundtrip(self, fresh_service, bank, settings):
        """The real eval chunk survives the dispatch codec bit-identically."""
        from repro.quantum.execution.dispatch import decode_result, encode_chunk

        direct = _run_task_chunk(settings, bank[0])
        set_default_service(ExecutionService())  # cold again: same counters
        via_codec = decode_result(
            run_chunk_payload(encode_chunk(_run_task_chunk, (settings, bank[0])))
        )
        assert via_codec == direct


def _lease_retrying(client: DispatchClient, worker: str) -> dict:
    """Lease one chunk, waiting out the race with evaluate() queueing them."""
    import time

    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        document = client.lease(worker)
        if document is not None and not document.get("empty"):
            return document
        time.sleep(0.02)
    raise AssertionError("no chunk became leasable within 30s")


def _double(x):
    return x * 2


def _explode():
    raise RuntimeError("boom")
