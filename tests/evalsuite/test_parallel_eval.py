"""The parallel evaluation engine: parity, attribution, and plumbing.

Acceptance for the engine: ``evaluate(..., workers=N)`` is bit-identical to
the serial runner for any N; per-arm ``execution_stats`` are exact and
non-overlapping while arms run concurrently; the old counter-bleed between
concurrent ``evaluate`` calls is gone.
"""

import threading

import pytest

from repro.evalsuite.reporting import progress_printer
from repro.evalsuite.runner import (
    PipelineSettings,
    evaluate,
    evaluate_many,
)
from repro.evalsuite.suite import build_suite
from repro.llm.faults import ModelConfig
from repro.quantum.execution import ExecutionService, set_default_service
from repro.utils.parallel import parallel_map, resolve_workers


def outcome_key(result):
    """Everything observable about an arm's outcomes, for parity checks."""
    return [
        (
            o.case_id,
            o.tier,
            o.family,
            o.samples,
            o.syntactic_successes,
            o.full_successes,
            o.semantic_unknown,
            o.static_errors,
            tuple(o.passes_used),
        )
        for o in result.outcomes
    ]


@pytest.fixture
def fresh_service():
    """A cold shared service per test, restored afterwards."""
    service = ExecutionService()
    set_default_service(service)
    yield service
    set_default_service(None, shutdown_previous=True)


@pytest.fixture(scope="module")
def bank():
    return build_suite()[:6]


class TestSerialParallelParity:
    def test_workers_bit_identical(self, fresh_service, bank):
        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="parity"
        )
        serial = evaluate(settings, bank, workers=1)
        wide = evaluate(settings, bank, workers=8)
        assert outcome_key(serial) == outcome_key(wide)
        assert serial.accuracy() == wide.accuracy()
        assert serial.label == wide.label

    def test_settings_workers_and_env(self, fresh_service, bank, monkeypatch):
        settings = PipelineSettings(
            ModelConfig("3b", True),
            samples_per_task=2,
            label="parity-env",
            workers=4,
        )
        via_settings = evaluate(settings, bank)
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "3")
        via_env = evaluate(
            PipelineSettings(
                ModelConfig("3b", True), samples_per_task=2, label="parity-env"
            ),
            bank,
        )
        assert outcome_key(via_settings) == outcome_key(via_env)

    def test_evaluate_many_matches_sequential_evaluates(
        self, fresh_service, bank
    ):
        arms = [
            PipelineSettings(
                ModelConfig("3b", False), samples_per_task=2, label="arm-base"
            ),
            PipelineSettings(
                ModelConfig("3b", True), samples_per_task=2, label="arm-ft"
            ),
        ]
        combined = evaluate_many(arms, bank, workers=4)
        separate = [evaluate(s, bank, workers=1) for s in arms]
        assert [r.label for r in combined] == [r.label for r in separate]
        for c, s in zip(combined, separate):
            assert outcome_key(c) == outcome_key(s)

    def test_thread_mode_parity(self, fresh_service, bank):
        """The thread fallback produces the same outcomes as processes."""
        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="thread-par"
        )
        serial = evaluate(settings, bank, workers=1)
        calls = [(settings, task) for task in bank]
        from repro.evalsuite.runner import _run_task_chunk

        threaded = parallel_map(_run_task_chunk, calls, 4, prefer="thread")
        assert [
            (o.syntactic_successes, o.full_successes, tuple(o.passes_used))
            for o in serial.outcomes
        ] == [(t[0], t[1], tuple(t[4])) for t in threaded]


class TestExactAttribution:
    def test_concurrent_evaluates_do_not_bleed(self, fresh_service, bank):
        """Regression: per-arm stats used to absorb *everyone's* work."""
        arm_a = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="arm-a"
        )
        arm_b = PipelineSettings(
            ModelConfig("3b", False), samples_per_task=2, label="arm-b"
        )
        # Reference: each arm alone on a cold service.
        solo = {}
        for arm in (arm_a, arm_b):
            set_default_service(ExecutionService())
            solo[arm.label] = evaluate(arm, bank, workers=1)
        # Now run both concurrently on one cold shared service.
        service = ExecutionService()
        set_default_service(service)
        before = service.stats()
        results = {}

        def run(arm):
            results[arm.label] = evaluate(arm, bank, workers=1)

        threads = [threading.Thread(target=run, args=(arm,)) for arm in (arm_a, arm_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = service.stats()

        for label, result in results.items():
            stats = result.execution_stats
            ref = solo[label].execution_stats
            # Outcomes are unaffected by concurrency...
            assert outcome_key(result) == outcome_key(solo[label])
            # ...and the arm's *lookup volume* is its own deterministic
            # number, not inflated by the other arm's traffic.
            assert (
                stats["cache_hits"] + stats["cache_misses"]
                == ref["cache_hits"] + ref["cache_misses"]
            )
            # Every miss was resolved by own work, never by phantom counts.
            assert stats["cache_misses"] == (
                stats["simulations"] + stats["simulations_deduped"]
            )
        # The scoped counters partition the service totals exactly.
        for key in ("simulations", "simulations_deduped", "cache_hits",
                    "cache_misses"):
            global_delta = int(after[key]) - int(before[key])
            scoped = sum(r.execution_stats[key] for r in results.values())
            assert scoped == global_delta, key

    def test_callers_ambient_scope_sees_totals_in_every_mode(
        self, fresh_service, bank
    ):
        """A surrounding stats_scope observes the same numbers whether the
        episodes ran inline or on worker processes (regression: process mode
        used to leave the caller's scope at zero)."""
        from repro.quantum.execution import stats_scope

        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="ambient"
        )
        with stats_scope() as inline_scope:
            inline = evaluate(settings, bank, workers=1)
        assert inline_scope.as_dict() == inline.execution_stats

        set_default_service(ExecutionService())
        with stats_scope() as parallel_scope:
            parallel = evaluate(settings, bank, workers=4)
        assert parallel_scope.as_dict() == parallel.execution_stats

    def test_parallel_stats_cover_worker_activity(self, fresh_service, bank):
        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="scoped-par"
        )
        result = evaluate(settings, bank, workers=4)
        stats = result.execution_stats
        # Work happened somewhere (worker processes or threads) and was
        # attributed: every miss is matched by a simulation or a dedup.
        assert stats["cache_hits"] + stats["cache_misses"] > 0
        assert stats["cache_misses"] == (
            stats["simulations"] + stats["simulations_deduped"]
        )


class TestEnginePlumbing:
    def test_progress_callback_counts_chunks(self, fresh_service, bank):
        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=1, label="progress"
        )
        seen = []
        evaluate(settings, bank, workers=2, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(i + 1, len(bank)) for i in range(len(bank))]

    def test_progress_printer_renders(self):
        import io

        stream = io.StringIO()
        progress = progress_printer("demo", stream=stream)
        progress(1, 2)
        progress(2, 2)
        text = stream.getvalue()
        assert "demo" in text and "2/2" in text and text.endswith("\n")

    def test_resolve_workers_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_WORKERS", raising=False)
        assert resolve_workers(None, None) == 1
        assert resolve_workers(5, 2) == 5
        assert resolve_workers(None, 2) == 2
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "7")
        assert resolve_workers(None, None) == 7
        assert resolve_workers(3, None) == 3
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "zero")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers(None)
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_parallel_map_orders_and_raises(self):
        assert parallel_map(_square, [(i,) for i in range(7)], 3) == [
            i * i for i in range(7)
        ]
        assert parallel_map(_square, [(3,)], 8) == [9]  # single item inline
        with pytest.raises(ZeroDivisionError):
            parallel_map(_inverse, [(1,), (0,), (2,)], 2)
        with pytest.raises(ValueError):
            parallel_map(_square, [(1,)], 2, prefer="rocket")

    def test_parallel_map_unpicklable_falls_back_to_threads(self):
        captured = []

        def closure(x):  # not picklable -> thread fallback
            captured.append(x)
            return x + 1

        assert parallel_map(closure, [(i,) for i in range(5)], 3) == [
            1, 2, 3, 4, 5
        ]
        assert sorted(captured) == [0, 1, 2, 3, 4]

    def test_parallel_map_heterogeneous_unpicklable_item_falls_back(self):
        """One bad item anywhere downgrades the whole run to threads —
        never a mid-pool PicklingError."""
        calls = [(1,), (lambda: 2,), (3,)]
        results = parallel_map(_identity, calls, 2)
        assert results[0] == 1
        assert callable(results[1]) and results[1]() == 2
        assert results[2] == 3


def _square(x):
    return x * x


def _inverse(x):
    return 1 / x


def _identity(x):
    return x
