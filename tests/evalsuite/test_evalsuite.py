"""Evaluation machinery: pass@k, task banks, runner, reporting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EvaluationError
from repro.evalsuite.passk import mean_pass_at_k, pass_at_k
from repro.evalsuite.qhe import build_qhe, qhe_cases
from repro.evalsuite.reporting import accuracy_bars, comparison_table, per_family_table
from repro.evalsuite.runner import EvalResult, PipelineSettings, TaskOutcome, evaluate
from repro.evalsuite.suite import build_suite, build_task
from repro.llm.faults import ModelConfig
from repro.agents.semantic import SemanticAnalyzerAgent


class TestPassAtK:
    def test_all_correct(self):
        assert pass_at_k(10, 10, 1) == 1.0

    def test_none_correct(self):
        assert pass_at_k(10, 0, 5) == 0.0

    def test_known_value(self):
        # n=2, c=1, k=1: 1 - C(1,1)/C(2,1) = 0.5
        assert pass_at_k(2, 1, 1) == pytest.approx(0.5)

    def test_k_equals_n(self):
        assert pass_at_k(5, 1, 5) == 1.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            pass_at_k(0, 0, 1)
        with pytest.raises(EvaluationError):
            pass_at_k(5, 6, 1)
        with pytest.raises(EvaluationError):
            pass_at_k(5, 2, 6)

    @given(
        n=st.integers(min_value=1, max_value=30),
        c=st.integers(min_value=0, max_value=30),
        k=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounds_and_monotonicity(self, n, c, k):
        if c > n or k > n:
            return
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0
        assert value >= c / n - 1e-12  # pass@k >= pass@1 estimate
        if k < n:
            assert pass_at_k(n, c, k + 1) >= value - 1e-12

    def test_mean(self):
        assert mean_pass_at_k([(2, 1), (2, 2)], 1) == pytest.approx(0.75)

    def test_mean_empty_bank_is_zero_like_accuracy(self):
        # Consistent with EvalResult.accuracy() on an empty outcome list:
        # reporting over a filtered-empty tier must not crash.
        assert mean_pass_at_k([], 1) == 0.0
        empty = EvalResult(label="empty", outcomes=[])
        assert empty.accuracy() == 0.0
        assert empty.pass_at_k(1) == 0.0
        assert empty.accuracy_by_tier() == {}


class TestBanks:
    def test_suite_references_all_pass_self_grading(self):
        analyzer = SemanticAnalyzerAgent()
        for task in build_suite():
            report = analyzer.analyze(
                task.reference_code, task.reference_code, task.checker
            )
            assert report.passed, task.case_id

    def test_qhe_references_all_pass_self_grading(self):
        analyzer = SemanticAnalyzerAgent()
        for task in build_qhe():
            report = analyzer.analyze(
                task.reference_code, task.reference_code, task.checker
            )
            assert report.passed, task.case_id

    def test_qhe_mix_is_syntax_heavy(self):
        cases = qhe_cases()
        basic = sum(1 for c in cases if c.tier == "basic") / len(cases)
        assert basic >= 0.55

    def test_build_task_attaches_checker_only_where_needed(self):
        suite = build_suite()
        qasm_tasks = [t for t in suite if t.case.family == "qasm_io"]
        other = [t for t in suite if t.case.family != "qasm_io"]
        assert all(t.checker is not None for t in qasm_tasks)
        assert all(t.checker is None for t in other)


class TestRunner:
    @pytest.fixture(scope="class")
    def small_bank(self):
        return build_suite()[:6]

    def test_deterministic(self, small_bank):
        settings_ = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=2, label="det-test"
        )
        a = evaluate(settings_, small_bank)
        b = evaluate(settings_, small_bank)
        assert a.accuracy() == b.accuracy()
        assert [o.full_successes for o in a.outcomes] == [
            o.full_successes for o in b.outcomes
        ]

    def test_seed_label_pairing(self, small_bank):
        one = PipelineSettings(
            ModelConfig("3b", True), max_passes=1, samples_per_task=2,
            label="arm-a", seed_label="shared",
        )
        three = PipelineSettings(
            ModelConfig("3b", True), max_passes=3, samples_per_task=2,
            label="arm-b", seed_label="shared",
        )
        r1 = evaluate(one, small_bank)
        r3 = evaluate(three, small_bank)
        # Paired generations: repair can only help.
        assert r3.accuracy() >= r1.accuracy() - 1e-9

    def test_metrics_consistency(self, small_bank):
        settings_ = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=3, label="metrics"
        )
        result = evaluate(settings_, small_bank)
        assert 0.0 <= result.accuracy() <= result.syntactic_accuracy() <= 1.0
        tiers = result.accuracy_by_tier()
        assert set(tiers) <= {"basic", "intermediate", "advanced"}
        low, high = result.confidence_interval()
        assert low <= result.accuracy() <= high
        assert result.pass_at_k(1) == pytest.approx(result.accuracy(), abs=1e-9)
        # Every suite task carries a reference or a checker, so no sample
        # should be counted as a success without a semantic verdict.
        assert result.semantic_unknown_count() == 0
        assert result.semantic_unknown_rate() == 0.0

    def test_accuracy_by_tier_skips_empty_tiers(self):
        result = EvalResult(
            label="tiers",
            outcomes=[
                TaskOutcome("t1", "basic", "bell", 2, 2, 1, [1, 1]),
                # A tier whose outcomes carry zero samples must yield *no*
                # entry — not a fake 0.0 accuracy.
                TaskOutcome("t2", "advanced", "qft", 0, 0, 0, []),
            ],
        )
        tiers = result.accuracy_by_tier()
        assert tiers == {"basic": pytest.approx(0.5)}
        assert "advanced" not in tiers

    def test_semantic_unknown_is_surfaced(self):
        result = EvalResult(
            label="unknown",
            outcomes=[
                TaskOutcome(
                    "t1", "basic", "bell", 4, 4, 3, [1] * 4, semantic_unknown=2
                ),
                TaskOutcome("t2", "basic", "ghz", 4, 4, 4, [1] * 4),
            ],
        )
        assert result.semantic_unknown_count() == 2
        assert result.semantic_unknown_rate() == pytest.approx(0.25)
        rendered = comparison_table([result]).render()
        assert "Ungraded" in rendered

    def test_display_label(self):
        settings_ = PipelineSettings(ModelConfig("3b", True), max_passes=3)
        assert settings_.display_label() == "3B-QK+MP3"

    def test_display_label_carries_optimization_level(self):
        settings_ = PipelineSettings(
            ModelConfig("3b", True), optimization_level=2
        )
        assert settings_.display_label() == "3B-QK+O2"
        # An explicit label wins outright (so a paired arm keeps the same
        # seed derivation whichever level it lowers at).
        labelled = PipelineSettings(
            ModelConfig("3b", True), optimization_level=2, label="ft"
        )
        assert labelled.display_label() == "ft"
        assert labelled.seed_scope() == PipelineSettings(
            ModelConfig("3b", True), label="ft"
        ).seed_scope()


class TestReporting:
    def _result(self):
        return EvalResult(
            label="demo",
            outcomes=[
                TaskOutcome("t1", "basic", "bell", 4, 4, 3, [1, 1, 1, 1]),
                TaskOutcome("t2", "advanced", "qft", 4, 2, 1, [1, 1, 1, 1]),
            ],
        )

    def test_comparison_table(self):
        table = comparison_table([self._result()])
        rendered = table.render()
        assert "demo" in rendered
        assert "50.0%" in rendered  # overall accuracy 4/8

    def test_accuracy_bars(self):
        bars = accuracy_bars([self._result()], "title")
        assert "demo" in bars and "#" in bars

    def test_per_family_table(self):
        rendered = per_family_table(self._result()).render()
        assert "bell" in rendered and "qft" in rendered
