"""The ``static_error`` grading outcome: QA1xx programs cost zero simulations.

Two detection paths feed the same outcome column:

* **artifact path** — the generated program builds a defective ``qc`` without
  executing it; the semantic analyzer's artifact analysis rejects it even on
  ``validate="off"`` services;
* **service path** — the program executes its circuit through a strict
  service, whose pre-flight raises ``ValidationError`` inside the sandbox.
"""

import pytest

from repro.agents.semantic import SemanticAnalyzerAgent
from repro.evalsuite.reporting import comparison_table, execution_stats_table
from repro.evalsuite.runner import (
    EvalResult,
    PipelineSettings,
    TaskOutcome,
    evaluate,
)
from repro.evalsuite.suite import build_suite
from repro.llm.faults import ModelConfig
from repro.llm.model import Completion
from repro.quantum.execution import ExecutionService, set_default_service

#: Builds an ill-formed circuit (QA102: conditional on a never-written
#: clbit) but never executes it — the artifact path must catch this.
DEFECTIVE_ARTIFACT_CODE = """\
from repro.quantum import QuantumCircuit
qc = QuantumCircuit(2, 2)
qc.h(0)
qc.append("x", [1], condition=(0, 1))
"""

#: Same defect, but the program *runs* the circuit — on a strict service the
#: pre-flight raises ValidationError before any simulation.
DEFECTIVE_EXECUTED_CODE = DEFECTIVE_ARTIFACT_CODE + """\
from repro.quantum import LocalSimulator
counts = LocalSimulator().run(qc, shots=128, seed=3).result().get_counts()
"""

CLEAN_CODE = """\
from repro.quantum import QuantumCircuit
qc = QuantumCircuit(2, 2)
qc.h(0)
qc.cx(0, 1)
qc.measure([0, 1], [0, 1])
"""


@pytest.fixture
def strict_service():
    service = ExecutionService(validate="strict")
    set_default_service(service)
    yield service
    set_default_service(None, shutdown_previous=True)


@pytest.fixture
def off_service():
    service = ExecutionService(validate="off")
    set_default_service(service)
    yield service
    set_default_service(None, shutdown_previous=True)


class StubCodegen:
    """A codegen agent that always emits the same program."""

    def __init__(self, code: str) -> None:
        self.code = code
        self.repair_traces: list[str] = []

    def _completion(self) -> Completion:
        return Completion(
            code=self.code, family="bell", tier="basic", variant="nonsense"
        )

    def generate(self, request):
        return self._completion(), None

    def repair(self, request, completion, trace, **kwargs):
        self.repair_traces.append(trace)
        return self._completion()


class TestAnalyzerStaticError:
    def test_artifact_path_rejects_without_service(self, off_service):
        report = SemanticAnalyzerAgent().analyze(DEFECTIVE_ARTIFACT_CODE)
        assert report.static_error
        assert not report.syntactic_ok
        assert not report.passed
        assert "QA102" in report.detail
        # Caught by artifact analysis alone: no execution-service traffic.
        assert off_service.stats()["simulations"] == 0

    def test_service_path_rejects_via_validation_error(self, strict_service):
        report = SemanticAnalyzerAgent().analyze(DEFECTIVE_EXECUTED_CODE)
        assert report.static_error
        assert not report.syntactic_ok
        assert report.execution.exception_type == "ValidationError"
        stats = strict_service.stats()
        assert stats["rejected_static"] == 1
        assert stats["simulations"] == 0

    def test_runtime_failures_are_not_static_errors(self, off_service):
        report = SemanticAnalyzerAgent().analyze("1 / 0\n")
        assert not report.syntactic_ok
        assert not report.static_error

    def test_clean_program_not_static(self, off_service):
        report = SemanticAnalyzerAgent().analyze(CLEAN_CODE)
        assert report.syntactic_ok
        assert not report.static_error

    def test_refine_feeds_diagnostics_to_repair(self, off_service):
        """Statically-rejected artifacts have no traceback; the repair pass
        must receive the analyzer's coded diagnostics instead."""
        codegen = StubCodegen(DEFECTIVE_ARTIFACT_CODE)
        analyzer = SemanticAnalyzerAgent()
        from repro.agents.codegen import GenerationRequest

        request = GenerationRequest(prompt_text="bell", params={}, seed=1)
        completion, _ = codegen.generate(request)
        result = analyzer.refine(
            codegen, request, completion, max_passes=2
        )
        assert result.passes_used == 2
        assert all(r.static_error for r in result.pass_reports)
        # The artifact reject has no traceback; the repair pass must be fed
        # the analyzer's coded diagnostics instead of an empty trace.
        assert codegen.repair_traces
        assert all("QA102" in trace for trace in codegen.repair_traces)


class TestEvaluateStaticErrors:
    def _settings(self, label="static-arm"):
        return PipelineSettings(
            ModelConfig("3b", True),
            samples_per_task=2,
            max_passes=1,
            label=label,
        )

    def _stub_pipeline(self, monkeypatch, code):
        from repro.evalsuite import runner

        monkeypatch.setattr(
            runner,
            "_cached_pipeline",
            lambda settings: (StubCodegen(code), SemanticAnalyzerAgent()),
        )

    def test_static_rejections_counted_with_zero_simulations(
        self, strict_service, monkeypatch
    ):
        self._stub_pipeline(monkeypatch, DEFECTIVE_EXECUTED_CODE)
        bank = build_suite()[:2]
        result = evaluate(self._settings(), bank, workers=1)
        samples = sum(o.samples for o in result.outcomes)
        assert result.static_error_count() == samples
        assert all(o.static_errors == o.samples for o in result.outcomes)
        assert all(o.syntactic_successes == 0 for o in result.outcomes)
        assert result.accuracy() == 0.0
        stats = result.execution_stats
        assert stats["rejected_static"] == samples
        assert stats["simulations"] == 0

    def test_artifact_rejections_counted_even_with_validate_off(
        self, off_service, monkeypatch
    ):
        self._stub_pipeline(monkeypatch, DEFECTIVE_ARTIFACT_CODE)
        bank = build_suite()[:2]
        result = evaluate(self._settings(), bank, workers=1)
        samples = sum(o.samples for o in result.outcomes)
        assert result.static_error_count() == samples
        assert result.execution_stats["simulations"] == 0

    def test_clean_programs_report_no_static_errors(self, off_service):
        settings = PipelineSettings(
            ModelConfig("3b", True), samples_per_task=1, label="clean-arm"
        )
        result = evaluate(settings, build_suite()[:3], workers=1)
        assert result.static_error_count() == 0


class TestReportingColumns:
    def _result(self, static=3):
        return EvalResult(
            label="demo",
            outcomes=[
                TaskOutcome(
                    "t1", "basic", "bell", 4, 1, 1, [1] * 4,
                    static_errors=static,
                ),
                TaskOutcome("t2", "advanced", "qft", 4, 4, 2, [1] * 4),
            ],
            execution_stats={
                "simulations": 5,
                "programs_validated": 8,
                "rejected_static": 3,
                "cache_hits": 0,
                "cache_misses": 5,
            },
        )

    def test_comparison_table_has_static_err_column(self):
        rendered = comparison_table([self._result()]).render()
        assert "StaticErr" in rendered
        assert "3" in rendered

    def test_static_error_count_sums_outcomes(self):
        assert self._result(static=2).static_error_count() == 2
        assert self._result(static=0).static_error_count() == 0

    def test_execution_stats_table_has_validation_columns(self):
        rendered = execution_stats_table([self._result()]).render()
        assert "Validated" in rendered and "Rejected" in rendered
        assert "8" in rendered
