"""Multi-agent framework: sandbox, analyzer, QEC agent, orchestrator."""

import numpy as np
import pytest

from repro.agents.base import AgentMessage, EpisodeLog
from repro.agents.codegen import CodeGenerationAgent, GenerationRequest
from repro.agents.orchestrator import Orchestrator
from repro.agents.qec_agent import QECAgent
from repro.agents.sandbox import run_code
from repro.agents.semantic import SemanticAnalyzerAgent
from repro.errors import TopologyError
from repro.llm.model import make_model
from repro.llm.synthesis import synthesize
from repro.quantum.backend import FakeBrisbane, LocalSimulator, NoisySimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.topology import CouplingMap


class TestSandbox:
    def test_ok_execution_exposes_namespace(self):
        result = run_code("x = 41 + 1")
        assert result.ok
        assert result.artifact("x") == 42

    def test_allowed_imports(self):
        result = run_code(
            "import math\nfrom repro.quantum import QuantumCircuit\n"
            "qc = QuantumCircuit(1)\nqc.rx(math.pi, 0)\n"
        )
        assert result.ok

    def test_blocked_import(self):
        result = run_code("import os")
        assert not result.ok
        assert "not allowed" in result.exception_message

    def test_blocked_subprocess(self):
        result = run_code("import subprocess")
        assert not result.ok

    def test_open_is_unavailable(self):
        result = run_code("open('/etc/passwd')")
        assert not result.ok
        assert result.exception_type == "NameError"

    def test_syntax_error_reported_with_line(self):
        result = run_code("qc = foo(\n")
        assert not result.ok
        assert result.exception_type == "SyntaxError"
        assert "line" in result.trace

    def test_runtime_error_trace(self):
        result = run_code("raise ValueError('boom')")
        assert not result.ok
        assert result.exception_type == "ValueError"
        assert "boom" in result.trace

    def test_stdout_captured(self):
        result = run_code("print('hello')")
        assert result.stdout == "hello\n"

    def test_deprecation_error_trace_has_migration(self):
        code = (
            "from repro.quantum import QuantumCircuit, execute\n"
            "qc = QuantumCircuit(1)\nexecute(qc, None)\n"
        )
        result = run_code(code)
        assert not result.ok
        assert "Migration" in result.trace


class TestSemanticAnalyzer:
    def test_reference_distribution_grading(self):
        analyzer = SemanticAnalyzerAgent()
        good = synthesize("bell", {}, "correct")
        report = analyzer.analyze(good, good)
        assert report.passed
        assert report.tvd == pytest.approx(0.0, abs=1e-9)

    def test_statevector_fidelity_grading(self):
        analyzer = SemanticAnalyzerAgent()
        reference = synthesize("qft", {"n": 3}, "correct")
        wrong = synthesize("qft", {"n": 3}, "structure")
        report = analyzer.analyze(wrong, reference)
        assert report.syntactic_ok
        assert report.semantic_ok is False
        assert "fidelity" in report.detail

    def test_measured_candidate_fails_statevector_task(self):
        analyzer = SemanticAnalyzerAgent()
        reference = synthesize("statevector", {"label": "01"}, "correct")
        from repro.llm.synthesis import synthesize_nonsense

        report = analyzer.analyze(synthesize_nonsense({}), reference)
        assert report.semantic_ok is False

    def test_no_reference_grades_syntax_only(self):
        analyzer = SemanticAnalyzerAgent()
        report = analyzer.analyze(synthesize("bell", {}, "correct"))
        assert report.syntactic_ok
        assert report.semantic_ok is None
        assert report.passed

    def test_checker_exceptions_count_as_failure(self):
        analyzer = SemanticAnalyzerAgent()

        def bad_checker(ns):
            raise RuntimeError("checker bug")

        report = analyzer.analyze("x = 1", checker=bad_checker)
        assert report.semantic_ok is False

    def test_broken_reference_raises(self):
        analyzer = SemanticAnalyzerAgent()
        with pytest.raises(RuntimeError, match="reference"):
            analyzer.analyze("x = 1", reference_code="this is ( not python")

    def test_refine_fixes_syntactic_fault(self):
        """Deterministic repair loop: inject a known fault, watch it heal."""
        from repro.llm.faults import inject_legacy_api
        from repro.llm.model import Completion
        from repro.utils.rng import derive_rng

        model = make_model(fine_tuned=True)
        codegen = CodeGenerationAgent(model)
        analyzer = SemanticAnalyzerAgent()
        good = synthesize("bell", {}, "correct")
        broken = inject_legacy_api(good, derive_rng(0, "t")).code
        completion = Completion(
            code=broken, family="bell", tier="basic", variant="correct",
            injected_faults=["legacy_api"], knowledge_hit=True,
        )
        request = GenerationRequest(
            prompt_text="Create a Bell state and measure both qubits",
            params={}, seed=2,
        )
        fixed = False
        for seed in range(25):
            request = GenerationRequest(
                prompt_text="Create a Bell state and measure both qubits",
                params={}, seed=seed,
            )
            refinement = analyzer.refine(
                codegen, request, completion, reference_code=good, max_passes=4
            )
            if refinement.report.passed:
                fixed = True
                assert refinement.passes_used >= 2
                break
        assert fixed, "legacy fault never repaired in 25 attempts"

    def test_refine_single_pass_does_not_repair(self):
        model = make_model(fine_tuned=True)
        codegen = CodeGenerationAgent(model)
        analyzer = SemanticAnalyzerAgent()
        request = GenerationRequest("Create a Bell state", {}, seed=1)
        completion, _ = codegen.generate(request)
        refinement = analyzer.refine(
            codegen, request, completion, max_passes=1
        )
        assert refinement.passes_used == 1


class TestQECAgent:
    def _grid_backend(self):
        return NoisySimulator(
            NoiseModel.uniform_depolarizing(3e-4, 8e-3, 1.5e-2),
            CouplingMap.grid(5, 5),
            name="grid-device",
        )

    def test_apply_on_grid_device(self):
        agent = QECAgent(distance=3, shots=100, seed=1)
        application = agent.apply(self._grid_backend())
        assert 0 < application.suppression_factor <= 1.0
        assert application.lifetime_gain >= 1.0
        assert not application.decoder.simulated_lattice
        assert application.corrected_backend.noise_model is not None

    def test_needs_coupling_map(self):
        agent = QECAgent()
        with pytest.raises(TopologyError, match="coupling map"):
            agent.apply(LocalSimulator())

    def test_needs_noise(self):
        agent = QECAgent()
        silent = NoisySimulator(
            NoiseModel(), CouplingMap.grid(5, 5), name="silent"
        )
        with pytest.raises(TopologyError, match="noiseless"):
            agent.apply(silent)

    def test_heavy_hex_needs_fallback(self):
        agent = QECAgent(shots=50)
        with pytest.raises(TopologyError):
            agent.apply(FakeBrisbane(), allow_simulated_lattice=False)
        application = agent.apply(FakeBrisbane(), allow_simulated_lattice=True)
        assert application.decoder.simulated_lattice

    def test_run_with_qec_improves_fidelity(self):
        from repro.quantum.library import ghz_state
        from repro.quantum.transpiler import transpile

        # Noise high enough that the memory experiment observes failures
        # (so the factor is a measurement, not a Wilson bound) but still
        # comfortably below the ~3% threshold where QEC stops helping.
        backend = NoisySimulator(
            NoiseModel.uniform_depolarizing(1e-3, 1.2e-2, 1.5e-2),
            CouplingMap.grid(5, 5),
            name="noisier-grid",
        )
        qc = transpile(ghz_state(3, measure=True), coupling_map=backend.coupling_map)
        agent = QECAgent(distance=3, shots=600, seed=4)
        counts, application = agent.run_with_qec(qc, backend, shots=2000, seed=4)
        assert application.suppression_factor < 1.0
        raw = backend.run(qc, shots=2000, seed=4).result().get_counts()
        good = lambda c: (c.get("000", 0) + c.get("111", 0)) / 2000  # noqa: E731
        assert good(counts) > good(raw)


class TestOrchestrator:
    def test_full_episode_with_reference(self):
        orchestrator = Orchestrator(model=make_model(fine_tuned=True), max_passes=3)
        reference = synthesize("bell", {}, "correct")
        artifact = orchestrator.run_episode(
            "Create a Bell state and measure both qubits on a simulator",
            reference_code=reference,
            seed=5,
        )
        assert artifact.code
        assert len(artifact.log.messages) >= 3
        assert artifact.log.messages[0].sender == "developer"

    def test_qec_skipped_gracefully_on_bad_topology(self):
        orchestrator = Orchestrator(model=make_model(fine_tuned=True))
        orchestrator.qec_agent = QECAgent(shots=30)
        backend = NoisySimulator(
            NoiseModel.uniform_depolarizing(1e-3, 1e-2),
            CouplingMap.ring(8),
            name="ring-device",
        )
        # Disable fallback by calling apply with strictness via monkeypatch of
        # the agent method: the orchestrator catches TopologyError.
        original_apply = orchestrator.qec_agent.apply
        orchestrator.qec_agent.apply = lambda b: original_apply(
            b, allow_simulated_lattice=False
        )
        artifact = orchestrator.run_episode(
            "Create a Bell state",
            seed=1,
            target_backend=backend,
            apply_qec=True,
        )
        assert artifact.qec is None
        assert any("skipped" in m.content for m in artifact.log.messages)

    def test_rag_retriever_auto_constructed(self):
        orchestrator = Orchestrator(
            model=make_model(fine_tuned=True, rag_docs=True)
        )
        assert orchestrator.codegen.retriever is not None
        assert orchestrator.codegen.retriever.datasets == ("docs",)

    def test_episode_log_rendering(self):
        log = EpisodeLog()
        log.record(AgentMessage("a", "kind", "content line\nsecond"))
        assert "[a/kind] content line" in log.render()
