"""RAG: embeddings, chunking, vector store, retriever."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RAGError
from repro.rag.chunking import Chunk, code_aware_chunks, naive_chunks
from repro.rag.docs import ALGORITHM_GUIDES, API_DOCS
from repro.rag.embedding import TfidfEmbedder
from repro.rag.retriever import Retriever
from repro.rag.store import VectorStore


class TestEmbedding:
    def test_embeddings_are_unit_norm(self):
        embedder = TfidfEmbedder().fit(["quantum circuit gates", "classical bits"])
        vec = embedder.embed("quantum gates")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        embedder = TfidfEmbedder().fit(["a"])
        assert np.linalg.norm(embedder.embed("")) == 0.0

    def test_similarity_reflects_shared_rare_terms(self):
        docs = [
            "the quantum fourier transform uses controlled phase gates",
            "bell pairs use a hadamard and a cnot",
            "the weather is nice today and the sun is out",
        ]
        embedder = TfidfEmbedder().fit(docs)
        query = embedder.embed("controlled phase fourier")
        sims = [TfidfEmbedder.similarity(query, embedder.embed(d)) for d in docs]
        assert sims[0] == max(sims)

    def test_dim_validation(self):
        with pytest.raises(RAGError):
            TfidfEmbedder(dim=4)

    @given(st.text(alphabet="abcdefg ", min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_max(self, text):
        if not text.strip():
            return
        embedder = TfidfEmbedder().fit([text, "unrelated corpus entry"])
        vec = embedder.embed(text)
        if np.linalg.norm(vec) == 0:
            return
        assert TfidfEmbedder.similarity(vec, vec) == pytest.approx(1.0)


class TestChunking:
    def test_naive_covers_whole_text(self):
        text = "x" * 1000
        chunks = naive_chunks("d", text, size=400, overlap=50)
        assert chunks[0].text == "x" * 400
        covered = max(c.start + len(c.text) for c in chunks)
        assert covered >= 1000

    def test_naive_overlap(self):
        text = "abcdefghij" * 50
        chunks = naive_chunks("d", text, size=100, overlap=20)
        assert chunks[1].start == 80

    def test_naive_bad_params(self):
        with pytest.raises(ValueError):
            naive_chunks("d", "text", size=10, overlap=10)

    def test_code_aware_splits_at_defs(self):
        text = "def a():\n    pass\n\ndef b():\n    pass\n"
        chunks = code_aware_chunks("d", text, max_size=25)
        assert len(chunks) >= 2
        assert all(c.strategy == "code_aware" for c in chunks)

    def test_code_aware_merges_small_pieces(self):
        text = "def a():\n    pass\n\ndef b():\n    pass\n"
        chunks = code_aware_chunks("d", text, max_size=10_000)
        assert len(chunks) == 1

    def test_empty_text(self):
        assert code_aware_chunks("d", "") == []


class TestVectorStore:
    def _store(self):
        store = VectorStore()
        chunks = [
            Chunk("a", "quantum fourier transform phase gates", 0, "naive"),
            Chunk("b", "bell pair entanglement hadamard cnot", 0, "naive"),
            Chunk("c", "surface code decoder syndrome matching", 0, "naive"),
        ]
        store.add(chunks)
        return store

    def test_topk_ordering(self):
        store = self._store()
        hits = store.search("fourier phase", top_k=3)
        assert hits[0].chunk.doc_id == "a"
        assert hits[0].score >= hits[-1].score

    def test_empty_store(self):
        assert VectorStore().search("anything") == []

    def test_bad_topk(self):
        with pytest.raises(RAGError):
            self._store().search("x", top_k=0)

    def test_incremental_add_refits(self):
        store = self._store()
        store.add([Chunk("d", "teleportation conditioned corrections", 0, "naive")])
        hits = store.search("teleportation corrections", top_k=1)
        assert hits[0].chunk.doc_id == "d"

    def test_len(self):
        assert len(self._store()) == 3


class TestRetriever:
    def test_default_datasets_indexed(self):
        retriever = Retriever()
        assert len(retriever.store) > 10

    def test_migration_notes_retrievable(self):
        retriever = Retriever()
        texts = retriever.retrieve_texts("execute removed backend run migration")
        assert any("execute" in t and "removed" in t for t in texts)

    def test_retrieve_context_pins_api_docs(self):
        retriever = Retriever()
        texts = retriever.retrieve_context("prepare a ghz state please")
        assert any("backend.run" in t or "removed" in t for t in texts)

    def test_guides_only_has_no_pinned_api(self):
        retriever = Retriever(datasets=("guides",))
        texts = retriever.retrieve_context("grover search")
        assert all("was removed" not in t for t in texts)

    def test_augment_prompt_format(self):
        retriever = Retriever()
        augmented = retriever.augment_prompt("build a bell state")
        assert "### Context" in augmented
        assert "### Task" in augmented
        assert "build a bell state" in augmented

    def test_unknown_dataset_rejected(self):
        with pytest.raises(RAGError):
            Retriever(datasets=("docs", "wikipedia"))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(RAGError):
            Retriever(strategy="semantic-magic")

    def test_code_aware_strategy_works(self):
        retriever = Retriever(strategy="code_aware")
        hits = retriever.retrieve("cu1 removed")
        assert hits

    def test_doc_corpora_nonempty(self):
        assert len(API_DOCS) >= 5
        assert len(ALGORITHM_GUIDES) >= 5
