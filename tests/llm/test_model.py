"""SimulatedCodeLLM: generation provenance, determinism, repair, RAG."""

import numpy as np
import pytest

from repro.agents.sandbox import run_code
from repro.llm.faults import ModelConfig
from repro.llm.knowledge import DEFAULT_KNOWLEDGE, KnowledgeBase
from repro.llm.model import SimulatedCodeLLM, make_model

BELL_PROMPT = "Create a Bell state and measure both qubits on a simulator"


class TestGeneration:
    def test_deterministic_given_rng(self):
        model = make_model(fine_tuned=True)
        a = model.generate(BELL_PROMPT, np.random.default_rng(5), params={})
        b = model.generate(BELL_PROMPT, np.random.default_rng(5), params={})
        assert a.code == b.code
        assert a.variant == b.variant

    def test_family_matched_from_text(self):
        model = make_model(fine_tuned=True)
        completion = model.generate(BELL_PROMPT, np.random.default_rng(0))
        assert completion.family == "bell"
        assert completion.tier == "basic"

    def test_family_hint_overrides(self):
        model = make_model(fine_tuned=True)
        completion = model.generate(
            "whatever text", np.random.default_rng(0), family_hint="ghz",
            params={"n": 3},
        )
        assert completion.family == "ghz"

    def test_unmatched_prompt_yields_nonsense(self):
        model = make_model(fine_tuned=True)
        completion = model.generate(
            "bake a sourdough loaf", np.random.default_rng(0)
        )
        assert completion.variant == "nonsense"
        assert run_code(completion.code).ok  # nonsense still runs

    def test_clean_completions_run(self):
        model = make_model(fine_tuned=True)
        for seed in range(30):
            completion = model.generate(
                BELL_PROMPT, np.random.default_rng(seed), params={}
            )
            if completion.is_clean:
                assert run_code(completion.code).ok

    def test_injected_faults_break_execution(self):
        model = make_model(fine_tuned=False)  # higher fault rates
        broken = 0
        for seed in range(60):
            completion = model.generate(
                BELL_PROMPT, np.random.default_rng(seed), params={}
            )
            if completion.injected_faults:
                broken += 1
                assert not run_code(completion.code).ok, completion.injected_faults
        assert broken > 3

    def test_base_model_knows_less_than_finetuned(self):
        base = make_model(fine_tuned=False)
        tuned = make_model(fine_tuned=True)
        prompt = "Use Grover's search to find the marked state 11"
        base_hits = sum(
            base.generate(prompt, np.random.default_rng(s), params={"marked": "11"}).knowledge_hit
            for s in range(120)
        )
        tuned_hits = sum(
            tuned.generate(prompt, np.random.default_rng(s), params={"marked": "11"}).knowledge_hit
            for s in range(120)
        )
        assert tuned_hits > base_hits

    def test_scot_beats_plain_on_advanced(self):
        plain = make_model(fine_tuned=True)
        scot = make_model(fine_tuned=True, prompt_style="scot")
        prompt = "Implement quantum teleportation from Alice to Bob"
        plain_clean = sum(
            plain.generate(prompt, np.random.default_rng(s), params={}).is_clean
            for s in range(100)
        )
        scot_clean = sum(
            scot.generate(prompt, np.random.default_rng(s), params={}).is_clean
            for s in range(100)
        )
        assert scot_clean > plain_clean + 10


class TestRAGSuppression:
    def test_docs_context_suppresses_legacy(self):
        no_rag = make_model(fine_tuned=True)
        rag = make_model(fine_tuned=True, rag_docs=True)
        docs = ["backend.run(circuit, shots=...) replaces execute(...)"]
        legacy_no_rag = 0
        legacy_rag = 0
        for seed in range(400):
            c1 = no_rag.generate(BELL_PROMPT, np.random.default_rng(seed), params={})
            c2 = rag.generate(
                BELL_PROMPT, np.random.default_rng(seed), params={},
                retrieved_docs=docs,
            )
            legacy_no_rag += "legacy_api" in c1.injected_faults
            legacy_rag += "legacy_api" in c2.injected_faults
        assert legacy_rag < legacy_no_rag

    def test_no_docs_no_suppression(self):
        rag = make_model(fine_tuned=True, rag_docs=True)
        completion = rag.generate(
            BELL_PROMPT, np.random.default_rng(1), params={}, retrieved_docs=[]
        )
        assert completion.suppressed_faults == []


class TestRepair:
    def _broken_completion(self, model):
        """Find a seed whose completion has a trace-repairable fault."""
        for seed in range(300):
            completion = model.generate(
                BELL_PROMPT, np.random.default_rng(seed), params={}
            )
            if completion.injected_faults:
                execution = run_code(completion.code)
                if not execution.ok:
                    return completion, execution
        pytest.fail("no faulty completion found")

    def test_repair_can_fix_with_trace(self):
        model = make_model(fine_tuned=True)
        completion, execution = self._broken_completion(model)
        fixed_any = False
        for seed in range(40):
            repaired = model.repair(
                completion, execution.trace, np.random.default_rng(seed), params={}
            )
            if repaired.repaired_from is not None:
                fixed_any = True
                assert repaired.injected_faults.count(
                    repaired.repaired_from
                ) == 0
        assert fixed_any

    def test_failed_repair_keeps_code(self):
        model = make_model(fine_tuned=True)
        completion, execution = self._broken_completion(model)
        # Find a seed where the repair roll fails.
        for seed in range(60):
            repaired = model.repair(
                completion, execution.trace, np.random.default_rng(seed), params={}
            )
            if repaired.repaired_from is None:
                assert repaired.code == completion.code
                return
        pytest.fail("repair never failed in 60 draws (rates too high?)")

    def test_semantic_repair_regenerates_correct(self):
        model = make_model(fine_tuned=True, prompt_style="cot")
        base = model.generate(
            BELL_PROMPT, np.random.default_rng(0), params={}
        )
        fixed_any = False
        for seed in range(80):
            repaired = model.repair(
                base, "distribution mismatch", np.random.default_rng(seed),
                params={}, semantic_feedback=True,
            )
            if repaired.repaired_from == "semantic":
                assert repaired.variant == "correct"
                fixed_any = True
        assert fixed_any


class TestKnowledgeBase:
    def test_all_families_have_specs(self):
        from repro.llm import synthesis

        for family in synthesis.families():
            spec = DEFAULT_KNOWLEDGE.get(family)
            assert spec.outline and spec.skeleton

    def test_match_returns_none_for_garbage(self):
        family, score = DEFAULT_KNOWLEDGE.match("completely unrelated words")
        assert family is None
        assert score == 0.0

    def test_unknown_family_raises(self):
        from repro.errors import LLMError

        with pytest.raises(LLMError):
            DEFAULT_KNOWLEDGE.get("nope")

    def test_by_tier_partition(self):
        kb = DEFAULT_KNOWLEDGE
        total = sum(len(kb.by_tier(t)) for t in ("basic", "intermediate", "advanced"))
        assert total == len(kb.families())
