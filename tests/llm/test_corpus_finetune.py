"""Corpus generation and the fine-tuning data pipeline."""

import json
from datetime import date

import pytest

from repro.errors import DatasetError
from repro.llm.corpus import (
    FILTER_DATE,
    LEGACY_MARKERS,
    build_corpus,
    is_official,
)
from repro.llm.finetune import (
    DatasetConfig,
    TrainingConfig,
    apply_fim,
    build_chunks,
    chunk_tokens,
    filter_files,
    fine_tune,
    lr_at_step,
    split_notebook,
)
from repro.llm.tokenizer import (
    END_OF_TEXT,
    FIM_MIDDLE,
    FIM_PREFIX,
    FIM_SUFFIX,
    MARKDOWN_TILE,
    tokenize,
)
from repro.utils.rng import derive_rng


class TestCorpus:
    def test_deterministic(self):
        a = build_corpus(seed=1)
        b = build_corpus(seed=1)
        assert [f.path for f in a] == [f.path for f in b]
        assert [f.content for f in a] == [f.content for f in b]

    def test_composition(self):
        corpus = build_corpus(num_files=200, seed=2)
        notebooks = sum(1 for f in corpus if f.is_notebook)
        stale = sum(1 for f in corpus if f.last_updated < FILTER_DATE)
        legacy = sum(
            1 for f in corpus if any(m in f.content for m in LEGACY_MARKERS)
        )
        assert 0 < notebooks < 200
        assert 0 < stale < 200
        assert legacy > 20  # stale APIs are well represented

    def test_notebooks_are_valid_json(self):
        corpus = build_corpus(seed=3)
        for f in corpus:
            if f.is_notebook:
                nb = json.loads(f.content)
                assert nb["cells"]

    def test_official_repos_exist(self):
        corpus = build_corpus(seed=4)
        assert any(is_official(f) for f in corpus)


class TestFiltering:
    def test_filters_apply(self):
        corpus = build_corpus(num_files=200, seed=5)
        kept = filter_files(corpus)
        assert 0 < len(kept) < len(corpus)
        for f in kept:
            assert f.license in DatasetConfig().licenses
            assert f.last_updated >= FILTER_DATE

    def test_date_filter_boundary(self):
        corpus = build_corpus(seed=6)
        config = DatasetConfig(min_date=date(2099, 1, 1))
        assert filter_files(corpus, config) == []

    def test_quantum_import_required(self):
        corpus = build_corpus(num_files=200, seed=7)
        kept = filter_files(corpus)
        for f in kept:
            assert "repro.quantum" in f.content


class TestNotebookSplitting:
    def test_tiles_with_sentinels(self):
        corpus = build_corpus(seed=8)
        nb = next(f for f in corpus if f.is_notebook)
        tiles = split_notebook(nb.content)
        assert MARKDOWN_TILE in tiles or "<code>" in tiles

    def test_malformed_rejected(self):
        with pytest.raises(DatasetError):
            split_notebook("not json at all")


class TestChunkingAndFIM:
    def test_chunk_sizes(self):
        text = " ".join(["tok"] * 300)
        chunks = chunk_tokens(text, 128)
        assert all(len(c) <= 128 for c in chunks)
        assert sum(len(c) for c in chunks) == 300

    def test_fim_structure(self):
        tokens = [str(i) for i in range(20)]
        rng = derive_rng(0, "fim")
        out = apply_fim(tokens, rng)
        assert out[0] == FIM_PREFIX
        assert FIM_SUFFIX in out and FIM_MIDDLE in out
        assert out[-1] == END_OF_TEXT
        # Content is a permutation of the original tokens.
        body = [t for t in out if t not in (FIM_PREFIX, FIM_SUFFIX, FIM_MIDDLE, END_OF_TEXT)]
        assert sorted(body) == sorted(tokens)

    def test_fim_short_chunks_untouched(self):
        tokens = ["a", "b"]
        assert apply_fim(tokens, derive_rng(0, "x")) == tokens

    def test_build_chunks_respects_rate(self):
        texts = [" ".join(["tok"] * 200)] * 20
        rng = derive_rng(1, "chunks")
        chunks, fim_count = build_chunks(texts, DatasetConfig(fim_rate=0.5), rng)
        assert 0.3 < fim_count / len(chunks) < 0.7

    def test_zero_rate_no_fim(self):
        texts = [" ".join(["tok"] * 200)]
        _, fim_count = build_chunks(texts, DatasetConfig(fim_rate=0.0), derive_rng(2, "c"))
        assert fim_count == 0


class TestTraining:
    def test_lr_schedule_shape(self):
        config = TrainingConfig(steps=1500, warmup_steps=100, peak_lr=3e-4)
        assert lr_at_step(0, config) == pytest.approx(3e-6)
        assert lr_at_step(99, config) == pytest.approx(3e-4)
        assert lr_at_step(100, config) == pytest.approx(3e-4, rel=1e-2)
        assert lr_at_step(1499, config) < 1e-6  # cosine decayed to ~0

    def test_fine_tune_end_to_end(self):
        corpus = build_corpus(num_files=80, seed=9)
        model, report = fine_tune(
            corpus,
            dataset_config=DatasetConfig(upsample_target_tokens=20_000),
            training_config=TrainingConfig(steps=300, seed=9),
        )
        assert report.files_kept < report.files_scraped
        assert report.perplexity_after < report.perplexity_before
        assert report.upsampled_tokens > report.raw_tokens
        assert 0 < report.legacy_share < 0.2
        assert report.coverage["bell"]
        assert len(report.lr_schedule) <= 300
        assert "fine-tune:" in report.summary()

    def test_fine_tune_empty_corpus_rejected(self):
        with pytest.raises(DatasetError):
            fine_tune([])
