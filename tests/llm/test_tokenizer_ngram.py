"""Tokenizer and n-gram language model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LLMError, TokenizationError
from repro.llm.ngram import NgramModel
from repro.llm.tokenizer import (
    FIM_MIDDLE,
    FIM_PREFIX,
    SENTINELS,
    count_tokens,
    detokenize,
    tokenize,
)


class TestTokenizer:
    def test_basic_code(self):
        tokens = tokenize("qc.h(0)\n")
        assert tokens == ["qc", ".", "h", "(", "0", ")", "\n"]

    def test_strings_kept_whole(self):
        tokens = tokenize('x = "hello world"')
        assert '"hello world"' in tokens

    def test_comments_kept_whole(self):
        tokens = tokenize("# a comment here\n")
        assert tokens[0] == "# a comment here"

    def test_floats(self):
        assert "3.14" in tokenize("x = 3.14")

    def test_sentinels_atomic(self):
        for sentinel in SENTINELS:
            assert tokenize(f"a {sentinel} b") == ["a", sentinel, "b"]

    def test_whitespace_dropped_by_default(self):
        assert " " not in tokenize("a b")
        assert "  " in tokenize("a  b", keep_whitespace=True)

    def test_newlines_kept(self):
        assert tokenize("a\nb").count("\n") == 1

    def test_non_string_rejected(self):
        with pytest.raises(TokenizationError):
            tokenize(42)

    def test_count_tokens(self):
        assert count_tokens("qc.h(0)") == 6

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes_on_ascii(self, text):
        tokens = tokenize(text)
        assert isinstance(tokens, list)

    def test_detokenize_readable(self):
        code = "qc.h(0)"
        assert detokenize(tokenize(code)).replace(" ", "") == code.replace(" ", "")


class TestNgram:
    def test_training_reduces_perplexity(self):
        model = NgramModel(order=3)
        corpus = ["qc.h(0)\nqc.cx(0, 1)\n"] * 5
        before = model.perplexity(corpus[0])
        model.train(corpus)
        after = model.perplexity(corpus[0])
        assert after < before

    def test_perplexity_lower_on_in_domain_text(self):
        model = NgramModel(order=3)
        model.train(["qc.h(0)\nqc.cx(0, 1)\nqc.measure(0, 0)\n"] * 10)
        in_domain = model.perplexity("qc.h(1)\nqc.cx(1, 0)\n")
        out_domain = model.perplexity("SELECT * FROM users WHERE id = 7;")
        assert in_domain < out_domain

    def test_vocabulary_share(self):
        model = NgramModel()
        model.train(["execute execute run"])
        assert model.vocabulary_share(["execute"]) > model.vocabulary_share(["run"])
        assert model.vocabulary_share(["missing"]) == 0.0

    def test_sampling_deterministic(self):
        model = NgramModel(order=2)
        model.train(["a b c a b c a b c"])
        s1 = model.sample(np.random.default_rng(3), max_tokens=5)
        s2 = model.sample(np.random.default_rng(3), max_tokens=5)
        assert s1 == s2

    def test_sampling_follows_training(self):
        model = NgramModel(order=2)
        model.train(["x y x y x y x y"])
        out = model.sample(np.random.default_rng(0), max_tokens=6, prefix="x")
        assert out[0] == "y"

    def test_bad_order(self):
        with pytest.raises(LLMError):
            NgramModel(order=0)

    def test_empty_perplexity_rejected(self):
        with pytest.raises(LLMError):
            NgramModel().perplexity("")

    def test_bad_temperature(self):
        model = NgramModel()
        model.train(["a b"])
        with pytest.raises(LLMError):
            model.sample(np.random.default_rng(0), temperature=0)

    def test_total_tokens_accumulates(self):
        model = NgramModel(order=2)
        added = model.train(["a b c"])
        assert model.total_tokens == added
