"""Synthesis templates and the fault/repair engine."""

import numpy as np
import pytest

from repro.agents.sandbox import run_code
from repro.agents.semantic import SemanticAnalyzerAgent
from repro.errors import GenerationError, LLMError
from repro.llm import faults as F
from repro.llm import synthesis
from repro.utils.rng import derive_rng


@pytest.fixture(scope="module")
def analyzer():
    return SemanticAnalyzerAgent()


ALL_FAMILIES = synthesis.families()


class TestSynthesis:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_correct_variant_runs(self, family):
        code = synthesis.synthesize(family, {}, "correct")
        result = run_code(code)
        assert result.ok, (family, result.trace)
        assert result.artifact("qc") is not None

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_corrupted_variants_fail_grading(self, family, analyzer):
        from repro.evalsuite.suite import _CHECKERS

        reference = synthesis.synthesize(family, {}, "correct")
        checker = _CHECKERS.get(family)
        for variant in ("structure", "params"):
            code = synthesis.synthesize(family, {}, variant)
            report = analyzer.analyze(code, reference, checker)
            assert not report.passed, (family, variant)

    def test_nonsense_runs_but_fails_grading(self, analyzer):
        reference = synthesis.synthesize("grover", {"marked": "101"}, "correct")
        code = synthesis.synthesize_nonsense({"marked": "101"})
        report = analyzer.analyze(code, reference)
        assert report.syntactic_ok
        assert report.semantic_ok is False

    def test_unknown_family_rejected(self):
        with pytest.raises(GenerationError):
            synthesis.synthesize("quantum_teapot", {})

    def test_unknown_variant_rejected(self):
        with pytest.raises(GenerationError):
            synthesis.synthesize("bell", {}, "chaotic")

    def test_params_are_threaded(self):
        code = synthesis.synthesize("bernstein_vazirani", {"secret": "1101"}, "correct")
        result = run_code(code)
        assert result.ok
        assert max(result.artifact("counts"), key=result.artifact("counts").get) == "1101"


class TestInjectors:
    @pytest.mark.parametrize("mode", F.SYNTAX_MODES)
    def test_each_injector_breaks_applicable_code(self, mode):
        rng = derive_rng(0, "inject", mode)
        # device_run carries every applicable site for missing_transpile.
        family = "device_run" if mode == "missing_transpile" else "bell"
        code = synthesis.synthesize(family, {}, "correct")
        result = F.INJECTORS[mode](code, rng)
        assert result.applied, mode
        execution = run_code(result.code)
        assert not execution.ok, (mode, result.code)

    def test_injector_not_applied_returns_original(self):
        code = synthesis.synthesize("statevector", {}, "correct")
        result = F.inject_missing_transpile(code, derive_rng(0, "x"))
        assert not result.applied
        assert result.code == code

    def test_legacy_injection_produces_deprecation_error(self):
        code = synthesis.synthesize("ghz", {}, "correct")
        result = F.inject_legacy_api(code, derive_rng(1, "leg"))
        assert result.applied
        execution = run_code(result.code)
        assert "QuantumDeprecationError" in (execution.trace or "")


class TestRepairs:
    @pytest.mark.parametrize(
        "mode,family",
        [
            ("legacy_api", "bell"),
            ("deprecated_method", "qft"),
            ("hallucinated_api", "bell"),
            ("bad_index", "bell"),
            ("python_syntax", "bell"),
            ("missing_transpile", "device_run"),
        ],
    )
    def test_repair_restores_execution(self, mode, family):
        code = synthesis.synthesize(family, {}, "correct")
        injected = F.INJECTORS[mode](code, derive_rng(2, "inj", mode))
        assert injected.applied, mode
        broken = run_code(injected.code)
        assert not broken.ok
        repaired_code, repaired_mode = F.repair_code(injected.code, broken.trace)
        assert repaired_mode == mode, (mode, broken.trace)
        fixed = run_code(repaired_code)
        assert fixed.ok, (mode, fixed.trace, repaired_code)

    def test_unrecognised_trace_returns_none(self):
        code = "x = 1"
        repaired, mode = F.repair_code(code, "SomethingWeirdError: boom")
        assert mode is None
        assert repaired == code


class TestRates:
    def test_resolve_rates_all_configs(self):
        for scale in F.SCALES:
            for ft in (False, True):
                for style in F.PROMPT_STYLES:
                    for profile in F.PROFILES:
                        config = F.ModelConfig(
                            scale=scale, fine_tuned=ft, prompt_style=style,
                            profile=profile,
                        )
                        for tier in ("basic", "intermediate", "advanced"):
                            rates = F.resolve_rates(config, tier)
                            assert 0 <= rates.p_know <= 1
                            assert all(0 <= v < 1 for v in rates.syntax.values())

    def test_cot_boosts_knowledge(self):
        plain = F.resolve_rates(F.ModelConfig("3b", True), "advanced")
        cot = F.resolve_rates(
            F.ModelConfig("3b", True, prompt_style="cot"), "advanced"
        )
        assert cot.p_know > plain.p_know
        assert cot.p_scaffold_wrong > 0

    def test_temperature_scales_faults(self):
        cold = F.resolve_rates(F.ModelConfig("3b", True, temperature=0.2), "basic")
        hot = F.resolve_rates(F.ModelConfig("3b", True, temperature=1.0), "basic")
        assert hot.syntax["legacy_api"] > cold.syntax["legacy_api"]
        assert hot.p_sem_params > cold.p_sem_params

    def test_scale_reduces_qhe_syntax(self):
        small = F.resolve_rates(F.ModelConfig("7b", True, profile="qhe"), "basic")
        big = F.resolve_rates(F.ModelConfig("20b", True, profile="qhe"), "basic")
        assert big.syntax["legacy_api"] < small.syntax["legacy_api"]

    def test_config_validation(self):
        with pytest.raises(LLMError):
            F.ModelConfig(scale="9000b")
        with pytest.raises(LLMError):
            F.ModelConfig(prompt_style="vibes")
        with pytest.raises(LLMError):
            F.ModelConfig(profile="leetcode")
        with pytest.raises(LLMError):
            F.ModelConfig(temperature=0.0)

    def test_label(self):
        config = F.ModelConfig("7b", True, rag_docs=True, prompt_style="cot")
        assert config.label() == "7B-QK-RAG-COT"
