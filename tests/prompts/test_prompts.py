"""Prompt templates, scaffold generation, and the prompt bank."""

import pytest

from repro.llm.knowledge import DEFAULT_KNOWLEDGE
from repro.prompts.bank import suite_cases, tier_mix
from repro.prompts.generator import (
    MANUAL_SEED_FAMILIES,
    ScaffoldGenerator,
)
from repro.prompts.templates import (
    render_cot,
    render_multipass,
    render_plain,
    render_scot,
    render_semantic_feedback,
)


class TestTemplates:
    def test_plain(self):
        rendered = render_plain("do the thing")
        assert rendered.style == "plain"
        assert "do the thing" in rendered.text
        assert "### Python code" in rendered.text

    def test_cot_numbers_steps(self):
        rendered = render_cot("task", ["first", "second"])
        assert "1. first" in rendered.text
        assert "2. second" in rendered.text
        assert "step by step" in rendered.text

    def test_scot_structure(self):
        rendered = render_scot("task", ["qc = QuantumCircuit(2)", "loop:"])
        assert rendered.style == "scot"
        assert "sequence / branch / loop" in rendered.text

    def test_multipass_carries_trace(self):
        rendered = render_multipass("task", "code()", "BoomError: bad")
        assert "BoomError" in rendered.text
        assert "code()" in rendered.text
        assert rendered.style == "multipass"

    def test_semantic_feedback(self):
        rendered = render_semantic_feedback("task", "code()", "TVD too high")
        assert "TVD too high" in rendered.text


class TestScaffoldGenerator:
    def test_manual_seeds_never_corrupted(self):
        generator = ScaffoldGenerator(corruption_rate=1.0)
        for family in MANUAL_SEED_FAMILIES:
            scaffold = generator.scaffold(family, "cot")
            assert scaffold.manual
            assert not scaffold.corrupted

    def test_generated_can_be_corrupted(self):
        generator = ScaffoldGenerator(corruption_rate=1.0)
        scaffold = generator.scaffold("grover", "cot")
        assert not scaffold.manual
        assert scaffold.corrupted
        original = DEFAULT_KNOWLEDGE.get("grover").outline
        assert scaffold.steps != tuple(original)

    def test_zero_corruption_preserves_outline(self):
        generator = ScaffoldGenerator(corruption_rate=0.0)
        scaffold = generator.scaffold("grover", "cot")
        assert scaffold.steps == DEFAULT_KNOWLEDGE.get("grover").outline

    def test_deterministic(self):
        a = ScaffoldGenerator(seed=7).scaffold("qft", "scot")
        b = ScaffoldGenerator(seed=7).scaffold("qft", "scot")
        assert a == b

    def test_render_produces_prompt(self):
        generator = ScaffoldGenerator()
        rendered = generator.render("some task", "bell", "cot")
        assert rendered.style == "cot"
        assert "some task" in rendered.text


class TestPromptBank:
    def test_size_and_mix(self):
        cases = suite_cases()
        assert len(cases) == 34
        mix = tier_mix()
        # The paper's 47% / 24% / 29% composition.
        assert mix["basic"] == pytest.approx(0.47, abs=0.01)
        assert mix["intermediate"] == pytest.approx(0.24, abs=0.01)
        assert mix["advanced"] == pytest.approx(0.29, abs=0.01)

    def test_unique_ids(self):
        ids = [c.case_id for c in suite_cases()]
        assert len(set(ids)) == len(ids)

    def test_families_exist_in_knowledge_base(self):
        for case in suite_cases():
            DEFAULT_KNOWLEDGE.get(case.family)

    def test_prompts_match_their_families(self):
        """The knowledge matcher resolves every bank prompt correctly."""
        for case in suite_cases():
            matched, _score = DEFAULT_KNOWLEDGE.match(case.text)
            assert matched == case.family, (case.case_id, matched)

    def test_qhe_prompts_match_their_families(self):
        from repro.evalsuite.qhe import qhe_cases

        cases = qhe_cases()
        assert len(cases) == 40
        mismatches = [
            (c.case_id, DEFAULT_KNOWLEDGE.match(c.text)[0])
            for c in cases
            if DEFAULT_KNOWLEDGE.match(c.text)[0] != c.family
        ]
        assert not mismatches
