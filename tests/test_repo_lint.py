"""Per-detector tests for the repo-invariant AST lint (tools/repo_lint.py).

The tool is not a package (it lives in tools/, outside ``src``), so it is
loaded via importlib straight from its file path.
"""

import importlib.util
import textwrap
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / "repo_lint.py"


def _load():
    spec = importlib.util.spec_from_file_location("repo_lint", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


repo_lint = _load()


def lint(source: str, path: str = "src/repro/module.py"):
    return repo_lint.lint_source(Path(path), textwrap.dedent(source))


def codes(source: str, path: str = "src/repro/module.py"):
    return [v.rule for v in lint(source, path)]


class TestR001DirectBackendConstruction:
    @pytest.mark.parametrize(
        "name", ["FakeBrisbane", "LocalSimulator", "FakeFalcon"]
    )
    def test_direct_call_flagged(self, name):
        assert codes(f"backend = {name}()") == ["R001"]

    def test_attribute_call_flagged(self):
        assert codes("b = repro.quantum.FakeBrisbane()") == ["R001"]

    def test_class_reference_allowed(self):
        # The registry pattern: pass the class as a zero-arg factory.
        assert codes("register_backend('local', LocalSimulator)") == []

    def test_string_mention_invisible(self):
        # Backend names inside the synthetic corpus must never fire.
        assert codes("CODE = 'backend = LocalSimulator()'") == []

    def test_registry_file_allowed(self):
        src = "provider.register('x', FakeBrisbane())"
        assert codes(src, "src/repro/quantum/execution/registry.py") == []
        assert codes(src, "quantum/execution/registry.py") == []

    def test_backend_module_allowed(self):
        assert codes("DEFAULT = LocalSimulator()", "src/repro/quantum/backend.py") == []

    def test_noisy_simulator_exempt(self):
        # Parameterized derived backends are legitimate outside the registry.
        assert codes("corrected = NoisySimulator(noise_model=nm)") == []

    def test_violation_points_at_line(self):
        found = lint("x = 1\ny = FakeBrisbane()\n")
        assert [(v.rule, v.line) for v in found] == [("R001", 2)]
        assert "get_backend" in found[0].message


class TestR002StatsDiff:
    def test_before_after_diff_flagged(self):
        src = """
        def measure(service):
            before = service.stats()
            do_work()
            after = service.stats()
            return after["simulations"] - before["simulations"]
        """
        found = lint(src)
        assert [v.rule for v in found] == ["R002"]
        assert "stats_scope" in found[0].message

    def test_single_stats_call_allowed(self):
        src = """
        def report(service):
            return service.stats()["simulations"]
        """
        assert codes(src) == []

    def test_one_call_per_function_allowed(self):
        src = """
        def before(service):
            return service.stats()

        def after(service):
            return service.stats()
        """
        assert codes(src) == []

    def test_async_function_covered(self):
        src = """
        async def measure(service):
            a = service.stats()
            b = service.stats()
            return a, b
        """
        assert codes(src) == ["R002"]

    def test_nested_function_calls_count_toward_outer(self):
        src = """
        def outer(service):
            x = service.stats()
            def inner():
                return service.stats()
            return inner
        """
        # Both the outer scope (sees 2 via ast.walk) and inner-only would be
        # a diff risk; the detector flags the outer function.
        assert "R002" in codes(src)


class TestR003ColumnFoldedMatmul:
    BAD_OPERATOR = """
    def kernel(matrix, states, k, rest):
        return matrix @ states.reshape(2**k, rest)
    """
    BAD_NP_MATMUL = """
    def kernel(matrix, states, k, rest):
        return np.matmul(matrix, states.reshape(2**k, rest))
    """
    GOOD_STACKED = """
    def kernel(matrix, tensor, batch, k):
        stacked = np.ascontiguousarray(tensor).reshape(batch, 2**k, -1)
        return np.matmul(matrix, stacked)
    """

    def test_operator_form_flagged_in_batchsim(self):
        path = "src/repro/quantum/batchsim/state.py"
        assert codes(self.BAD_OPERATOR, path) == ["R003"]

    def test_np_matmul_form_flagged_in_batchsim(self):
        path = "src/repro/quantum/batchsim/state.py"
        assert codes(self.BAD_NP_MATMUL, path) == ["R003"]

    def test_sanctioned_three_d_kernel_allowed(self):
        path = "src/repro/quantum/batchsim/state.py"
        assert codes(self.GOOD_STACKED, path) == []

    def test_outside_batchsim_not_flagged(self):
        # The rule guards the batch kernel's bit-identity contract only.
        assert codes(self.BAD_OPERATOR, "src/repro/quantum/statevector.py") == []

    def test_three_arg_reshape_allowed(self):
        src = """
        def kernel(matrix, states, batch, k):
            return np.matmul(matrix, states.reshape(batch, 2**k, -1))
        """
        assert codes(src, "src/repro/quantum/batchsim/state.py") == []


class TestR004DeadPassFunctions:
    """R004 is cross-file (it needs an "outside" to look for references in),
    so these tests drive ``lint_paths`` over a synthetic tree."""

    PASSES = """
    def used_pass(instructions):
        return instructions

    def dead_pass(instructions):
        return instructions

    def _private_helper(instructions):
        return instructions
    """
    CONSUMER_IMPORT = """
    from repro.quantum.transpiler.passes import used_pass
    """
    CONSUMER_ATTRIBUTE = """
    from repro.quantum.transpiler import passes

    def stack(instructions):
        return passes.used_pass(instructions)
    """

    def _tree(self, tmp_path, consumer_source):
        module_dir = tmp_path / "quantum" / "transpiler"
        module_dir.mkdir(parents=True)
        passes = module_dir / "passes.py"
        passes.write_text(textwrap.dedent(self.PASSES))
        consumer = module_dir / "passmanager.py"
        consumer.write_text(textwrap.dedent(consumer_source))
        return tmp_path

    def test_unreferenced_public_pass_flagged(self, tmp_path):
        tree = self._tree(tmp_path, self.CONSUMER_IMPORT)
        found = repo_lint.lint_paths([tree])
        assert [(v.rule) for v in found] == ["R004"]
        assert "dead_pass" in found[0].message
        assert found[0].path.name == "passes.py"

    def test_attribute_reference_counts(self, tmp_path):
        tree = self._tree(tmp_path, self.CONSUMER_ATTRIBUTE)
        found = repo_lint.lint_paths([tree])
        # used_pass is reached via passes.used_pass; dead_pass still dies.
        assert [v.rule for v in found] == ["R004"]
        assert "dead_pass" in found[0].message

    def test_private_helpers_exempt(self, tmp_path):
        module_dir = tmp_path / "quantum" / "transpiler"
        module_dir.mkdir(parents=True)
        (module_dir / "passes.py").write_text(
            "def _only_private(x):\n    return x\n"
        )
        (module_dir / "other.py").write_text("x = 1\n")
        assert repo_lint.lint_paths([tmp_path]) == []

    def test_skipped_when_only_pass_modules_linted(self, tmp_path):
        """Linting the pass file alone has no "outside"; the rule must not
        flag everything in that degenerate run."""
        module_dir = tmp_path / "quantum" / "transpiler"
        module_dir.mkdir(parents=True)
        passes = module_dir / "passes.py"
        passes.write_text(textwrap.dedent(self.PASSES))
        assert repo_lint.lint_paths([passes]) == []

    def test_self_reference_does_not_count(self, tmp_path):
        """A pass calling itself (or a sibling in the same module) is still
        dead to every pass stack outside."""
        module_dir = tmp_path / "quantum" / "transpiler"
        module_dir.mkdir(parents=True)
        (module_dir / "passes.py").write_text(textwrap.dedent("""
        def outer_pass(instructions):
            return inner_pass(instructions)

        def inner_pass(instructions):
            return instructions
        """))
        (module_dir / "other.py").write_text("x = 1\n")
        found = repo_lint.lint_paths([tmp_path])
        assert sorted(v.message.split(":")[1].split("(")[0].strip()
                      for v in found) == ["inner_pass", "outer_pass"]
        assert {v.rule for v in found} == {"R004"}

    def test_wired_tree_is_clean(self, tmp_path):
        tree = self._tree(
            tmp_path,
            """
            from repro.quantum.transpiler.passes import used_pass
            from repro.x import dead_pass
            """,
        )
        # Once something outside imports it, the pass is live.
        assert repo_lint.lint_paths([tree]) == []


class TestR005ParamFloatCoercion:
    def test_subscript_coercion_flagged(self):
        assert codes("v = float(inst.params[0])") == ["R005"]

    def test_loop_variable_coercion_flagged(self):
        assert codes(
            """
            def f(inst):
                for p in inst.params:
                    use(float(p))
            """
        ) == ["R005"]

    def test_comprehension_variable_flagged(self):
        assert codes("vals = [float(p) for p in inst.params]") == ["R005"]

    def test_unrelated_float_allowed(self):
        assert codes("x = float(shots)\ny = float('1.5')") == []

    def test_sanctioned_helper_allowed(self):
        assert codes("vals = as_concrete(inst.params, context=name)") == []

    def test_binding_module_exempt(self):
        assert codes(
            "v = float(inst.params[0])",
            path="src/repro/quantum/parameters.py",
        ) == []


class TestDriver:
    def test_syntax_error_reported_not_raised(self):
        found = lint("def broken(:\n")
        assert [v.rule for v in found] == ["R000"]

    def test_current_source_tree_is_clean(self):
        root = TOOL.parent.parent
        assert repo_lint.lint_paths([root / "src"]) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert repo_lint.main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("b = FakeBrisbane()\n")
        assert repo_lint.main([str(dirty)]) == 1
        assert repo_lint.main([str(tmp_path / "missing.py")]) == 2
        out = capsys.readouterr().out
        assert "R001" in out and "no such path" in out

    def test_violation_render_format(self):
        v = repo_lint.Violation(Path("a/b.py"), 7, "R001", "msg")
        assert v.render() == "a/b.py:7: R001 msg"
